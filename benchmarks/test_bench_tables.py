"""Benchmarks regenerating the paper's four tables."""

from benchmarks.conftest import regenerate


def test_table1_environment_characteristics(benchmark):
    """Table 1: the 14 study environments and their schedulers/runtimes."""
    out = regenerate(benchmark, "table1")
    assert len(out.table.rows) == 14


def test_table2_nodes_and_network(benchmark):
    """Table 2: node types, processors, memory, fabrics, hourly cost."""
    out = regenerate(benchmark, "table2")
    assert len(out.table.rows) == 14


def test_table3_usability_assessment(benchmark):
    """Table 3: the low/medium/high effort grid (13 environments)."""
    out = regenerate(benchmark, "table3")
    assert len(out.table.rows) == 13


def test_table4_amg2023_costs(benchmark):
    """Table 4: AMG2023 total cost by environment, cheapest first."""
    out = regenerate(benchmark, "table4")
    assert len(out.table.rows) == 11

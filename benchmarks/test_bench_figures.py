"""Benchmarks regenerating the paper's eight figures."""

from benchmarks.conftest import regenerate


def test_fig1_kripke_grind_time(benchmark):
    """Figure 1: Kripke grind time across CPU environments."""
    out = regenerate(benchmark, "fig1")
    assert out.series


def test_fig2_amg2023_fom(benchmark):
    """Figure 2: AMG2023 FOM, CPU and GPU panels."""
    out = regenerate(benchmark, "fig2")
    assert len(out.series) == 2


def test_fig3_laghos_fom(benchmark):
    """Figure 3: Laghos major-kernels rate on CPU."""
    out = regenerate(benchmark, "fig3")
    # Only on-prem and the completing clouds have points at 32/64.
    assert out.series[0].lines


def test_fig4_lammps_fom(benchmark):
    """Figure 4: LAMMPS Matom-steps/s, CPU and GPU panels."""
    out = regenerate(benchmark, "fig4")
    assert len(out.series) == 2


def test_fig5_osu_benchmarks(benchmark):
    """Figure 5: OSU latency / bandwidth / allreduce at 256 nodes."""
    out = regenerate(benchmark, "fig5")
    assert len(out.series) == 3


def test_fig6_minife_fom(benchmark):
    """Figure 6: MiniFE Total CG Mflops, CPU and GPU panels."""
    out = regenerate(benchmark, "fig6")
    assert len(out.series) == 2


def test_fig7_mtgemm_gpu(benchmark):
    """Figure 7: MT-GEMM GFLOP/s on GPU (CPU omitted, as in the paper)."""
    out = regenerate(benchmark, "fig7")
    assert len(out.series) == 1


def test_fig8_quicksilver(benchmark):
    """Figure 8: Quicksilver segments over cycle tracking time."""
    out = regenerate(benchmark, "fig8")
    assert out.series

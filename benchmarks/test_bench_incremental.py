"""Incremental plan execution: the 50-scenario sweep benchmark.

The incremental mode's acceptance claim, measured end to end: a
**50-scenario sweep where each scenario touches one environment** —
single-cloud fabric degradations cycling over four clouds, the shape a
parameter study actually takes — must cost **at most 40% of the
from-scratch sweep**, with byte-identical per-scenario datasets.

The from-scratch side runs without a cache directory: that is the cost
of simulating all 51 × 4 cells, which is exactly what incrementality
claims to avoid.  The incremental side starts from a *cold* cache — it
pays for the baseline campaign, all 50 touched cells, and every cache
write, and still has to win on the strength of attaching the 150
untouched cells alone.  Cells run at scale 256 (the paper's largest),
where provisioning + Kubernetes scheduling dominate cell cost — the
regime reuse is for.

Results land in ``BENCH_incremental.json`` (redirect with
``BENCH_INCREMENTAL_ARTIFACT``) and are gated against
``benchmarks/BASELINE_incremental.json``: a cost-ratio regression of
more than 25% versus the committed baseline fails the benchmark job.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import record_timing
from repro.core.study import StudyConfig
from repro.scenarios import FabricDegradation, Scenario, ScenarioSweep

#: where the machine-readable incremental benchmark artifact lands
BENCH_INCREMENTAL_ARTIFACT = os.environ.get(
    "BENCH_INCREMENTAL_ARTIFACT", "BENCH_incremental.json"
)

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_incremental.json"
REGRESSION_TOLERANCE = 1.25

#: the acceptance floor: incremental ≤ 40% of from-scratch
ACCEPTANCE_RATIO = 0.40

#: one environment per cloud; scale 256 makes provisioning + K8s
#: scheduling the dominant cell cost
_ENVS = ("cpu-eks-aws", "cpu-aks-az", "cpu-gke-g", "cpu-onprem-a")
_CLOUDS = ("aws", "az", "g", "p")
N_SCENARIOS = 50


def _config() -> StudyConfig:
    return StudyConfig(
        env_ids=_ENVS, apps=("amg2023",), sizes=(256,), iterations=5, seed=0
    )


def _scenarios() -> list[Scenario]:
    """50 what-if worlds, each degrading exactly one cloud's fabric."""
    return [
        Scenario(
            scenario_id=f"fabric-{i:02d}",
            fabric=FabricDegradation(
                latency_multiplier=1.0 + 0.02 * (i + 1),
                clouds=(_CLOUDS[i % len(_CLOUDS)],),
            ),
        )
        for i in range(N_SCENARIOS)
    ]


def test_bench_incremental_sweep_vs_from_scratch():
    """Acceptance: ≤40% of from-scratch cost, byte-identical datasets."""
    config = _config()
    scenarios = _scenarios()

    # Warm lazy imports and first-call caches on a small slice so
    # neither timed side pays the process's one-time costs.
    ScenarioSweep(config, scenarios[:2]).run()

    start = time.perf_counter()
    scratch = ScenarioSweep(config, scenarios).run()
    t_scratch = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        incremental = ScenarioSweep(
            config, scenarios, cache_dir=cache_dir, incremental=True
        ).run()
        t_incremental = time.perf_counter() - start

    # Faster, not different: every world's dataset is byte-identical.
    assert set(incremental.outcomes) == set(scratch.outcomes)
    for sid, outcome in scratch.outcomes.items():
        assert (
            incremental.outcomes[sid].report.store.to_csv()
            == outcome.report.store.to_csv()
        ), f"incremental dataset diverged for {sid}"

    # The reuse accounting must say what the diff promised: 3 of every
    # scenario world's 4 cells attach, only the touched cell executes.
    reuse = incremental.reuse
    assert reuse is not None
    n_cells = len(_ENVS) * N_SCENARIOS
    assert reuse.planned_reusable == n_cells - N_SCENARIOS
    assert reuse.planned_dirty == N_SCENARIOS
    assert reuse.attached == reuse.planned_reusable
    assert reuse.executed == N_SCENARIOS
    assert reuse.invalid == 0

    ratio = t_incremental / t_scratch
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload = {
        "schema": 1,
        "campaign": {
            "environments": list(_ENVS),
            "scenarios": N_SCENARIOS,
            "cells_per_world": len(_ENVS),
            "scale": 256,
            "iterations": 5,
        },
        "sweep": {
            "from_scratch_seconds": t_scratch,
            "incremental_seconds": t_incremental,
            "ratio": ratio,
            "speedup": t_scratch / t_incremental,
        },
        "reuse": reuse.to_dict(),
        "byte_identical": True,
        "baseline": baseline,
    }
    with open(BENCH_INCREMENTAL_ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    record_timing(
        "incremental::sweep_50_scenarios",
        t_incremental,
        kind="cost-ratio-claim",
        from_scratch_seconds=t_scratch,
        ratio=ratio,
        attached=reuse.attached,
        executed=reuse.executed,
    )
    print(
        f"\n50-scenario sweep: from-scratch {t_scratch:.2f}s, incremental "
        f"{t_incremental:.2f}s -> ratio {ratio:.3f} "
        f"({reuse.attached} cells attached, {reuse.executed} executed)"
    )

    # The acceptance floor...
    assert ratio <= ACCEPTANCE_RATIO, (
        f"incremental sweep cost {ratio:.1%} of from-scratch "
        f"(acceptance requires <= {ACCEPTANCE_RATIO:.0%})"
    )
    # ...and the CI regression gate against the committed baseline.
    ceiling = baseline["incremental_ratio"] * REGRESSION_TOLERANCE
    assert ratio <= ceiling, (
        f"incremental execution regressed: cost ratio {ratio:.3f} > "
        f"{ceiling:.3f} (baseline {baseline['incremental_ratio']} x 1.25)"
    )

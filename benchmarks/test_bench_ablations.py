"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one model mechanism and measures how a headline
result changes, demonstrating that the reproduced orderings come from
the modelled mechanisms rather than from tuning:

* straggler factor        -> the Laghos on-prem/cloud FOM gap
* Azure UCX tuning        -> AKS small-message latency
* placement degradation   -> AKS MiniFE FOM at 128 nodes
* ECC setting             -> GPU Stream Triad bandwidth
* cloud jitter multiplier -> MiniFE inverse scaling strength
"""

import pytest

import repro.apps.base as apps_base
from repro.apps.osu import OSUBenchmarks
from repro.core.analysis import mean_fom
from repro.envs.registry import environment
from repro.experiments.base import run_matrix
from repro.sim.execution import ExecutionEngine


def _laghos_gap(iterations: int = 3) -> float:
    """on-prem A vs best cloud Laghos FOM ratio at 32 nodes."""
    envs = [environment(e) for e in ("cpu-onprem-a", "cpu-eks-aws", "cpu-aks-az")]
    store = run_matrix(envs, ["laghos"], sizes=lambda e: (32,), iterations=iterations)
    a = mean_fom(store, "cpu-onprem-a", "laghos", 32).mean
    cloud = max(
        mean_fom(store, e, "laghos", 32).mean
        for e in ("cpu-eks-aws", "cpu-aks-az")
    )
    return a / cloud


def test_ablation_straggler_factor(benchmark):
    """Without jitter straggling, the Laghos on-prem advantage shrinks."""
    with_straggler = _laghos_gap()

    def without():
        saved = apps_base.STRAGGLER_WEIGHT
        apps_base.STRAGGLER_WEIGHT = 0.0
        try:
            return _laghos_gap()
        finally:
            apps_base.STRAGGLER_WEIGHT = saved

    gap_without = benchmark.pedantic(without, rounds=1, iterations=1)
    print(f"\nLaghos on-prem/cloud FOM gap: {with_straggler:.1f}x with straggler, "
          f"{gap_without:.1f}x without")
    assert with_straggler > 1.5 * gap_without


def test_ablation_ucx_tuning(benchmark):
    """Untuned Azure UCX (pre-§3.1 experimentation) triples small-message latency."""
    osu = OSUBenchmarks()
    env = environment("cpu-aks-az")

    def measure(tuned: bool) -> float:
        engine = ExecutionEngine(seed=0, azure_ucx_tuned=tuned)
        ctx = engine.context(env, 64)
        return osu.latency_us(ctx, 1024)

    tuned_lat = measure(True)
    untuned_lat = benchmark.pedantic(measure, args=(False,), rounds=1, iterations=1)
    print(f"\nAKS 1KiB latency: {tuned_lat:.2f}us tuned vs {untuned_lat:.2f}us untuned")
    assert untuned_lat > 2.0 * tuned_lat


def test_ablation_placement_degradation(benchmark):
    """AKS beyond the 100-node PPG cap pays real performance."""
    from repro.apps.registry import app

    env = environment("cpu-aks-az")
    engine = ExecutionEngine(seed=0)
    minife = app("minife")

    def degraded_fom() -> float:
        foms = []
        for it in range(3):
            ctx = engine.context(env, 128, iteration=it)
            foms.append(minife.simulate(ctx).fom)
        return sum(foms) / len(foms)

    def colocated_fom() -> float:
        foms = []
        for it in range(3):
            ctx = engine.context(env, 128, iteration=it)
            # Force the fabric the cluster would see with a working PPG.
            ctx.fabric = env.base_fabric().with_jitter(ctx.fabric.jitter_cv)
            foms.append(minife.simulate(ctx).fom)
        return sum(foms) / len(foms)

    degraded = benchmark.pedantic(degraded_fom, rounds=1, iterations=1)
    colocated = colocated_fom()
    print(f"\nAKS MiniFE FOM at 128 nodes: {degraded:.3g} degraded vs "
          f"{colocated:.3g} colocated")
    assert colocated > 1.2 * degraded


def test_ablation_ecc_setting(benchmark):
    """ECC off recovers ~15% of GPU Triad bandwidth (§3.3 Mixbench)."""
    from repro.machine.gpu import V100

    def delta() -> float:
        on = V100.with_ecc(True).effective_mem_bw()
        off = V100.with_ecc(False).effective_mem_bw()
        return (off - on) / off

    d = benchmark.pedantic(delta, rounds=1, iterations=1)
    print(f"\nECC bandwidth cost: {d:.0%}")
    assert d == pytest.approx(0.15)


def test_ablation_cloud_jitter(benchmark):
    """Cloud tenancy jitter drives MiniFE's inverse scaling."""
    env = environment("cpu-eks-aws")

    def inverse_ratio(multiplier: float) -> float:
        engine = ExecutionEngine(seed=0)
        engine.CLOUD_JITTER_MULTIPLIER = multiplier
        store_foms = {}
        for scale in (32, 256):
            foms = [
                engine.run(env, "minife", scale, iteration=i).fom for i in range(3)
            ]
            store_foms[scale] = sum(foms) / len(foms)
        return store_foms[32] / store_foms[256]

    with_jitter = inverse_ratio(1.5)
    without = benchmark.pedantic(inverse_ratio, args=(0.1,), rounds=1, iterations=1)
    print(f"\nMiniFE FOM(32)/FOM(256): {with_jitter:.2f} with cloud jitter, "
          f"{without:.2f} with jitter suppressed")
    assert with_jitter > without

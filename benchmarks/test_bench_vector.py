"""The vectorized iteration axis: block pipeline + component receipts.

PR 5's performance claim, measured on the same ≥10k-record campaign the
plan benchmarks use: the array-native block path —
:func:`~repro.rng.stream_block` batched keyed RNG,
:meth:`~repro.apps.base.AppModel.simulate_block` columnar app physics,
:meth:`~repro.sim.execution.ExecutionEngine.run_block` array pricing /
walltime / preemption, and :meth:`~repro.core.results.ResultStore.append_block`
straight into the typed buffers — is at least **6x** the seed
per-iteration path, with records and aggregates byte-identical (the
suite refuses to report speedups otherwise).

Results land in ``BENCH_vector.json`` (redirect with
``BENCH_VECTOR_ARTIFACT``) and are gated against
``benchmarks/BASELINE_vector.json``: a regression of more than 25%
versus the committed baseline speedups fails the benchmark job.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import record_timing
from repro.bench import render_table, run_bench, write_artifact

#: where the machine-readable vector benchmark artifact lands
BENCH_VECTOR_ARTIFACT = os.environ.get("BENCH_VECTOR_ARTIFACT", "BENCH_vector.json")

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_vector.json"
REGRESSION_TOLERANCE = 1.25

#: the acceptance floor for the block pipeline vs the seed path
BLOCK_SPEEDUP_FLOOR = 6.0


def test_bench_block_pipeline_vs_seed_path():
    """Acceptance: ≥6x block pipeline at ≥10k records, byte-identical."""
    payload = run_bench()
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload["baseline"] = baseline
    write_artifact(payload, BENCH_VECTOR_ARTIFACT)
    print()
    print(render_table(payload))

    pipeline = payload["pipeline"]
    assert payload["campaign"]["records"] >= 10_000
    assert payload["byte_identical"]

    record_timing(
        "vector::block_pipeline",
        pipeline["block_seconds"],
        kind="speedup-claim",
        records=payload["campaign"]["records"],
        seed_seconds=pipeline["seed_seconds"],
        speedup=pipeline["block_speedup"],
    )
    record_timing(
        "vector::stream_block",
        payload["rng"]["block_seconds"],
        kind="speedup-claim",
        scalar_seconds=payload["rng"]["scalar_seconds"],
        speedup=payload["rng"]["speedup"],
    )

    # The acceptance floor...
    assert pipeline["block_speedup"] >= BLOCK_SPEEDUP_FLOOR, (
        f"block pipeline only {pipeline['block_speedup']:.2f}x vs the seed path"
    )
    # ...and the CI regression gates against the committed baseline.
    floor = baseline["block_speedup"] / REGRESSION_TOLERANCE
    assert pipeline["block_speedup"] >= floor, (
        f"block hot path regressed: {pipeline['block_speedup']:.2f}x < "
        f"{floor:.2f}x (baseline {baseline['block_speedup']}x / 1.25)"
    )
    rng_floor = baseline["rng_speedup"] / REGRESSION_TOLERANCE
    assert payload["rng"]["speedup"] >= rng_floor, (
        f"stream_block regressed: {payload['rng']['speedup']:.2f}x < {rng_floor:.2f}x"
    )
    # Transport must stay columnar-compact: the store's pickle may never
    # fall back to per-record size.
    transport_floor = baseline["transport_bytes_ratio"] / REGRESSION_TOLERANCE
    assert payload["transport"]["bytes_ratio"] >= transport_floor, (
        f"shard transport regressed: {payload['transport']['bytes_ratio']:.2f}x "
        f"< {transport_floor:.2f}x smaller than record-list pickling"
    )

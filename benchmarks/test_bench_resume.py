"""Checkpoint/resume: the interrupted-campaign cost benchmark.

The resume claim, measured end to end: a campaign killed at ~50%
completion and resumed with ``--resume`` must finish in **at most 60%
of the cold-run wall time**, with a byte-identical dataset.  The
journal banks every drained cell immediately, so the resumed run
re-attaches the first half from the cache and pays simulation only for
the half the crash actually lost.

The interruption is a deterministic chaos ``abort`` whose seed is
chosen against the compiled plan so the fault lands exactly past the
halfway shard — the same keyed-RNG discipline the chaos test suite
uses, which makes this benchmark exactly reproducible.

Results land in ``BENCH_resume.json`` (redirect with
``BENCH_RESUME_ARTIFACT``) and are gated against
``benchmarks/BASELINE_resume.json``: a resume-ratio regression of more
than 25% versus the committed baseline fails the benchmark job.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_timing
from repro.chaos import FaultPlan
from repro.core.study import StudyConfig, StudyRunner
from repro.errors import ShardExecutionError

#: where the machine-readable resume benchmark artifact lands
BENCH_RESUME_ARTIFACT = os.environ.get(
    "BENCH_RESUME_ARTIFACT", "BENCH_resume.json"
)

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_resume.json"
REGRESSION_TOLERANCE = 1.25

#: the acceptance ceiling: resume after ~50% ≤ 60% of the cold run
ACCEPTANCE_RATIO = 0.60

#: one environment per cloud at the paper's largest scale — the regime
#: where losing a campaign to a crash actually hurts
_ENVS = ("cpu-eks-aws", "cpu-aks-az", "cpu-gke-g", "cpu-onprem-a")


def _config() -> StudyConfig:
    return StudyConfig(
        env_ids=_ENVS, apps=("amg2023", "lammps"), sizes=(128, 256),
        iterations=5, seed=0,
    )


def _halfway_abort_seed(shards) -> int:
    """A chaos seed whose only aborts land in the second half of the plan."""
    half = len(shards) // 2
    for seed in range(5000):
        plan = FaultPlan(abort=0.2, seed=seed)
        rolls = [
            plan._roll("abort", (s.env_id, s.scale, s.world)) for s in shards
        ]
        if not any(rolls[:half]) and rolls[half]:
            return seed
    raise AssertionError("no halfway-interrupting chaos seed found")


def test_bench_resume_after_interrupt_vs_cold():
    """Acceptance: resume at ~50% ≤ 60% of cold, byte-identical."""
    config = _config()
    shards = StudyRunner(config).compile().shards
    half = len(shards) // 2
    seed = _halfway_abort_seed(shards)

    # Warm lazy imports and first-call caches so neither timed side
    # pays the process's one-time costs.
    StudyRunner(StudyConfig.smoke()).run()

    with tempfile.TemporaryDirectory() as cold_cache:
        start = time.perf_counter()
        cold = StudyRunner(config, cache_dir=cold_cache).run()
        t_cold = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        # The crash: a deterministic abort just past the halfway shard.
        interrupted = StudyRunner(
            config,
            cache_dir=cache_dir,
            chaos=FaultPlan(abort=0.2, seed=seed),
        )
        with pytest.raises(ShardExecutionError):
            interrupted.run()

        start = time.perf_counter()
        resumed = StudyRunner(config, cache_dir=cache_dir, resume=True).run()
        t_resume = time.perf_counter() - start

    # Faster, not different: the resumed dataset is byte-identical.
    assert resumed.store.to_csv() == cold.store.to_csv()
    assert resumed.faults is not None
    assert resumed.faults.resumed >= half

    ratio = t_resume / t_cold
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload = {
        "schema": 1,
        "campaign": {
            "environments": list(_ENVS),
            "apps": ["amg2023", "lammps"],
            "sizes": [128, 256],
            "iterations": 5,
            "cells": len(shards),
            "interrupted_after": half,
        },
        "resume": {
            "cold_seconds": t_cold,
            "resume_seconds": t_resume,
            "ratio": ratio,
            "speedup": t_cold / t_resume,
            "cells_resumed": resumed.faults.resumed,
        },
        "byte_identical": True,
        "baseline": baseline,
    }
    with open(BENCH_RESUME_ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    record_timing(
        "resume::interrupted_campaign",
        t_resume,
        kind="cost-ratio-claim",
        cold_seconds=t_cold,
        ratio=ratio,
        cells_resumed=resumed.faults.resumed,
    )
    print(
        f"\nresume benchmark: cold {t_cold:.2f}s, resume {t_resume:.2f}s "
        f"-> ratio {ratio:.3f} ({resumed.faults.resumed} of {len(shards)} "
        f"cells re-attached)"
    )

    # The acceptance ceiling...
    assert ratio <= ACCEPTANCE_RATIO, (
        f"resume cost {ratio:.1%} of the cold run "
        f"(acceptance requires <= {ACCEPTANCE_RATIO:.0%})"
    )
    # ...and the CI regression gate against the committed baseline.
    ceiling = baseline["resume_ratio"] * REGRESSION_TOLERANCE
    assert ratio <= ceiling, (
        f"resume ratio {ratio:.3f} regressed more than 25% over the "
        f"committed baseline {baseline['resume_ratio']} (ceiling {ceiling:.3f})"
    )

"""The execution planner's hot paths: batched runs + columnar folds.

PR 4's two performance claims, measured on one ≥10k-record campaign
(4 environments × all 11 apps × the paper's 4 sizes):

* **the batched pipeline** — ``ExecutionEngine.run_batch`` (placement/
  fabric/pricing resolved once per (env, app, size) group, group-memoized
  physics) feeding a columnar ``ResultStore`` whose ``to_frame()`` is a
  zero-copy view — is at least **2x** the seed row-based path
  (per-iteration ``run()`` calls folded through
  ``ResultFrame.from_records``), with byte-identical records and
  aggregates;
* **the columnar fold alone** (``store.to_frame().cell_aggregates()``)
  beats the row-based fold by a wide margin.

Results land in ``BENCH_plan.json`` (redirect with ``BENCH_PLAN_ARTIFACT``)
and are gated against ``benchmarks/BASELINE_plan.json``: a regression of
more than 25% versus the committed baseline numbers fails the benchmark
job.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import record_timing
from repro.apps.registry import APPS
from repro.core.results import ResultStore
from repro.ensemble.frame import ResultFrame
from repro.envs.registry import ENVIRONMENTS
from repro.sim.execution import ExecutionEngine

#: where the machine-readable plan benchmark artifact lands
BENCH_PLAN_ARTIFACT = os.environ.get("BENCH_PLAN_ARTIFACT", "BENCH_plan.json")

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_plan.json"
REGRESSION_TOLERANCE = 1.25

#: the benchmark campaign: ≥10k records across the paper's size range
_ENVS = ("cpu-eks-aws", "cpu-onprem-a", "gpu-gke-g", "cpu-aks-az")
_SCALES = (32, 64, 128, 256)
_ITERATIONS = math.ceil(10_500 / (len(_ENVS) * len(APPS) * len(_SCALES)))


def _campaign_cells():
    for env_id in _ENVS:
        env = ENVIRONMENTS[env_id]
        for app in APPS:
            for scale in _SCALES:
                yield env, app, scale


def _seed_pipeline():
    """The seed row-based path: per-iteration runs, row-based fold."""
    engine = ExecutionEngine(seed=0)
    records = []
    for env, app, scale in _campaign_cells():
        for iteration in range(_ITERATIONS):
            records.append(engine.run(env, app, scale, iteration=iteration))
    aggregates = ResultFrame.from_records(records).cell_aggregates()
    return records, aggregates


def _batched_pipeline():
    """The planner's path: run_batch into a columnar store, zero-copy fold."""
    engine = ExecutionEngine(seed=0)
    store = ResultStore()
    for env, app, scale in _campaign_cells():
        store.extend(engine.run_batch(env, app, scale, iterations=_ITERATIONS))
    aggregates = store.to_frame().cell_aggregates()
    return store, aggregates


def _best_of(fn, repeats: int):
    best, result = math.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_batched_pipeline_vs_seed_row_based_path():
    """Acceptance: ≥2x for to_frame() + run_batch() at ≥10k records."""
    t_seed, (records, agg_seed) = _best_of(_seed_pipeline, repeats=3)
    t_batched, (store, agg_batched) = _best_of(_batched_pipeline, repeats=3)
    assert len(records) >= 10_000

    # Faster, not different: records and aggregates are byte-identical.
    assert store.records == records
    assert agg_batched.rows() == agg_seed.rows()

    pipeline_speedup = t_seed / t_batched

    # The fold alone: row-based conversion+aggregation vs zero-copy.
    t_row_fold, _ = _best_of(
        lambda: ResultFrame.from_records(records).cell_aggregates(), repeats=3
    )
    t_col_fold, _ = _best_of(
        lambda: store.to_frame().cell_aggregates(), repeats=3
    )
    fold_speedup = t_row_fold / t_col_fold

    # One representative group, execution only (no fold in either side).
    env = ENVIRONMENTS["cpu-eks-aws"]

    def _loop_runs():
        engine = ExecutionEngine(seed=0)
        return [engine.run(env, "amg2023", 64, iteration=i) for i in range(300)]

    def _batch_runs():
        return ExecutionEngine(seed=0).run_batch(env, "amg2023", 64, iterations=300)

    t_loop, loop_records = _best_of(_loop_runs, repeats=3)
    t_batch, batch_records = _best_of(_batch_runs, repeats=3)
    assert batch_records == loop_records
    run_batch_speedup = t_loop / t_batch

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload = {
        "schema": 1,
        "campaign": {
            "records": len(records),
            "environments": list(_ENVS),
            "apps": len(APPS),
            "scales": list(_SCALES),
            "iterations": _ITERATIONS,
        },
        "pipeline": {
            "seed_seconds": t_seed,
            "batched_seconds": t_batched,
            "speedup": pipeline_speedup,
        },
        "fold": {
            "row_seconds": t_row_fold,
            "columnar_seconds": t_col_fold,
            "speedup": fold_speedup,
        },
        "run_batch": {
            "loop_seconds": t_loop,
            "batched_seconds": t_batch,
            "speedup": run_batch_speedup,
        },
        "baseline": baseline,
    }
    with open(BENCH_PLAN_ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    record_timing(
        "plan::batched_pipeline",
        t_batched,
        kind="speedup-claim",
        records=len(records),
        seed_seconds=t_seed,
        speedup=pipeline_speedup,
    )
    record_timing(
        "plan::columnar_fold",
        t_col_fold,
        kind="speedup-claim",
        row_seconds=t_row_fold,
        speedup=fold_speedup,
    )
    print(
        f"\n{len(records)} records: seed {t_seed:.2f}s, batched {t_batched:.2f}s "
        f"-> {pipeline_speedup:.2f}x (fold {fold_speedup:.1f}x, "
        f"run_batch {run_batch_speedup:.2f}x)"
    )

    # The acceptance floor...
    assert pipeline_speedup >= 2.0, (
        f"batched pipeline only {pipeline_speedup:.2f}x vs the seed path"
    )
    # ...and the CI regression gate against the committed baseline.
    floor = baseline["pipeline_speedup"] / REGRESSION_TOLERANCE
    assert pipeline_speedup >= floor, (
        f"batched hot path regressed: {pipeline_speedup:.2f}x < "
        f"{floor:.2f}x (baseline {baseline['pipeline_speedup']}x / 1.25)"
    )
    fold_floor = baseline["fold_speedup"] / REGRESSION_TOLERANCE
    assert fold_speedup >= fold_floor, (
        f"columnar fold regressed: {fold_speedup:.1f}x < {fold_floor:.1f}x"
    )

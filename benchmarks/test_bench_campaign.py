"""Staged campaigns: the prune-early cost benchmark.

The campaign pipeline's acceptance claim, measured end to end: a
campaign over **8 scenarios on 4 environments** — six single-cloud
fabric degradations that miss the SLA and two price cuts that survive
it — must cost **at most 50% of the naive full-grid ensemble** at the
same final fidelity, while producing byte-identical folded statistics
for every cell both sides simulated.

The naive side runs every scenario at full replica depth with no
cache: the cost of not triaging.  The campaign side starts from a
*cold* cache and pays for everything the pipeline is made of — the
one-replica smoke pass over the full grid, cache writes, diff probes,
and the full-depth grid pass over the survivors — and still has to win
on the strength of pruning plus smoke-to-grid reuse alone.  Cells run
at scale 256 (the paper's largest), where provisioning + Kubernetes
scheduling dominate cell cost.

Results land in ``BENCH_campaign.json`` (redirect with
``BENCH_CAMPAIGN_ARTIFACT``) and are gated against
``benchmarks/BASELINE_campaign.json``: a cost-ratio regression of more
than 25% versus the committed baseline fails the benchmark job.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import record_timing
from repro.campaigns import CampaignRunner, CampaignSpec, SlaGate, StageBudget
from repro.ensemble import EnsembleRunner
from repro.scenarios.spec import FabricDegradation, PriceShock, Scenario

#: where the machine-readable campaign benchmark artifact lands
BENCH_CAMPAIGN_ARTIFACT = os.environ.get(
    "BENCH_CAMPAIGN_ARTIFACT", "BENCH_campaign.json"
)

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_campaign.json"
REGRESSION_TOLERANCE = 1.25

#: the acceptance floor: campaign ≤ 50% of the naive full-grid ensemble
ACCEPTANCE_RATIO = 0.50

#: one environment per cloud; scale 256 makes provisioning + K8s
#: scheduling the dominant cell cost
_ENVS = ("cpu-eks-aws", "cpu-aks-az", "cpu-gke-g", "cpu-onprem-a")
_CLOUDS = ("aws", "az", "g", "p")
N_PRUNED = 6


def _scenarios() -> tuple[Scenario, ...]:
    """Six SLA-missing fabric degradations plus two surviving price cuts.

    The fabric scenarios sink the touched cloud's FOM below the
    seed-study anchor, so their exceedance is 0 and SMOKE prunes them
    even at the relaxed margin.  The price cuts leave physics untouched
    (exceedance 1) and only move dollars, so they reach the grid stage.
    """
    pruned = [
        Scenario(
            scenario_id=f"fabric-{i:02d}",
            fabric=FabricDegradation(
                latency_multiplier=2.0 + 0.5 * i,
                clouds=(_CLOUDS[i % len(_CLOUDS)],),
            ),
        )
        for i in range(N_PRUNED)
    ]
    survivors = [
        Scenario(
            scenario_id="cheap-aws",
            price_shocks=(PriceShock(cloud="aws", multiplier=0.85),),
        ),
        Scenario(
            scenario_id="cheap-gcp",
            price_shocks=(PriceShock(cloud="g", multiplier=0.9),),
        ),
    ]
    return tuple(pruned + survivors)


def _spec() -> CampaignSpec:
    # min_completion sits below the Azure cells' 20% completion rate at
    # scale 256 — this benchmark measures pruning economics, and the
    # fabric scenarios must prune on *exceedance*, not on a baseline
    # quirk of one cloud's completion physics.
    return CampaignSpec(
        sla=SlaGate(min_exceedance=0.5, min_completion=0.1),
        scenarios=_scenarios(),
        env_ids=_ENVS,
        apps=("amg2023",),
        sizes=(256,),
        iterations=5,
        smoke=StageBudget(replicas=1, margin=0.5),
        grid=StageBudget(replicas=3),
    )


def _cell_signature(stats) -> tuple:
    """The folded statistics a cell publishes, exact to the bit."""
    return (
        stats.worlds,
        stats.cost.count, stats.cost.mean, stats.cost.std,
        stats.fom.count, stats.fom.mean, stats.fom.std,
        stats.completed.count, stats.completed.mean,
    )


def test_bench_campaign_vs_naive_full_grid():
    """Acceptance: ≤50% of the naive cost, byte-identical shared cells."""
    spec = _spec()
    naive_spec = spec.grid_spec(spec.scenarios)

    # Warm lazy imports and first-call caches on a small slice so
    # neither timed side pays the process's one-time costs.
    CampaignRunner(
        CampaignSpec(
            sla=spec.sla,
            scenarios=spec.scenarios[:1],
            env_ids=_ENVS[:1],
            apps=("amg2023",),
            sizes=(32,),
            iterations=2,
        )
    ).run()

    start = time.perf_counter()
    naive = EnsembleRunner(naive_spec).run()
    t_naive = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        campaign = CampaignRunner(spec, cache_dir=cache_dir).run()
        t_campaign = time.perf_counter() - start

    # The pipeline behaved as designed: every fabric scenario pruned at
    # SMOKE, both price cuts reached the grid, one of them won.
    pruned_ids = {c.scenario_id for c in campaign.pruned}
    assert pruned_ids == {s.scenario_id for s in spec.scenarios[:N_PRUNED]}
    grid_ids = {c.scenario_id for c in campaign.grid_candidates}
    assert grid_ids == {"baseline", "cheap-aws", "cheap-gcp"}
    # The winner is the cheapest-per-FOM SLA-passing config (here the
    # on-prem baseline: on-prem compute costs no cloud dollars at all).
    assert campaign.winner is not None
    eligible = [c for c in campaign.grid_candidates
                if c.sla_ok and c.cost_per_fom is not None]
    assert campaign.winner.cost_per_fom == min(c.cost_per_fom for c in eligible)

    # Cheaper, not different: every cell the grid stage folded is
    # bit-identical to the naive ensemble's fold of the same cell.
    shared = set(campaign.grid.cells) & set(naive.cells)
    assert shared == set(campaign.grid.cells)
    for key in sorted(shared):
        assert _cell_signature(campaign.grid.cells[key]) == _cell_signature(
            naive.cells[key]
        ), f"campaign grid diverged from the naive ensemble at {key}"

    ratio = t_campaign / t_naive
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload = {
        "schema": 1,
        "campaign": {
            "environments": list(_ENVS),
            "scenarios": len(spec.scenarios),
            "pruned_at_smoke": len(pruned_ids),
            "grid_replicas": spec.grid.replicas,
            "scale": 256,
            "iterations": 5,
            "digest": spec.digest(),
        },
        "cost": {
            "naive_seconds": t_naive,
            "campaign_seconds": t_campaign,
            "ratio": ratio,
            "speedup": t_naive / t_campaign,
        },
        "stages": {rec.name: rec.detail for rec in campaign.stage_records},
        "byte_identical_shared_cells": True,
        "baseline": baseline,
    }
    with open(BENCH_CAMPAIGN_ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    record_timing(
        "campaign::staged_vs_naive_grid",
        t_campaign,
        kind="cost-ratio-claim",
        naive_seconds=t_naive,
        ratio=ratio,
        pruned=len(pruned_ids),
        survivors=len(grid_ids) - 1,
    )
    print(
        f"\nstaged campaign: naive {t_naive:.2f}s, campaign "
        f"{t_campaign:.2f}s -> ratio {ratio:.3f} "
        f"({len(pruned_ids)} scenarios pruned at smoke)"
    )

    # The acceptance floor...
    assert ratio <= ACCEPTANCE_RATIO, (
        f"campaign cost {ratio:.1%} of the naive full grid "
        f"(acceptance requires <= {ACCEPTANCE_RATIO:.0%})"
    )
    # ...and the CI regression gate against the committed baseline.
    ceiling = baseline["campaign_ratio"] * REGRESSION_TOLERANCE
    assert ratio <= ceiling, (
        f"campaign execution regressed: cost ratio {ratio:.3f} > "
        f"{ceiling:.3f} (baseline {baseline['campaign_ratio']} x 1.25)"
    )

"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper, times the
regeneration, verifies every paper claim attached to the experiment,
and prints the regenerated rows/series so a benchmark run reproduces
the evaluation section end to end (run with ``-s`` to see the output).

Every benchmark run also leaves a machine-readable trace: per-test wall
times (an autouse fixture records every collected benchmark) plus any
richer entries benchmarks add via :func:`record_timing` (speedups,
record counts) are written to ``BENCH_ensemble.json`` at session end —
the artifact CI uploads so the bench trajectory is diffable run over
run.  Point ``BENCH_ARTIFACT`` somewhere else to redirect it.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import summarize
from repro.reporting.series import render_series
from repro.reporting.tables import render_table

#: iterations per (env, app, size) point; the paper ran 5
BENCH_ITERATIONS = 5

#: where the machine-readable timing artifact lands
BENCH_ARTIFACT = os.environ.get("BENCH_ARTIFACT", "BENCH_ensemble.json")

#: everything recorded this session, keyed by timing name
_TIMINGS: dict[str, dict] = {}


def record_timing(name: str, seconds: float, **extra) -> None:
    """Record one named timing (plus free-form metadata) for the artifact."""
    _TIMINGS[name] = {"seconds": seconds, **extra}


def pytest_collection_modifyitems(items):
    """Every benchmark carries the registered ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(autouse=True)
def _record_test_timing(request):
    """Wall-time every benchmark test into the artifact automatically."""
    start = time.perf_counter()
    yield
    record_timing(
        f"test::{request.node.name}",
        time.perf_counter() - start,
        kind="test-wall-time",
    )


def pytest_sessionfinish(session, exitstatus):
    """Write the per-run timing artifact (see module docstring)."""
    if not _TIMINGS:
        return
    payload = {"schema": 1, "exit_status": int(exitstatus), "timings": _TIMINGS}
    with open(BENCH_ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def regenerate(benchmark, experiment_id: str, *, iterations: int = BENCH_ITERATIONS) -> ExperimentOutput:
    """Time one experiment regeneration, then print and verify it."""
    start = time.perf_counter()
    out = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"seed": 0, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    record_timing(
        f"experiment::{experiment_id}",
        time.perf_counter() - start,
        kind="experiment",
        iterations=iterations,
    )
    print()
    if out.table is not None:
        print(render_table(out.table))
    for series in out.series:
        print(render_series(series))
        print()
    results = out.check()
    print(summarize(results))
    failing = [r.claim for r in results if not r.holds]
    assert not failing, f"{experiment_id}: paper claims failed: {failing}"
    return out

"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper, times the
regeneration, verifies every paper claim attached to the experiment,
and prints the regenerated rows/series so a benchmark run reproduces
the evaluation section end to end (run with ``-s`` to see the output).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import summarize
from repro.reporting.series import render_series
from repro.reporting.tables import render_table

#: iterations per (env, app, size) point; the paper ran 5
BENCH_ITERATIONS = 5


def pytest_collection_modifyitems(items):
    """Every benchmark carries the registered ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def regenerate(benchmark, experiment_id: str, *, iterations: int = BENCH_ITERATIONS) -> ExperimentOutput:
    """Time one experiment regeneration, then print and verify it."""
    out = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"seed": 0, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    if out.table is not None:
        print(render_table(out.table))
    for series in out.series:
        print(render_series(series))
        print()
    results = out.check()
    print(summarize(results))
    failing = [r.claim for r in results if not r.holds]
    assert not failing, f"{experiment_id}: paper claims failed: {failing}"
    return out

"""Benchmarks regenerating the in-text results of §3.2–§3.4."""

from benchmarks.conftest import regenerate


def test_hookup_times(benchmark):
    """§3.2: hookup times, including both Azure anomalies."""
    out = regenerate(benchmark, "hookup", iterations=10)
    assert out.table.rows


def test_stream_triad(benchmark):
    """§3.3 Stream: CPU cluster aggregates and per-GPU Triad figures."""
    out = regenerate(benchmark, "stream")
    assert out.table.rows


def test_ecc_survey(benchmark):
    """§3.3 Mixbench: the ECC fleet survey (Azure mixed, others on)."""
    out = regenerate(benchmark, "ecc", iterations=8)
    assert out.table.rows


def test_single_node_benchmark(benchmark):
    """§3.3: the supermarket fish problem (AKS anomaly detection)."""
    out = regenerate(benchmark, "nodebench", iterations=1)
    assert out.table.rows


def test_study_costs(benchmark):
    """§3.4: per-cloud study spend against the $49k budgets."""
    out = regenerate(benchmark, "costs", iterations=2)
    assert out.table.rows


def test_container_matrix(benchmark):
    """§3.1 Application Setup: the container build funnel."""
    out = regenerate(benchmark, "containers", iterations=0)
    assert out.table.rows

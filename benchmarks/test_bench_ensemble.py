"""Columnar frame aggregation vs the per-record loop, plus ensemble paths.

The ensemble engine's fold converts each world's records to a NumPy
structured array once and aggregates on typed columns.  These
benchmarks put numbers on the two claims that justify the design:

* **cell aggregation** over a paper-scale (≥25k record) store is at
  least 10x faster through the columnar frame than through the
  equivalent per-record Python loop — and produces identical numbers;
* a **world-summary-cached** ensemble re-run is far cheaper than the
  cold run it replays.

Both results land in ``BENCH_ensemble.json`` via the conftest's
:func:`record_timing`, so the bench trajectory tracks them run over run.
"""

from __future__ import annotations

import math
import time

import numpy as np

from benchmarks.conftest import record_timing
from repro.core.results import ResultStore
from repro.ensemble import EnsembleRunner, EnsembleSpec, ResultFrame
from repro.sim.run_result import RunRecord, RunState

#: 16 envs x 10 apps x 4 scales x 40 iterations = 25,600 records
_ENVS = tuple(f"env-{i:02d}" for i in range(16))
_APPS = tuple(f"app-{i}" for i in range(10))
_SCALES = (32, 64, 128, 256)
_ITERATIONS = 40


def _synthetic_store() -> ResultStore:
    """A deterministic paper-scale store (25,600 records)."""
    store = ResultStore()
    state_cycle = (
        RunState.COMPLETED, RunState.COMPLETED, RunState.COMPLETED,
        RunState.COMPLETED, RunState.FAILED, RunState.COMPLETED,
        RunState.COMPLETED, RunState.TIMEOUT,
    )
    n = 0
    for env in _ENVS:
        for app in _APPS:
            for scale in _SCALES:
                for it in range(_ITERATIONS):
                    state = state_cycle[n % len(state_cycle)]
                    completed = state is RunState.COMPLETED
                    store.add(
                        RunRecord(
                            env_id=env, app=app, scale=scale, nodes=scale,
                            iteration=it, state=state,
                            fom=(100.0 + math.sin(n) * 10.0) if completed else None,
                            fom_units="u",
                            wall_seconds=60.0 + (n % 17),
                            hookup_seconds=5.0,
                            cost_usd=0.01 * scale + (n % 7) * 0.001,
                        )
                    )
                    n += 1
    return store


def _python_cell_aggregates(store: ResultStore) -> dict:
    """The per-record reference loop the columnar fold replaces."""
    cells: dict = {}
    for r in store.records:
        key = (r.env_id, r.app, r.scale)
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = {
                "records": 0, "completed": 0,
                "fom_sum": 0.0, "wall_sum": 0.0, "cost_total": 0.0,
            }
        cell["records"] += 1
        cell["cost_total"] += r.cost_usd
        if r.state is RunState.COMPLETED and r.fom is not None:
            cell["completed"] += 1
            cell["fom_sum"] += r.fom
            cell["wall_sum"] += r.wall_seconds
    for cell in cells.values():
        n = cell["completed"]
        cell["fom_mean"] = cell["fom_sum"] / n if n else None
        cell["wall_mean"] = cell["wall_sum"] / n if n else None
    return cells


def _best_of(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_columnar_aggregation_vs_python_loop():
    """Acceptance: >=10x over the per-record loop at >=25k records."""
    store = _synthetic_store()
    assert len(store) >= 25_000

    frame = ResultFrame.from_store(store)  # one conversion per store
    frame.cell_aggregates()  # warm-up

    t_frame = _best_of(frame.cell_aggregates, repeats=5)
    t_loop = _best_of(lambda: _python_cell_aggregates(store), repeats=3)
    speedup = t_loop / t_frame

    # Identical numbers, not just faster ones: bincount accumulates in
    # record order, so the sums are bit-identical to the loop's.
    agg = frame.cell_aggregates()
    reference = _python_cell_aggregates(store)
    assert len(agg) == len(reference)
    for i in range(len(agg)):
        cell = reference[(str(agg.env[i]), str(agg.app[i]), int(agg.scale[i]))]
        assert int(agg.records[i]) == cell["records"]
        assert int(agg.completed[i]) == cell["completed"]
        assert float(agg.cost_total[i]) == cell["cost_total"]
        assert float(agg.fom_mean[i]) == cell["fom_mean"]

    record_timing(
        "ensemble::columnar_aggregation",
        t_frame,
        kind="speedup-claim",
        records=len(store),
        cells=len(agg),
        python_loop_seconds=t_loop,
        speedup=speedup,
    )
    print(f"\n{len(store)} records: loop {t_loop*1e3:.2f}ms, "
          f"frame {t_frame*1e3:.3f}ms -> {speedup:.1f}x")
    assert speedup >= 10.0, f"columnar aggregation only {speedup:.1f}x"


def test_bench_world_summary_cache(tmp_path):
    """A warm ensemble replays folded summaries: no simulation at all."""
    spec = EnsembleSpec(
        n_replicas=4,
        env_ids=("cpu-eks-aws", "cpu-onprem-a"),
        apps=("amg2023", "lammps"),
        sizes=(32, 64),
        iterations=2,
    )
    t0 = time.perf_counter()
    cold = EnsembleRunner(spec, cache_dir=str(tmp_path)).run()
    t_cold = time.perf_counter() - t0
    assert cold.world_cache_misses == 4

    t0 = time.perf_counter()
    warm = EnsembleRunner(spec, cache_dir=str(tmp_path)).run()
    t_warm = time.perf_counter() - t0
    assert warm.world_cache_hits == 4
    assert warm.render() == cold.render()

    speedup = t_cold / t_warm
    record_timing(
        "ensemble::world_cache_warm_run",
        t_warm,
        kind="speedup-claim",
        cold_seconds=t_cold,
        worlds=cold.worlds,
        speedup=speedup,
    )
    print(f"\ncold {t_cold:.3f}s, warm {t_warm:.3f}s -> {speedup:.1f}x")
    assert speedup >= 2.0, f"world-cache warm run only {speedup:.1f}x"

"""Zero-copy shard transport + out-of-core stores: the acceptance gate.

The PR's performance claims, measured on a ~1M-record columnar store
built through the production block path:

* draining a shard shipped as a **shared-memory descriptor**
  (:func:`~repro.parallel.transport.pack_columns`) costs the merging
  process at least **2x** less than receiving and unpickling every
  column byte from the pool pipe (in practice orders of magnitude:
  the attach maps the block and wraps views), with columns
  byte-identical and **zero** bytes copied at merge — worker-side
  packing overlaps across the pool and is reported alongside;
* building the same store **spill-backed**
  (:data:`~repro.core.results.SPILL_ENV`) peaks at no more than **1/4**
  of the in-RAM build's resident set.

Results land in ``BENCH_transport.json`` (redirect with
``BENCH_TRANSPORT_ARTIFACT``) and are gated against
``benchmarks/BASELINE_transport.json``: a regression of more than 25%
versus the committed baseline fails the benchmark job.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import record_timing
from repro.bench import render_transport_table, run_transport_bench, write_artifact
from repro.parallel.transport import shm_available

#: where the machine-readable transport benchmark artifact lands
BENCH_TRANSPORT_ARTIFACT = os.environ.get(
    "BENCH_TRANSPORT_ARTIFACT", "BENCH_transport.json"
)

#: committed baseline numbers; >25% regression fails the job
BASELINE_PATH = Path(__file__).parent / "BASELINE_transport.json"
REGRESSION_TOLERANCE = 1.25

#: the acceptance floors from the issue
SHM_SPEEDUP_FLOOR = 2.0
SPILL_RSS_CEILING = 0.25


def test_bench_shm_transport_and_spill():
    """Acceptance: ≥2x shm transport at ~1M records, spill RSS ≤ 1/4."""
    if not shm_available():
        pytest.skip("POSIX shared memory unavailable on this platform")
    payload = run_transport_bench(n_records=1_000_000)
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    payload["baseline"] = baseline
    write_artifact(payload, BENCH_TRANSPORT_ARTIFACT)
    print()
    print(render_transport_table(payload))

    assert payload["byte_identical"]
    shm = payload["shm"]
    assert shm is not None

    record_timing(
        "transport::shm_drain",
        shm["drain_seconds"],
        kind="speedup-claim",
        records=payload["records"],
        pickle_drain_seconds=payload["pickle"]["drain_seconds"],
        shm_pack_seconds=shm["pack_seconds"],
        speedup=payload["speedup"],
    )
    record_timing(
        "transport::spill_rss",
        payload["spill"]["spill_peak_kb"],
        kind="memory-claim",
        ram_peak_kb=payload["spill"]["ram_peak_kb"],
        rss_ratio=payload["spill"]["rss_ratio"],
    )

    # The acceptance floors...
    assert payload["speedup"] >= SHM_SPEEDUP_FLOOR, (
        f"shm transport only {payload['speedup']:.2f}x vs pickled columns"
    )
    assert shm["copied_bytes"] == 0, (
        f"merge copied {shm['copied_bytes']} column bytes (zero-copy broken)"
    )
    # The descriptor must stay tiny — orders of magnitude under the
    # column payload it replaces on the pipe.
    assert shm["pipe_bytes"] * 100 < payload["pickle"]["pipe_bytes"]
    assert payload["spill"]["rss_ratio"] <= SPILL_RSS_CEILING, (
        f"spilled build peaked at {payload['spill']['rss_ratio']:.2f}x of "
        f"in-RAM (ceiling {SPILL_RSS_CEILING})"
    )
    # ...and the CI regression gates against the committed baseline.
    floor = baseline["shm_speedup"] / REGRESSION_TOLERANCE
    assert payload["speedup"] >= floor, (
        f"shm transport regressed: {payload['speedup']:.2f}x < {floor:.2f}x "
        f"(baseline {baseline['shm_speedup']}x / 1.25)"
    )
    ceiling = baseline["spill_rss_ratio"] * REGRESSION_TOLERANCE
    assert payload["spill"]["rss_ratio"] <= ceiling, (
        f"spilled build regressed: RSS ratio {payload['spill']['rss_ratio']:.2f} "
        f"> {ceiling:.2f} (baseline {baseline['spill_rss_ratio']} * 1.25)"
    )

"""Benchmarks of the real numerical kernels backing the app models.

These time the genuine NumPy implementations (§2.8's numerical cores),
demonstrating the machine-local side of the study: Stream Triad, CG,
multigrid, GEMM, Monte Carlo transport, and the KBA sweep.
"""

import numpy as np

from repro.machine.kernels.cg import conjugate_gradient, poisson_2d
from repro.machine.kernels.gemm import blocked_gemm
from repro.machine.kernels.mc import mc_transport
from repro.machine.kernels.md import md_step
from repro.machine.kernels.multigrid import v_cycle_solve
from repro.machine.kernels.sweep import kba_sweep
from repro.machine.kernels.triad import triad


def test_stream_triad_kernel(benchmark):
    """Stream Triad: a = b + 3c over 2M doubles (memory-bandwidth bound)."""
    rng = np.random.default_rng(0)
    b = rng.random(2_000_000)
    c = rng.random(2_000_000)
    out = np.empty_like(b)
    result = benchmark(triad, b, c, 3.0, out)
    assert np.allclose(result[:10], b[:10] + 3.0 * c[:10])


def test_cg_solve_kernel(benchmark):
    """MiniFE core: CG on a 64x64 Poisson system."""
    A = poisson_2d(64)
    bvec = np.ones(64 * 64)
    result = benchmark(conjugate_gradient, A, bvec)
    assert result.converged


def test_multigrid_vcycle_kernel(benchmark):
    """AMG2023 core: 5 V-cycles on a 129x129 Poisson grid."""
    result = benchmark(v_cycle_solve, 129, cycles=5)
    assert result.residual_history[-1] < result.residual_history[0]


def test_blocked_gemm_kernel(benchmark):
    """MT-GEMM core: cache-blocked 384x384 matrix multiply."""
    rng = np.random.default_rng(1)
    A = rng.random((384, 384))
    B = rng.random((384, 384))
    C = benchmark(blocked_gemm, A, B, 128)
    assert C.shape == (384, 384)


def test_mc_transport_kernel(benchmark):
    """Quicksilver core: 20k-particle slab transport cycle."""
    result = benchmark(mc_transport, 20_000, seed=0)
    assert result.total_terminated == 20_000


def test_md_step_kernel(benchmark):
    """LAMMPS core: one velocity-Verlet step of a 200-atom LJ system."""
    rng = np.random.default_rng(2)
    pos = rng.random((200, 3)) * 8.0
    vel = rng.normal(0, 0.1, (200, 3))
    new_pos, new_vel, energy = benchmark(md_step, pos, vel, 8.0)
    assert new_pos.shape == (200, 3)


def test_kba_sweep_kernel(benchmark):
    """Kripke core: wavefront sweep over a 512x512 grid."""
    rng = np.random.default_rng(3)
    q = rng.random((512, 512))
    psi = benchmark(kba_sweep, q, 0.3)
    assert psi.shape == q.shape

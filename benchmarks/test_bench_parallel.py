"""Serial vs. sharded vs. cached study throughput.

The campaign's (environment, size) cells are independent (§2.9: one
cluster per size), so the study shards across a process pool and caches
finished runs content-addressed by their coordinates.  These benchmarks
put numbers on the three execution modes over the CLI's default campaign
config (every environment, every app, 2 iterations) so ``BENCH_*.json``
tracks the speedup, and assert the headline guarantees: identical
datasets in every mode, and a ≥2x wall-time win for a cache-warm
campaign over a cold serial one.

Worker count: the cold sharded benchmark uses 4 workers.  On a
multi-core host the pool buys wall time roughly linearly in cores; on a
single-core CI runner it only buys process overhead, which is why the
asserted ≥2x comes from the cache path — that one is hardware-
independent.
"""

from __future__ import annotations

import time

import pytest

from repro.apps.registry import APPS
from repro.core.study import StudyConfig, StudyRunner
from repro.envs.registry import ENVIRONMENTS

#: the CLI's default campaign (`python -m repro study`)
DEFAULT_CONFIG = StudyConfig(
    env_ids=tuple(ENVIRONMENTS),
    apps=tuple(APPS),
    sizes=None,
    iterations=2,
    seed=0,
)


def _run(workers: int = 1, cache_dir: str | None = None):
    return StudyRunner(DEFAULT_CONFIG, workers=workers, cache_dir=cache_dir).run()


def test_bench_serial_study(benchmark):
    """Baseline: the whole campaign in one process, no cache."""
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert report.datasets > 1000


def test_bench_sharded_study(benchmark):
    """Sharded: (env, size) cells over 4 workers, no cache."""
    report = benchmark.pedantic(
        _run, kwargs={"workers": 4}, rounds=1, iterations=1
    )
    assert report.datasets > 1000


def test_bench_cached_study(benchmark, tmp_path):
    """Cache-warm: every cell replayed from the content-addressed cache."""
    _run(cache_dir=str(tmp_path))  # populate
    report = benchmark.pedantic(
        _run,
        kwargs={"workers": 4, "cache_dir": str(tmp_path)},
        rounds=1,
        iterations=1,
    )
    assert report.cache_hits == report.datasets


def test_sharded_and_cached_studies_match_serial_with_2x_speedup(tmp_path):
    """Acceptance: identical datasets, ≥2x for the cache-warm campaign."""
    t0 = time.perf_counter()
    serial = _run()
    t_serial = time.perf_counter() - t0

    sharded = _run(workers=4)
    assert sharded.store.to_csv() == serial.store.to_csv()
    assert sharded.spend_by_cloud == serial.spend_by_cloud

    _run(workers=4, cache_dir=str(tmp_path))  # cold, populates the cache
    t0 = time.perf_counter()
    warm = _run(workers=4, cache_dir=str(tmp_path))
    t_warm = time.perf_counter() - t0

    assert warm.store.to_csv() == serial.store.to_csv()
    assert warm.cache_hits == warm.datasets
    speedup = t_serial / t_warm
    print(f"\nserial {t_serial:.3f}s, cache-warm {t_warm:.3f}s -> {speedup:.1f}x")
    assert speedup >= 2.0, f"cache-warm speedup only {speedup:.2f}x"

#!/usr/bin/env python
"""Scaling study: strong- and weak-scaling sweeps across environments.

Reproduces the core of the paper's §3.3 methodology for two contrasting
applications:

* LAMMPS (strong scaled) — where does scaling stop per environment?
* AMG2023 (weak scaled) — who sustains FOM growth to 256 units?

Prints a per-environment scaling table with parallel efficiency, then
the figure-style series renderings.
"""

from repro.core.analysis import fom_series, parallel_efficiency
from repro.envs.registry import cpu_environments
from repro.experiments.base import run_matrix, series_from_store
from repro.reporting.series import render_series
from repro.reporting.tables import Table, render_table

ITERATIONS = 3


def scaling_report(app: str, *, higher_is_better: bool = True) -> None:
    store = run_matrix(cpu_environments(), [app], iterations=ITERATIONS, seed=0)

    table = Table(
        title=f"{app} scaling (CPU environments, mean of {ITERATIONS} runs)",
        columns=("Environment", "32", "64", "128", "256", "eff 32->256"),
        caption="FOM per size; 'eff' is parallel efficiency vs the 32-node run.",
    )
    for env in cpu_environments():
        series = fom_series(store, env.env_id, app)
        cells = []
        for size in (32, 64, 128, 256):
            stat = series.get(size)
            cells.append(f"{stat.mean:.3g}" if stat else "-")
        eff = parallel_efficiency(
            store, env.env_id, app, 32, 256, higher_is_better=higher_is_better
        )
        cells.append(f"{eff:.2f}" if eff is not None else "-")
        table.add(env.env_id, *cells)
    print(render_table(table))
    print()
    print(render_series(series_from_store(
        store, app, title=f"{app} FOM by environment", y_label="FOM",
        higher_is_better=higher_is_better,
    )))
    print()


def main() -> None:
    print("=" * 72)
    print("Strong scaling: LAMMPS (fixed 2.6M-atom ReaxFF problem)")
    print("=" * 72)
    scaling_report("lammps")

    print("=" * 72)
    print("Weak scaling: AMG2023 (256x256x128 grid per node)")
    print("=" * 72)
    scaling_report("amg2023")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Usability assessment: run a small study campaign and score the effort.

Mirrors the paper's §2.5/§3.1 workflow:

1. run a campaign on a set of environments (containers get built,
   clusters provisioned, faults recorded as incidents);
2. merge the campaign's incident log with the curated incident database;
3. print the Table 3 effort grid plus the incident narrative per
   environment.
"""

from repro.core.study import StudyConfig, StudyRunner
from repro.core.usability import usability_table
from repro.reporting.tables import Table, render_table


def main() -> None:
    config = StudyConfig(
        env_ids=("cpu-eks-aws", "cpu-aks-az", "cpu-gke-g", "gpu-cyclecloud-az"),
        apps=("amg2023", "lammps", "osu"),
        sizes=(32, 256),
        iterations=2,
        seed=11,
    )
    print("running campaign:", ", ".join(config.env_ids))
    report = StudyRunner(config).run()
    print(
        f"-> {report.datasets} datasets, {report.clusters_created} clusters, "
        f"{report.containers_built} containers built "
        f"({report.containers_failed} failed)\n"
    )

    assessments = usability_table(extra=report.incidents)

    table = Table(
        title="Environment Usability - Assessment of Effort (Table 3)",
        columns=("Environment", "Acc", "Setup", "Dev", "App Setup", "Manual"),
    )
    for a in assessments:
        table.add(*a.as_row())
    print(render_table(table))

    print("\nIncident narratives (campaign-observed incidents marked *):")
    for a in assessments:
        if a.env_id not in config.env_ids:
            continue
        print(f"\n{a.display_name} [{a.accelerator.upper()}]"
              f" — account difficulty: {a.account_difficulty}")
        for inc in a.incidents:
            marker = "*" if inc.source.startswith(("fault:", "build:")) else " "
            print(f"  {marker} [{inc.category:>19s}] "
                  f"{inc.effort_minutes:6.0f} min  {inc.description[:70]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Composite-workflow placement: portability as a dimension of performance.

Builds the multiscale campaign the paper's introduction motivates (a
tightly coupled simulation + AI services + database), scores every study
environment for every component, and prints a placement plan — the
"decide when, how, and where to run" capability §4.1 argues portability
buys you.
"""

from repro.envs.registry import ENVIRONMENTS
from repro.reporting.tables import Table, render_table
from repro.units import fmt_usd
from repro.workflows.dag import mummi_style_workflow
from repro.workflows.portability import PortabilityScorer, portability_index


def main() -> None:
    wf = mummi_style_workflow()
    scorer = PortabilityScorer(seed=0)

    print(f"workflow: {wf.name} — {len(wf.components())} components, "
          f"{wf.total_nodes()} nodes minimum\n")

    index_table = Table(
        title="Portability index per component",
        columns=("Component", "Kind", "Requirements", "Index"),
        caption="Index = fraction of the 14 study environments that can host "
        "the component. Portability enlarges the resource pool (§4.1).",
    )
    for c in wf.components():
        reqs = []
        if c.needs_gpu:
            reqs.append("gpu")
        if c.needs_low_latency:
            reqs.append("low-latency")
        if c.needs_elasticity:
            reqs.append("elastic")
        if c.needs_containers:
            reqs.append("containers")
        index_table.add(
            c.name, c.kind.value, "+".join(reqs) or "-",
            f"{portability_index(c):.0%}",
        )
    print(render_table(index_table))

    placement = scorer.place(wf)
    plan_table = Table(
        title="Placement plan (greedy, colocating chatty pairs)",
        columns=("Component", "Environment", "Fit", "$/hr", "Est. wait"),
    )
    for name, fit in placement.items():
        env = ENVIRONMENTS[fit.env_id]
        wait = (
            "inf" if fit.acquisition_wait == float("inf")
            else f"{fit.acquisition_wait / 60:.0f} min"
        )
        plan_table.add(name, f"{env.display_name} ({fit.env_id})",
                       f"{fit.fit_score:.2f}", f"{fit.hourly_cost:.2f}", wait)
    print()
    print(render_table(plan_table))
    print(f"\nplan cost: {fmt_usd(scorer.plan_cost_per_hour(placement))}/hour")

    # Show why the tightly coupled simulation cannot go to every cloud.
    macro = wf.component("macro-sim")
    print(f"\nwhere '{macro.name}' cannot run:")
    for env in ENVIRONMENTS.values():
        fit = scorer.assess(macro, env)
        if not fit.feasible:
            print(f"  {env.env_id:28s} {'; '.join(fit.reasons)}")


if __name__ == "__main__":
    main()

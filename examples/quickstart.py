#!/usr/bin/env python
"""Quickstart: run one HPC app on one cloud environment and read the FOM.

This is the smallest useful slice of the library: pick an environment
from Table 1, pick an application from §2.8, pick a scale, and run.
"""

from repro import ExecutionEngine, environment
from repro.units import fmt_seconds, fmt_usd


def main() -> None:
    engine = ExecutionEngine(seed=7)

    # AMG2023 (weak scaled) on Amazon EKS at 64 CPU nodes.
    env = environment("cpu-eks-aws")
    record = engine.run(env, "amg2023", scale=64)

    print(f"environment : {env.display_name} ({env.env_id})")
    print(f"instances   : {record.nodes} x {env.instance().name}")
    print(f"fabric      : {env.base_fabric().name}")
    print(f"state       : {record.state.value}")
    print(f"FOM         : {record.fom:.4g} {record.fom_units}")
    print(f"wall time   : {fmt_seconds(record.wall_seconds)}")
    print(f"hookup time : {fmt_seconds(record.hookup_seconds)}")
    print(f"cost        : {fmt_usd(record.cost_usd)}")

    # The same app on the on-premises cluster A, for comparison.
    onprem = engine.run(environment("cpu-onprem-a"), "amg2023", scale=64)
    ratio = onprem.fom / record.fom
    print()
    print(f"on-prem A FOM is {ratio:.2f}x the EKS FOM at the same size")
    print("(Figure 2: on-premises had the highest CPU FOMs)")


if __name__ == "__main__":
    main()

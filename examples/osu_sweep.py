#!/usr/bin/env python
"""OSU micro-benchmark sweep: compare fabrics the way Figure 5 does.

Runs osu_latency, osu_bw, and osu_allreduce across the message-size
sweep on every CPU environment at 256 nodes, prints the crossover
points, and highlights the AWS 32 KiB allreduce spike.  Also
demonstrates the §2.8 pair-sampling strategy (8 nodes, 28 pairs).
"""

import numpy as np

from repro.apps.osu import MESSAGE_SIZES, OSUBenchmarks
from repro.envs.registry import cpu_environments
from repro.reporting.tables import Table, render_table
from repro.sim.execution import ExecutionEngine
from repro.units import fmt_bytes


def main() -> None:
    engine = ExecutionEngine(seed=0)
    osu = OSUBenchmarks()

    headline_sizes = (8, 1024, 32768, 65536, 4 * 1024 * 1024)
    lat_table = Table(
        title="osu_latency: one-way latency (us) at 256 nodes",
        columns=("Environment", *(fmt_bytes(s) for s in headline_sizes)),
    )
    ar_table = Table(
        title="osu_allreduce: average latency (us) at 256 nodes",
        columns=("Environment", *(fmt_bytes(s) for s in headline_sizes)),
        caption="Note the AWS spike at 32KiB (OpenMPI issue, since fixed).",
    )
    bw_peak = {}
    for env in cpu_environments():
        ctx = engine.context(env, 256)
        lat_table.add(env.env_id, *(f"{osu.latency_us(ctx, s):.2f}" for s in headline_sizes))
        ar_table.add(env.env_id, *(f"{osu.allreduce_us(ctx, s):.0f}" for s in headline_sizes))
        bw_peak[env.env_id] = max(
            osu.bandwidth_mbps(ctx, s) for s in MESSAGE_SIZES
        )

    print(render_table(lat_table))
    print()
    print(render_table(ar_table))

    print("\npeak osu_bw (MB/s):")
    for env_id, bw in sorted(bw_peak.items(), key=lambda kv: -kv[1]):
        print(f"  {env_id:28s} {bw:>12,.0f}")

    # Pair sampling, as the study did for point-to-point tests.
    rng = np.random.default_rng(0)
    pairs = OSUBenchmarks.sample_pairs(256, rng)
    print(f"\npair-sampling strategy: {len(pairs)} pairs drawn from 8 of 256 nodes")
    print(f"  first five pairs: {pairs[:5]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Elastic ensembles and resource-acquisition planning.

The paper's discussion (§4.1) sketches the converged-computing workflow
this library's extensions support end to end:

1. **Plan the acquisition** with the HPC-style queue estimator the paper
   wishes clouds offered, falling back to a capacity block when the
   GPU pool can't cover the request.
2. **Choose a scaling strategy** by pricing the campaign's job trace
   under auto-scaling vs a static cluster ("Auto-scaling should be used
   carefully").
3. **Run the ensemble** as a hierarchy of Flux instances — the Flux
   Operator pattern: a parent instance carves per-member child
   instances, members run concurrently, and the parent reclaims nodes.
"""

from repro.cloud.autoscaler import bursty_trace, compare_strategies, steady_trace
from repro.cloud.reservations import CapacityBlockMarket, QueueEstimator
from repro.scheduler.base import Job
from repro.scheduler.flux import FluxScheduler
from repro.units import fmt_usd


def plan_acquisition() -> None:
    print("=== 1. acquisition planning ===")
    estimator = QueueEstimator(seed=3)
    for nodes in (8, 24, 64):
        est = estimator.estimate("aws", "p3dn.24xlarge", nodes)
        wait = "inf" if est.estimated_wait == float("inf") else f"{est.estimated_wait / 3600:.1f}h"
        print(f"  {nodes:3d} GPU nodes: est. wait {wait:>6s} "
              f"(confidence {est.confidence:.0%}) — {est.advice}")

    market = CapacityBlockMarket()
    block = market.reserve("aws", "p3dn.24xlarge", 32, start=0.0, hours=48.0)
    print(f"  reserved capacity block: {block.nodes} nodes x "
          f"{block.duration_hours:.0f}h = {fmt_usd(block.total_cost)} "
          "(the study's 48-hour GPU window, §3.1)")


def choose_strategy() -> None:
    print("\n=== 2. scaling strategy ===")
    for label, trace in (("bursty (6 jobs, 4h apart)", bursty_trace()),
                         ("steady (20 back-to-back jobs)", steady_trace())):
        results = compare_strategies(trace)
        auto, static = results["autoscale"], results["static"]
        winner = "autoscale" if auto.cost_usd < static.cost_usd else "static"
        print(f"  {label:32s} autoscale {fmt_usd(auto.cost_usd):>10s} "
              f"({auto.scaling_operations} ops) vs static "
              f"{fmt_usd(static.cost_usd):>10s} -> use {winner}")


def run_ensemble() -> None:
    print("\n=== 3. hierarchical Flux ensemble ===")
    parent = FluxScheduler(nodes=64)
    members = []
    for i in range(4):
        child = parent.spawn_child(16)
        for j in range(3):
            child.submit(Job(f"member{i}-sim{j}", nodes=16, runtime=120.0,
                             walltime_limit=3600.0))
        members.append(child)
    parent.events.run()
    for i, child in enumerate(members):
        print(f"  member {i}: {child.stats.completed} simulations completed, "
              f"mean wait {child.stats.mean_wait:.1f}s")
    for child in members:
        parent.teardown_child(child)
    print(f"  parent reclaimed all nodes: {parent.pool.free_count}/64 free")


def main() -> None:
    plan_acquisition()
    choose_strategy()
    run_ensemble()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cost planning: which environment should run your workload?

§4.2 advises benchmarking the node-cost/execution-time trade-off before
committing a budget.  This example does that for AMG2023: it simulates
the weak-scaling sweep in every cloud environment, prices each, and
prints a recommendation — reproducing the paper's headline finding that
GPU runs are cheaper despite the pricier instances (Table 4).

It also demonstrates the budget guard with cost-reporting lag: a
Azure-style 24-hour lag lets a day of overspending through before the
console shows it.
"""

from repro.cloud.providers import Azure
from repro.core.costs import amg_cost_table, cheapest_accelerator
from repro.envs.registry import cpu_environments, gpu_environments
from repro.errors import BudgetExceededError
from repro.experiments.base import run_matrix
from repro.reporting.tables import Table, render_table
from repro.units import HOUR, fmt_usd


def recommend() -> None:
    envs = [e for e in cpu_environments() + gpu_environments() if e.cloud != "p"]
    store = run_matrix(envs, ["amg2023"], iterations=3, seed=0)
    rows = amg_cost_table(store)

    table = Table(
        title="AMG2023: total cost to run the full size sweep (3 iterations)",
        columns=("Environment", "Accel", "$/hr/node", "Total"),
    )
    for r in rows:
        table.add(r.display_name, r.accelerator, f"${r.cost_per_hour:.2f}",
                  fmt_usd(r.total_cost))
    print(render_table(table))
    best = rows[0]
    print(f"\nrecommendation: {best.display_name} ({best.accelerator}) at "
          f"{fmt_usd(best.total_cost)} total")
    print(f"cheaper accelerator class overall: {cheapest_accelerator(rows)} "
          "(despite higher instance prices — Table 4's finding)")


def budget_lag_demo() -> None:
    print("\n--- budget guard vs reporting lag (§4.2) ---")
    az = Azure(seed=0, budget=5_000.0)
    az.request_quota("ND40rs_v2", 33)
    cluster = az.provision_cluster("ND40rs_v2", 32, environment_kind="vm")
    az.release_cluster(cluster, now=10 * HOUR)  # ~$7k of GPU time
    for hours in (12, 24, 40):
        try:
            az.meter.check_budget("az", at_time=hours * HOUR)
            print(f"t={hours:>3}h: console shows "
                  f"{fmt_usd(az.meter.reported(hours * HOUR, 'az'))} — guard silent")
        except BudgetExceededError as e:
            print(f"t={hours:>3}h: BUDGET EXCEEDED — spent {fmt_usd(e.spent)} "
                  f"of {fmt_usd(e.budget)} (visible only after the 24h lag)")


def main() -> None:
    recommend()
    budget_lag_demo()


if __name__ == "__main__":
    main()

"""Unit helpers and constants.

All internal quantities use SI base units: seconds, bytes, bytes/second,
flop/s.  Currency is USD.  These helpers exist so that module code reads
like the paper ("100 Gbps fabric", "16GB GPU") while arithmetic stays in
base units.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


def gib(value: float) -> float:
    """Convert GiB to bytes."""
    return value * GiB


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * HOUR


# ---------------------------------------------------------------------------
# Compute
# ---------------------------------------------------------------------------

GFLOP = 1e9
TFLOP = 1e12


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units, matching OSU output)."""
    for unit, size in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= size:
            value = n / size
            return f"{value:.0f}{unit}" if value == int(value) else f"{value:.1f}{unit}"
    return f"{int(n)}B"


def fmt_usd(x: float) -> str:
    """Format a dollar amount the way the paper's tables do."""
    return f"${x:,.2f}"


def fmt_seconds(t: float) -> str:
    """Human-readable duration."""
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1.0:
        return f"{t * 1e3:.1f}ms"
    if t < 120.0:
        return f"{t:.1f}s"
    if t < 2 * HOUR:
        return f"{t / 60.0:.1f}min"
    return f"{t / HOUR:.2f}h"

"""Shard planning and execution: one (environment, cluster size) cell each.

The paper deployed a *separate cluster per size* (§2.9), which makes the
campaign embarrassingly parallel at the granularity of one environment
at one cluster size: each cell provisions its own cluster, runs every
configured app for every iteration, and releases the cluster.  Nothing
crosses cell boundaries —

* every stochastic draw is keyed by ``stream(seed, *key-path)`` on the
  cell's own coordinates, never on global call order;
* billing charges depend only on metered *durations*, so a per-cell
  clock starting at zero accrues the same dollars as the serial runner's
  per-cloud running clock;
* quota grants are keyed draws too (grants only ever grow, and every
  cell requests its own padded allocation).

A :class:`StudyShard` is therefore a pure value describing one cell, and
:func:`execute_shard` is a pure function from shard to
:class:`ShardResult` — safe to ship to a worker process and merge back
(:mod:`repro.parallel.merge`) into a result byte-identical to the
serial run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.cloud.providers import get_provider
from repro.core.incidents import Incident, incident_from_fault
from repro.envs.environment import Environment, EnvironmentKind
from repro.envs.registry import ENVIRONMENTS
from repro.errors import ProvisioningError, QuotaError
from repro.k8s.cluster import KubernetesCluster
from repro.k8s.cni import CniConfig
from repro.k8s.daemonsets import (
    AKS_INFINIBAND_INSTALLER,
    EFA_DEVICE_PLUGIN,
    NVIDIA_DEVICE_PLUGIN,
)
from repro.k8s.flux_operator import FluxOperator, MiniClusterSpec
from repro.errors import ConfigurationError
from repro.core.results import ResultStore
from repro.scenarios.apply import overlay_provider
from repro.scenarios.spec import Scenario, active, footprint_digest
from repro.scheduler.queueing import OnPremQueueModel
from repro.sim.cache import RunCache, decode_record, encode_record, shard_key
from repro.sim.execution import ExecutionEngine, HookupCutoff
from repro.sim.run_result import RunRecord
from repro.telemetry import Tracer, current_tracer, span, use_tracer


@dataclass(frozen=True)
class StudyShard:
    """One independent work unit: an environment at one cluster size."""

    index: int  # position in the serial campaign order
    env_id: str
    scale: int
    apps: tuple[str, ...]
    iterations: int
    seed: int
    cache_dir: str | None = None
    #: what-if overlay (:mod:`repro.scenarios`); ``None`` = baseline.
    #: A pure value like the rest of the shard, so it ships to worker
    #: processes with no extra machinery.
    scenario: Scenario | None = None
    #: which replica-world this cell belongs to when several campaigns
    #: share one flattened work list (:mod:`repro.ensemble`); a plain
    #: label — it never participates in cache keys or simulation.
    world: int = 0
    #: record spans while executing and ship them back on the result
    #: (:mod:`repro.telemetry`); a transport flag only — it never
    #: participates in cache keys or simulation.
    trace: bool = False
    #: how the result store crosses back to the parent: ``"pickle"``
    #: (plain column pickle) or ``"shm"`` (one shared-memory block per
    #: shard, descriptor-only pickle — :mod:`repro.parallel.transport`).
    #: Like ``trace``, a transport flag only: it never participates in
    #: cache keys or simulation, and any setting yields byte-identical
    #: merged results.
    transport: str = "pickle"
    #: 0-based retry attempt, stamped by the pool on re-dispatch; the
    #: chaos harness gates injection on it so retries converge.  Pure
    #: execution bookkeeping — never in cache keys or simulation.
    attempt: int = 0
    #: fault-injection plan (:class:`repro.chaos.FaultPlan`); ``None``
    #: almost always.  Another transport-style flag: any plan the run
    #: survives yields byte-identical merged results.
    chaos: object | None = None


@dataclass
class ShardResult:
    """Everything one cell produced, ready to merge.

    Run results live in a columnar :class:`ResultStore`: the worker
    fills typed buffers directly (:meth:`ExecutionEngine.run_block`)
    and the store pickles as raw column arrays — shard transport never
    serializes per-record objects.  :attr:`records` materializes rows
    for callers that still want them.
    """

    index: int
    env_id: str
    scale: int
    world: int = 0
    store: ResultStore = field(default_factory=ResultStore)
    incidents: list[Incident] = field(default_factory=list)
    spend_by_cloud: dict[str, float] = field(default_factory=dict)
    clusters_created: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: malformed cache entries encountered (and re-simulated around)
    cache_invalid: int = 0
    #: why those entries were invalid: reason label → count
    cache_invalid_reasons: dict[str, int] = field(default_factory=dict)
    #: which process executed the cell and in what dispatch order the
    #: pool handed it out (-1 = never went through the pool); pure
    #: observability — merges ignore them
    worker_pid: int = -1
    dispatch_ordinal: int = -1
    #: wall seconds the executing process spent on this cell (``None``
    #: until something measures it — 0.0 is a legitimate measurement)
    worker_seconds: float | None = None
    #: columnar span snapshot recorded while executing (``None`` unless
    #: the shard was dispatched with ``trace=True`` to another process)
    trace: dict | None = None
    #: how many dispatches it took to deliver this result (0 = never
    #: went through the pool's retry machinery); pure observability
    attempts: int = 0

    @property
    def records(self) -> list[RunRecord]:
        """Row objects, materialized lazily from the columnar store."""
        return self.store.records


def plan_shards(
    config,
    *,
    cache_dir: str | None = None,
    scenario: Scenario | None = None,
    world: int = 0,
) -> list[StudyShard]:
    """Split a :class:`~repro.core.study.StudyConfig` into cells.

    Shards are ordered exactly as the serial campaign iterates —
    environments in config order, sizes in environment order — so a
    merge in shard order reproduces the serial dataset ordering.

    ``scenario`` tags every cell with a what-if overlay; an *empty*
    scenario normalizes to ``None`` here, so a baseline-equivalent
    scenario plans (and caches) exactly like no scenario at all.
    ``world`` labels every cell with its replica-world when plans from
    several campaigns are flattened into one work list (the ensemble
    runner regroups results by it).

    One normalization relative to the pre-shard runner: undeployable
    environments used to emit their skip records app-major across sizes;
    as cells they now emit size-major like every deployable environment.
    The record *set* is unchanged, only its order within those rows.
    """
    scenario = active(scenario)
    shards: list[StudyShard] = []
    for env_id in config.env_ids:
        env = ENVIRONMENTS[env_id]
        sizes = config.sizes or env.sizes()
        for scale in sizes:
            shards.append(
                StudyShard(
                    index=len(shards),
                    env_id=env_id,
                    scale=scale,
                    apps=tuple(config.apps),
                    iterations=config.iterations,
                    seed=config.seed,
                    cache_dir=cache_dir,
                    scenario=scenario,
                    world=world,
                )
            )
    return shards


def _deploy_kubernetes(env: Environment, cluster) -> float:
    """Stand up K8s + daemonsets + MiniCluster; returns setup seconds."""
    try:
        kube = KubernetesCluster.create(cluster)
    except ConfigurationError:
        # The 256-node EKS CNI incident: patch for prefix delegation.
        kube = KubernetesCluster.create(
            cluster, cni=CniConfig("aws-vpc-cni", prefix_delegation=True)
        )
    if env.is_gpu:
        kube.deploy_daemonset(NVIDIA_DEVICE_PLUGIN)
    if env.cloud == "aws":
        kube.deploy_daemonset(EFA_DEVICE_PLUGIN)
    if env.cloud == "az":
        kube.deploy_daemonset(AKS_INFINIBAND_INSTALLER)
    operator = FluxOperator(kube)
    fabric_res = None
    if env.cloud == "aws":
        fabric_res = "vpc.amazonaws.com/efa"
    elif env.cloud == "az":
        fabric_res = "rdma/ib"
    spec = MiniClusterSpec(
        name=f"study-{env.env_id}",
        image="study-app-image",
        size=len(kube.nodes),
        tasks_per_node=env.instance().cores,
        gpu_per_pod=env.gpus_per_node if env.is_gpu else 0,
        fabric_resource=fabric_res,
    )
    mc = operator.create(spec)
    return kube.setup_seconds + mc.bringup_seconds


def shard_summary_key(shard: StudyShard, *, azure_ucx_tuned: bool = True) -> str:
    """The cell-level cache key for one shard's folded summary.

    The scenario contribution is the shard's per-cell overlay
    *footprint* (:meth:`~repro.scenarios.spec.Scenario.footprint` for
    the cell's cloud), so a cell a scenario cannot touch keys exactly
    like the baseline cell — the incremental planner
    (:mod:`repro.plan.diff`) attaches such cells straight from the
    cache without dispatching them to a worker.
    """
    cloud = ENVIRONMENTS[shard.env_id].cloud
    return shard_key(
        seed=shard.seed,
        env_id=shard.env_id,
        scale=shard.scale,
        apps=shard.apps,
        iterations=shard.iterations,
        engine_options={"azure_ucx_tuned": azure_ucx_tuned},
        scenario=footprint_digest(shard.scenario, cloud),
    )


def _shard_cache_key(shard: StudyShard, engine: ExecutionEngine) -> str:
    # Derive the engine options from the engine actually executing the
    # cell so the cell-level key invalidates exactly when run-level keys
    # do.  The engine's scenario is the shard's own (execute_shard built
    # it that way), so the summary key *is* the cell key.
    return shard_summary_key(shard, azure_ucx_tuned=engine.azure_ucx_tuned)


def attach_shard(shard: StudyShard, cache: RunCache) -> ShardResult | None:
    """A shard's cached result, or ``None`` when it must execute.

    The incremental reuse path: probe the cell-level summary under
    :func:`shard_summary_key` and rebuild the :class:`ShardResult`
    without provisioning, simulation, or a worker round-trip.  A
    malformed entry flows through :meth:`RunCache.note_invalid` (the
    caller surfaces the counter) and returns ``None`` — reuse degrades
    to re-execution, never to silence.
    """
    cell_key = shard_summary_key(shard)
    cached = cache.get_json(cell_key)
    if cached is None:
        return None
    try:
        result = _decode_shard(shard, cached)
    except (KeyError, TypeError, ValueError) as exc:
        cache.note_invalid(cell_key, f"study-cell entry malformed: {exc}")
        return None
    return result


def _encode_shard(result: ShardResult) -> dict:
    return {
        "records": [encode_record(r) for r in result.records],
        "incidents": [
            {
                "env_ids": list(i.env_ids),
                "category": i.category,
                "effort_minutes": i.effort_minutes,
                "description": i.description,
                "source": i.source,
            }
            for i in result.incidents
        ],
        "spend_by_cloud": result.spend_by_cloud,
        "clusters_created": result.clusters_created,
    }


def _decode_shard(shard: StudyShard, data: dict) -> ShardResult:
    store = ResultStore(decode_record(r) for r in data["records"])
    incidents = [
        Incident(
            env_ids=tuple(i["env_ids"]),
            category=i["category"],
            effort_minutes=i["effort_minutes"],
            description=i["description"],
            source=i["source"],
        )
        for i in data["incidents"]
    ]
    return ShardResult(
        index=shard.index,
        env_id=shard.env_id,
        scale=shard.scale,
        world=shard.world,
        store=store,
        incidents=incidents,
        spend_by_cloud=dict(data["spend_by_cloud"]),
        clusters_created=int(data["clusters_created"]),
        cache_hits=len(store),
    )


def execute_shard(shard: StudyShard) -> ShardResult:
    """Run one cell start to finish; pure in (shard) → (result).

    With a cache directory configured, the cache works at two levels:
    the engine consults the run-level cache per record, and the whole
    cell is stored under a :func:`~repro.sim.cache.shard_key` so a
    repeat campaign skips provisioning and Kubernetes bring-up too.

    When the shard is dispatched with ``trace=True`` and no tracer is
    active (i.e. in a worker process), a local
    :class:`~repro.telemetry.Tracer` records the cell and its snapshot
    rides back on the result; under an already-active tracer (inline
    execution in the parent) spans record directly into it instead.
    Timing never feeds the result — traced and untraced runs produce
    byte-identical stores.
    """
    if shard.chaos is not None:
        from repro.chaos import inject_before_execute

        inject_before_execute(shard)
    active = current_tracer()
    if shard.trace and (active is None or active.pid != os.getpid()):
        # No tracer here, or a stale one inherited across fork: this is
        # a worker process, so record locally and ship the snapshot back
        # on the result.  (Inline execution — same pid — records
        # straight into the parent's tracer instead.)
        tracer = Tracer(label=f"worker-{os.getpid()}")
        t0 = time.perf_counter()
        with use_tracer(tracer):
            with span("shard.execute", env=shard.env_id, scale=shard.scale,
                      world=shard.world):
                result = _execute_shard_body(shard)
        result.trace = tracer.snapshot()
        result.worker_seconds = time.perf_counter() - t0
        result.store.mark_transport(shard.transport)
        return result
    with span("shard.execute", env=shard.env_id, scale=shard.scale,
              world=shard.world):
        result = _execute_shard_body(shard)
    result.store.mark_transport(shard.transport)
    return result


def _execute_shard_body(shard: StudyShard) -> ShardResult:
    env = ENVIRONMENTS[shard.env_id]
    scn = active(shard.scenario)
    cache = RunCache(shard.cache_dir) if shard.cache_dir else None
    engine = ExecutionEngine(seed=shard.seed, cache=cache, scenario=scn)
    if cache is not None:
        cell_key = _shard_cache_key(shard, engine)
        cached = cache.get_json(cell_key)
        if cached is not None:
            try:
                return _decode_shard(shard, cached)
            except (KeyError, TypeError, ValueError) as exc:
                # Corrupt or stale cell entry: warn once and re-execute.
                cache.note_invalid(cell_key, f"study-cell entry malformed: {exc}")
        # The cell-level lookup must not leak into the run-level stats
        # (the invalid counter keeps accumulating — it is the trace).
        cache.hits = 0
        cache.misses = 0
    # One run-cache envelope per cell: every run-level probe and store
    # below goes through a single batched read/write instead of a file
    # per run (engine.cache_scope is a no-op without a cache).
    with engine.cache_scope(env, shard.scale):
        return _execute_shard_cell(shard, env, scn, cache, engine)


def _execute_shard_cell(shard, env, scn, cache, engine) -> ShardResult:
    result = ShardResult(
        index=shard.index, env_id=shard.env_id, scale=shard.scale, world=shard.world
    )

    if not env.deployable:
        # Record skips so the dataset shows the missing environment.
        for app_name in shard.apps:
            result.store.add(engine.run(env, app_name, shard.scale, iteration=0))
        _finish_shard(shard, result, cache, engine)
        return result

    nodes = env.nodes_for(shard.scale)
    cloud = env.cloud
    now = 0.0
    provider = None
    cluster = None

    with span("shard.provision", env=env.env_id, scale=shard.scale):
        if cloud == "p":
            # On-prem: no provisioning; jobs wait in the shared queue.
            queue = OnPremQueueModel(
                cluster_nodes=1544 if not env.is_gpu else 795,
                seed=shard.seed,
            )
            now += queue.sample_wait(nodes)
        else:
            provider = overlay_provider(get_provider(cloud, seed=shard.seed), scn)
            itype = env.instance()
            # Quota requests are retried until granted — the paper's AWS
            # GPU saga: the reservation was denied repeatedly and finally
            # granted as a 48-hour block at month's end.
            try:
                for attempt in range(10):
                    try:
                        grant = provider.request_quota(itype.name, nodes + 1, attempt=attempt)
                        break
                    except QuotaError:
                        if attempt == 9:
                            raise
            except QuotaError:
                if scn is None:
                    raise
                # Under a quota-squeeze scenario a cell can be denied
                # outright; the counterfactual outcome is an abandoned cell
                # (skip records + an effort incident), not a crashed study.
                _abandon_cell_for_quota(shard, result, engine, env, itype.name, scn)
                _finish_shard(shard, result, cache, engine)
                return result
            if (
                scn is not None
                and scn.quota is not None
                and (scn.quota.clouds is None or cloud in scn.quota.clouds)
                and grant.delay_days > 0
            ):
                # A squeezed world charges the wait: daily status checks
                # while the grant sits in the cloud's queue (the paper's AWS
                # GPU request took weeks and landed as a 48-hour block).
                result.incidents.append(
                    Incident(
                        env_ids=(env.env_id,),
                        category="setup",
                        effort_minutes=15.0 * grant.delay_days,
                        description=(
                            f"waited {grant.delay_days:.1f} days for "
                            f"{itype.name} quota (checked in daily)"
                        ),
                        source=f"scenario:{scn.scenario_id}:quota-wait",
                    )
                )
            kind = "k8s" if env.kind is EnvironmentKind.K8S else "vm"
            try:
                cluster = provider.provision_cluster(
                    itype.name, nodes, environment_kind=kind, now=now
                )
            except ProvisioningError:
                # Retry once; the stall already charged the meter.
                cluster = provider.provision_cluster(
                    itype.name, nodes, environment_kind=kind, now=now, attempt=1
                )
            result.clusters_created += 1
            for event in cluster.fault_events:
                result.incidents.append(incident_from_fault(env.env_id, event))
            now += cluster.ready_time
            if env.kind is EnvironmentKind.K8S:
                now += _deploy_kubernetes(env, cluster)

    # §3.3: AKS CPU 256 ran a single iteration because hookup took
    # 8.82 minutes.
    aks_single_iteration = HookupCutoff(env_id="cpu-aks-az", scale=256, threshold_s=300.0)

    for app_name in shard.apps:
        # One block per (env, app, size) group: the engine resolves
        # placement/fabric/pricing once, gathers every iteration's keyed
        # draws up front, and computes the group as array math straight
        # into the shard's columnar store.
        outcome = engine.run_block(
            env,
            app_name,
            shard.scale,
            iterations=shard.iterations,
            store=result.store,
            stop=aks_single_iteration,
        )
        now += outcome.total_seconds

    if scn is not None and scn.spot is not None:
        # Every reclaim cost somebody a resubmission: charge the effort.
        for record in result.records:
            if record.failure_kind == "spot-preemption":
                result.incidents.append(
                    Incident(
                        env_ids=(env.env_id,),
                        category="manual_intervention",
                        effort_minutes=20.0,
                        description=(
                            f"spot node reclaimed mid-run: {record.app} at "
                            f"scale {record.scale}, iteration {record.iteration}"
                        ),
                        source=f"scenario:{scn.scenario_id}:spot",
                    )
                )

    if provider is not None:
        provider.release_cluster(cluster, now=now)
        result.spend_by_cloud[cloud] = provider.spend()
        if (
            scn is not None
            and scn.reporting is not None
            and cloud in dict(scn.reporting.lag_hours)
        ):
            # §4.2: lagged reporting means dollars spent here are not
            # yet on the console at teardown — someone has to reconcile
            # the bill later (and eat any overspend meanwhile).  Only
            # clouds whose lag the scenario actually shifts are charged.
            unreported = provider.spend() - provider.meter.reported(now, cloud)
            if unreported > 0.005:
                result.incidents.append(
                    Incident(
                        env_ids=(env.env_id,),
                        category="manual_intervention",
                        effort_minutes=45.0,
                        description=(
                            f"${unreported:,.2f} of {cloud} spend invisible on "
                            f"the console at cluster teardown (reporting lag "
                            f"{provider.meter.lag_hours_for(cloud):.0f}h); "
                            "reconciled against receipts later"
                        ),
                        source=f"scenario:{scn.scenario_id}:billing-lag",
                    )
                )
    _finish_shard(shard, result, cache, engine)
    return result


def _abandon_cell_for_quota(
    shard: StudyShard,
    result: ShardResult,
    engine: ExecutionEngine,
    env: Environment,
    instance_type: str,
    scn: Scenario,
) -> None:
    """Record a cell whose quota was never granted under a scenario."""
    result.incidents.append(
        Incident(
            env_ids=(env.env_id,),
            category="manual_intervention",
            effort_minutes=240.0,
            description=(
                f"{instance_type} quota denied after 10 requests; "
                f"cell ({env.env_id}, {shard.scale}) abandoned"
            ),
            source=f"scenario:{scn.scenario_id}:quota",
        )
    )
    for app_name in shard.apps:
        result.store.add(
            engine.skipped(env, app_name, shard.scale, reason="quota denied")
        )


def _finish_shard(
    shard: StudyShard,
    result: ShardResult,
    cache: RunCache | None,
    engine: ExecutionEngine,
) -> None:
    if cache is None:
        return
    result.cache_hits = cache.hits
    result.cache_misses = cache.misses
    result.cache_invalid = cache.invalid
    result.cache_invalid_reasons = dict(cache.invalid_reasons)
    cell_key = _shard_cache_key(shard, engine)
    cache.put_json(cell_key, _encode_shard(result))
    if shard.chaos is not None:
        from repro.chaos import corrupt_after_store

        corrupt_after_store(shard, cache, cell_key)

"""Deterministic merge of per-shard results into one campaign.

The merge is the synchronization point of the shard-then-merge design:
shard results may arrive from any number of worker processes, but they
are folded back in *plan order* (the shard's ``index``), so the merged
dataset, incident log, spend, and cluster count are byte-identical to a
serial execution of the same plan — regardless of worker count or
completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.incidents import Incident, merge_incident_logs
from repro.core.results import ResultStore
from repro.parallel.shard import ShardResult


@dataclass
class MergedStudy:
    """The campaign-level fold of every shard."""

    store: ResultStore = field(default_factory=ResultStore)
    incidents: dict[str, list[Incident]] = field(default_factory=dict)
    spend_by_cloud: dict[str, float] = field(default_factory=dict)
    clusters_created: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalid: int = 0
    #: why invalid entries were invalid: reason label → count, summed
    #: across shards (each shard caps its own histogram)
    cache_invalid_reasons: dict[str, int] = field(default_factory=dict)


def merge_shard_results(
    results: Iterable[ShardResult],
    *,
    incidents: dict[str, list[Incident]] | None = None,
) -> MergedStudy:
    """Fold shard results in plan order.

    ``incidents`` seeds the merged incident log — the study runner passes
    the container-build incidents recorded before sharding, so build
    incidents precede fault incidents per environment exactly as in the
    serial campaign.
    """
    merged = MergedStudy(incidents=incidents if incidents is not None else {})
    for shard in sorted(results, key=lambda r: r.index):
        # Columnar concatenation: buffers append to buffers in plan
        # order; no row objects materialize on the merge path.
        merged.store.absorb(shard.store)
        merge_incident_logs(merged.incidents, shard.env_id, shard.incidents)
        for cloud, spend in shard.spend_by_cloud.items():
            merged.spend_by_cloud[cloud] = merged.spend_by_cloud.get(cloud, 0.0) + spend
        merged.clusters_created += shard.clusters_created
        merged.cache_hits += shard.cache_hits
        merged.cache_misses += shard.cache_misses
        merged.cache_invalid += shard.cache_invalid
        for label, count in shard.cache_invalid_reasons.items():
            merged.cache_invalid_reasons[label] = (
                merged.cache_invalid_reasons.get(label, 0) + count
            )
    return merged

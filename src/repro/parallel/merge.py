"""Deterministic merge of per-shard results into one campaign.

The merge is the synchronization point of the shard-then-merge design:
shard results may arrive from any number of worker processes, but they
are folded back in *plan order* (the shard's ``index``), so the merged
dataset, incident log, spend, and cluster count are byte-identical to a
serial execution of the same plan — regardless of worker count or
completion order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.incidents import Incident, merge_incident_logs
from repro.core.results import ResultStore
from repro.parallel.shard import ShardResult


@dataclass
class TransportStats:
    """How shard result stores crossed back to the merging process."""

    #: shared-memory blocks attached (one per shm-transported shard)
    blocks: int = 0
    #: column-payload bytes that crossed zero-copy through those blocks
    bytes: int = 0
    #: column bytes *copied* at attach time — 0 by construction for shm
    #: (the views alias the block); the acceptance gate asserts it
    copied_bytes: int = 0
    #: ``"inline"`` (never left this process), ``"shm"``, ``"pickle"``,
    #: or ``"mixed"`` when shards disagree (e.g. shm with fallbacks)
    mode: str = "inline"

    def note(self, result: ShardResult) -> None:
        """Fold one shard result's transport evidence."""
        stats = result.store.transport_stats
        if stats is not None:
            self.blocks += stats.get("blocks", 0)
            self.bytes += stats.get("bytes", 0)
            self.copied_bytes += stats.get("copied_bytes", 0)
            mode = "shm"
        elif result.worker_pid not in (-1, os.getpid()):
            mode = "pickle"
        else:
            mode = "inline"
        if self.mode == "inline":
            self.mode = mode
        elif mode != "inline" and mode != self.mode:
            self.mode = "mixed"

    def summary(self) -> str:
        """One human line, e.g. ``shm, 12 blocks, 1.4 MB shipped``."""
        if self.blocks == 0:
            return self.mode
        per_shard = self.bytes / self.blocks
        return (
            f"{self.mode}, {self.blocks} blocks, "
            f"{_fmt_bytes(self.bytes)} shipped "
            f"({_fmt_bytes(per_shard)}/shard, "
            f"{_fmt_bytes(self.copied_bytes)} copied at merge)"
        )


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "kB", "MB"):
        if n < 1000 or unit == "MB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1000
    return f"{n:.1f} MB"


@dataclass
class MergedStudy:
    """The campaign-level fold of every shard."""

    store: ResultStore = field(default_factory=ResultStore)
    incidents: dict[str, list[Incident]] = field(default_factory=dict)
    spend_by_cloud: dict[str, float] = field(default_factory=dict)
    clusters_created: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalid: int = 0
    #: why invalid entries were invalid: reason label → count, summed
    #: across shards (each shard caps its own histogram)
    cache_invalid_reasons: dict[str, int] = field(default_factory=dict)
    #: how the shard stores reached this process (zero-copy accounting)
    transport: TransportStats = field(default_factory=TransportStats)


def merge_shard_results(
    results: Iterable[ShardResult],
    *,
    incidents: dict[str, list[Incident]] | None = None,
) -> MergedStudy:
    """Fold shard results in plan order.

    ``incidents`` seeds the merged incident log — the study runner passes
    the container-build incidents recorded before sharding, so build
    incidents precede fault incidents per environment exactly as in the
    serial campaign.
    """
    merged = MergedStudy(incidents=incidents if incidents is not None else {})
    for shard in sorted(results, key=lambda r: r.index):
        # Columnar concatenation: buffers append to buffers in plan
        # order; no row objects materialize on the merge path.
        merged.store.absorb(shard.store)
        merge_incident_logs(merged.incidents, shard.env_id, shard.incidents)
        for cloud, spend in shard.spend_by_cloud.items():
            merged.spend_by_cloud[cloud] = merged.spend_by_cloud.get(cloud, 0.0) + spend
        merged.clusters_created += shard.clusters_created
        merged.cache_hits += shard.cache_hits
        merged.cache_misses += shard.cache_misses
        merged.cache_invalid += shard.cache_invalid
        for label, count in shard.cache_invalid_reasons.items():
            merged.cache_invalid_reasons[label] = (
                merged.cache_invalid_reasons.get(label, 0) + count
            )
        merged.transport.note(shard)
    return merged

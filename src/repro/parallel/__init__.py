"""Sharded, parallel study execution (shard → pool → merge).

The campaign is embarrassingly parallel at the paper's own granularity —
one cluster per (environment, size) cell (§2.9).  This package plans the
cells (:mod:`~repro.parallel.shard`), executes them across a process
pool (:mod:`~repro.parallel.pool`), and folds the results back together
deterministically (:mod:`~repro.parallel.merge`).  Seeds are derived
per-cell from keyed streams, never from call order, so any worker count
yields a byte-identical :class:`~repro.core.results.ResultStore`.

Results cross the pool zero-copy when the platform allows: workers pack
their column arrays into shared-memory blocks and ship only a small
descriptor (:mod:`~repro.parallel.transport`), falling back to plain
column pickling wherever ``/dev/shm`` isn't available.

Execution is fault-tolerant: per-shard futures retry transient failures
with deterministic backoff under a :class:`~repro.parallel.pool.RetryPolicy`,
broken pools rebuild and requeue, stragglers past their deadline are
re-dispatched, and exhausted retries degrade workers→serial — with
every recovery event accounted in a
:class:`~repro.parallel.pool.FaultStats`.
"""

from repro.parallel.merge import (
    MergedStudy,
    TransportStats,
    merge_incident_logs,
    merge_shard_results,
)
from repro.parallel.pool import (
    FaultStats,
    RetryPolicy,
    execute_shards,
    pmap,
)
from repro.parallel.shard import ShardResult, StudyShard, execute_shard, plan_shards
from repro.parallel.transport import reap_segments, shm_available

__all__ = [
    "FaultStats",
    "MergedStudy",
    "RetryPolicy",
    "ShardResult",
    "StudyShard",
    "TransportStats",
    "execute_shard",
    "execute_shards",
    "merge_incident_logs",
    "merge_shard_results",
    "plan_shards",
    "pmap",
    "reap_segments",
    "shm_available",
]

"""Sharded, parallel study execution (shard → pool → merge).

The campaign is embarrassingly parallel at the paper's own granularity —
one cluster per (environment, size) cell (§2.9).  This package plans the
cells (:mod:`~repro.parallel.shard`), executes them across a process
pool (:mod:`~repro.parallel.pool`), and folds the results back together
deterministically (:mod:`~repro.parallel.merge`).  Seeds are derived
per-cell from keyed streams, never from call order, so any worker count
yields a byte-identical :class:`~repro.core.results.ResultStore`.

Results cross the pool zero-copy when the platform allows: workers pack
their column arrays into shared-memory blocks and ship only a small
descriptor (:mod:`~repro.parallel.transport`), falling back to plain
column pickling wherever ``/dev/shm`` isn't available.
"""

from repro.parallel.merge import (
    MergedStudy,
    TransportStats,
    merge_incident_logs,
    merge_shard_results,
)
from repro.parallel.pool import execute_shards, pmap
from repro.parallel.shard import ShardResult, StudyShard, execute_shard, plan_shards
from repro.parallel.transport import shm_available

__all__ = [
    "MergedStudy",
    "ShardResult",
    "StudyShard",
    "TransportStats",
    "execute_shard",
    "execute_shards",
    "merge_incident_logs",
    "merge_shard_results",
    "plan_shards",
    "pmap",
    "shm_available",
]

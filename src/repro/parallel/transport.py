"""Zero-copy shard transport over POSIX shared memory.

The process pool ships every :class:`~repro.core.results.ResultStore`
back to the parent by pickling it — for a million-record shard that is
tens of megabytes serialized byte-for-byte through a pipe, copied at
least three times (worker serialize, kernel pipe, parent deserialize).
But PR 4–5 made the store columnar: the payload is a handful of flat
NumPy arrays.  This module packs those arrays into **one**
``multiprocessing.shared_memory`` block per shard and sends only a small
picklable *descriptor* (names, dtypes, shapes, byte offsets) across the
pool; the parent attaches the block and wraps the columns as NumPy views
— zero bytes of column data cross the pipe, zero bytes are copied at
merge time.

Descriptor format (the only thing pickled)::

    {"name": "repro-shm-<pid>-<hex>",    # /dev/shm segment name
     "size": <payload bytes>,             # sum of aligned column extents
     "cols": [(key, dtype_str, shape, offset), ...]}

Lifecycle — the part that has to be exactly right:

* The **worker** creates the segment, copies its columns in, then
  *unregisters* it from ``multiprocessing.resource_tracker`` and closes
  its mapping.  Unregistering is deliberate: the tracker would otherwise
  unlink the segment when the worker exits, racing the parent's attach.
* The **parent** attaches, re-*registers* the name (balancing the
  tracker's books so its shutdown audit stays silent) and immediately
  **unlinks** the segment.  On Linux an unlinked-but-mapped segment
  stays readable until the last mapping dies, so ``/dev/shm`` never
  accumulates entries even if the parent later crashes.
* The attached mapping itself is closed by a :mod:`weakref` finalizer on
  the base array every column view hangs off — when the last view dies,
  the segment's memory is returned.

Failure ladder: if segment creation fails (no ``/dev/shm``, seccomp,
exhausted space), :func:`pack_columns` returns ``None`` and the store
falls back to the plain pickle path — the same sandbox-degradation story
:func:`~repro.parallel.pool.pmap` has for process pools.

One failure mode the lifecycle above cannot cover: a worker killed
*after* creating a segment but *before* its descriptor reaches the
parent (mid-``pack_columns``, or packed but undelivered when the pool
breaks).  Nobody will ever attach those.  Segment names therefore embed
the creating pid, and :func:`reap_segments` sweeps ``/dev/shm`` for the
pids of a torn-down pool — safe precisely because delivery unlinks on
arrival, so any dead worker's surviving segment is by construction
undelivered, and its flight will re-pack into a fresh segment on retry.
"""

from __future__ import annotations

import os
import secrets
import weakref
from typing import Any, Iterable

import numpy as np

from repro.telemetry.tracer import count, span

#: every segment this module creates is named with this prefix, so leak
#: checks (tests) and humans inspecting /dev/shm can attribute them.
SHM_PREFIX = "repro-shm-"

#: column starts are rounded up to this many bytes inside the block —
#: cache-line alignment keeps the attached views SIMD-friendly.
_ALIGN = 64

_available: bool | None = None


def shm_available() -> bool:
    """Probe (once) whether POSIX shared memory works in this process.

    Sandboxes may mount no ``/dev/shm`` or deny ``shm_open``; the probe
    creates and immediately unlinks a 16-byte segment to find out.
    """
    global _available
    if _available is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(
                name=f"{SHM_PREFIX}probe-{secrets.token_hex(4)}", create=True, size=16
            )
            seg.close()
            seg.unlink()
            _available = True
        except (ImportError, OSError, PermissionError, ValueError):
            _available = False
    return _available


def _untrack(name: str) -> None:
    """Drop *name* from this process's resource tracker, if registered."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}" if not name.startswith("/") else name, "shared_memory")
    except Exception:
        pass


def _track(name: str) -> None:
    """Register *name* with this process's resource tracker."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(f"/{name}" if not name.startswith("/") else name, "shared_memory")
    except Exception:
        pass


def pack_columns(arrays: dict[str, np.ndarray]) -> dict[str, Any] | None:
    """Copy *arrays* into one fresh shared-memory block.

    Returns the picklable descriptor, or ``None`` when shared memory is
    unavailable (the caller falls back to pickling the arrays).  The
    segment is left unregistered and closed in this process: the
    attaching side owns its lifetime from here on.
    """
    layout: list[tuple[str, str, tuple[int, ...], int]] = []
    total = 0
    for key, arr in arrays.items():
        offset = -(-total // _ALIGN) * _ALIGN
        layout.append((key, arr.dtype.str, tuple(arr.shape), offset))
        total = offset + arr.nbytes

    try:
        from multiprocessing import shared_memory

        # The creating pid in the name is what makes orphans sweepable:
        # reap_segments(dead_pids) can attribute every segment.
        seg = shared_memory.SharedMemory(
            name=f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(8)}",
            create=True,
            size=max(total, 1),
        )
    except (ImportError, OSError, PermissionError, ValueError):
        return None

    try:
        for (key, dtype, shape, offset), arr in zip(layout, arrays.values()):
            dst = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf, offset=offset)
            dst[...] = arr
            del dst
        descriptor = {"name": seg.name, "size": total, "cols": layout}
    except BaseException:
        _untrack(seg.name)
        seg.close()
        try:
            seg.unlink()
        except OSError:
            pass
        raise
    _untrack(seg.name)
    seg.close()
    return descriptor


def reap_segments(pids: Iterable[int]) -> int:
    """Unlink /dev/shm segments created by the given (dead) pids.

    Called by the resilient pool after tearing a broken pool down: a
    killed worker can leave a packed-but-undelivered segment behind (see
    module docstring), and those are the *only* segments a dead pid can
    still own — delivered ones were unlinked on arrival.  Returns how
    many segments were removed.
    """
    reaped = 0
    shm_dir = "/dev/shm"
    prefixes = tuple(f"{SHM_PREFIX}{pid}-" for pid in pids)
    if not prefixes:
        return 0
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return 0
    for entry in entries:
        if not entry.startswith(prefixes):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
            reaped += 1
        except OSError:
            continue
    if reaped:
        count("transport.reaped", reaped)
    return reaped


def _close_segment(seg: Any) -> None:
    # Runs from a weakref finalizer once the last column view is gone.
    try:
        seg.close()
    except BufferError:
        # Weakref callbacks fire *before* the dying base array releases
        # its buffer export, so close() can still see live pointers.
        # Detach instead: close the fd, drop our references, and let the
        # mmap unmap itself once the final view truly lets go — and the
        # neutered object's __del__ stays silent.
        import os

        if getattr(seg, "_fd", -1) >= 0:
            try:
                os.close(seg._fd)
            except OSError:
                pass
            seg._fd = -1
        seg._mmap = None
        seg._buf = None


def attach_columns(descriptor: dict[str, Any]) -> dict[str, np.ndarray]:
    """Attach a packed block and return its columns as zero-copy views.

    Every returned array slices one shared base array over the segment's
    buffer; the mapping is closed automatically when the last view (or
    anything derived from it — ``absorb`` copies, so merged stores drop
    the views) is garbage collected.  The segment is unlinked *here*,
    immediately: from this moment it exists only as anonymous memory
    held by live mappings.
    """
    from multiprocessing import shared_memory

    with span("transport.attach", segment=descriptor["name"], bytes=descriptor["size"]):
        seg = shared_memory.SharedMemory(name=descriptor["name"], create=False)
        _track(seg.name)
        try:
            seg.unlink()
        except OSError:
            pass
        base = np.frombuffer(seg.buf, dtype=np.uint8)
        weakref.finalize(base, _close_segment, seg)
        views: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in descriptor["cols"]:
            dt = np.dtype(dtype)
            n = 1
            for dim in shape:
                n *= dim
            flat = base[offset : offset + n * dt.itemsize].view(dt)
            views[key] = flat.reshape(shape)
    count("transport.blocks")
    count("transport.bytes", descriptor["size"])
    count("transport.copied_bytes", 0)
    return views

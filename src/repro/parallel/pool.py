"""Process-pool execution of study shards.

Shards are pure functions of their inputs, so the pool is deliberately
boring: ship each :class:`~repro.parallel.shard.StudyShard` to a worker
process, collect results *in submission order* (``Executor.map``
preserves it), and let :mod:`repro.parallel.merge` reassemble the
campaign.  Determinism comes from the shards, not the pool — any
worker count, including 1, produces identical results.

If the host cannot spawn worker processes at all (restricted sandboxes,
missing semaphores), :func:`pmap` degrades to the serial path rather
than failing the campaign.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

from repro.telemetry import span

T = TypeVar("T")
R = TypeVar("R")


def _call_tagged(fn: Callable[[T], R], item: T, ordinal: int) -> R:
    """Call ``fn`` and tag shard-shaped results with worker identity.

    Runs in whichever process executes the item (a pool worker on the
    parallel path, this process on the serial ones) and stamps the
    executing pid, the pool's dispatch ordinal, and the measured wall
    seconds onto any result that carries those attributes.  Duck-typed
    because the pool also maps plain values in tests — non-shard
    results pass through untouched.
    """
    t0 = time.perf_counter()
    result = fn(item)
    if hasattr(result, "worker_pid") and hasattr(result, "dispatch_ordinal"):
        result.worker_pid = os.getpid()
        result.dispatch_ordinal = ordinal
        # `is None`, not falsiness: 0.0 is a legitimate measurement a
        # traced execution may already have stamped.
        if result.worker_seconds is None:
            result.worker_seconds = time.perf_counter() - t0
    return result


def pmap(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``workers <= 1`` (or a single item) runs inline in this process;
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with at
    most ``len(items)`` workers is used.  ``fn`` and every item must be
    picklable for the multi-process path.
    """
    if workers <= 1 or len(items) <= 1:
        return [_call_tagged(fn, item, i) for i, item in enumerate(items)]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(
                pool.map(_call_tagged, [fn] * len(items), items, range(len(items)))
            )
    except (OSError, PermissionError):
        # No process support on this host: fall back to serial execution.
        return [_call_tagged(fn, item, i) for i, item in enumerate(items)]


def pmap_chunked(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    chunk_size: int | None = None,
) -> Iterator[list[R]]:
    """Map ``fn`` over ``items`` one chunk at a time, preserving order.

    The streaming form of :func:`pmap` for work lists too large to hold
    results for all at once (an ensemble's worlds × cells): one
    long-lived :class:`~concurrent.futures.ProcessPoolExecutor` serves
    the whole sequence (pool start-up is paid once, not per chunk), but
    at most two chunks are in flight at a time — so peak memory is
    O(chunk), not O(items), while workers never sit idle between
    chunks.  As with :func:`pmap`, ``workers <= 1`` runs inline and a
    host without process support degrades to the serial path.
    """
    if chunk_size is None:
        chunk_size = max(1, workers) * 4
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks = [items[start:start + chunk_size] for start in range(0, len(items), chunk_size)]
    if workers <= 1 or len(items) <= 1:
        ordinal = 0
        for chunk in chunks:
            done = []
            for item in chunk:
                done.append(_call_tagged(fn, item, ordinal))
                ordinal += 1
            yield done
        return

    def _submit(pool: ProcessPoolExecutor, index: int) -> list:
        # Dispatch ordinals number items in submission order across the
        # whole sequence, so a trace can reconstruct the pool schedule.
        base = index * chunk_size
        with span("pool.dispatch", chunk=index, items=len(chunks[index])):
            return [
                pool.submit(_call_tagged, fn, item, base + offset)
                for offset, item in enumerate(chunks[index])
            ]

    pool = None
    try:
        # Everything the sandboxed-host failure can touch (executor
        # construction allocates the semaphores, the first submissions
        # spawn the workers) happens before anything is yielded, so the
        # serial fallback never skips or re-yields a chunk.
        pool = ProcessPoolExecutor(max_workers=min(workers, len(items)))
        in_flight: list[list] = []
        index = 0
        while index < len(chunks) and len(in_flight) < 2:
            in_flight.append(_submit(pool, index))
            index += 1
    except (OSError, PermissionError):
        if pool is not None:
            # Spawn failed partway: cancel what never started and drop
            # the half-broken pool before re-running everything serially.
            pool.shutdown(wait=False, cancel_futures=True)
        ordinal = 0
        for chunk in chunks:
            done = []
            for item in chunk:
                done.append(_call_tagged(fn, item, ordinal))
                ordinal += 1
            yield done
        return
    with pool:
        while in_flight:
            with span("pool.drain", in_flight=len(in_flight)):
                done = [future.result() for future in in_flight.pop(0)]
            if index < len(chunks):
                in_flight.append(_submit(pool, index))
                index += 1
            yield done


def execute_shards(shards: Sequence[T], *, workers: int = 1) -> list:
    """Execute study shards across ``workers`` processes, in plan order."""
    from repro.parallel.shard import execute_shard

    return pmap(execute_shard, shards, workers=workers)

"""Resilient process-pool execution of study shards.

Shards are pure functions of their inputs, so recovery is cheap to make
*exact*: re-executing a shard — after a transient fault, a killed
worker, or a missed deadline — produces the same bytes the first
attempt would have.  The pool exploits that with per-item futures
carrying a :class:`RetryPolicy`:

* **transient vs fatal** — exceptions in :data:`TRANSIENT_EXCEPTIONS`
  (or any other :class:`~repro.errors.TransientShardError`) are retried
  with exponential backoff and *deterministic keyed jitter*; anything
  else is fatal and surfaces immediately as a typed
  :class:`~repro.errors.ShardExecutionError` naming the shard's world,
  cell, and attempt count — raw worker tracebacks never escape.
* **broken pool** — a killed worker breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`; the pool is rebuilt
  and every not-yet-delivered flight is requeued (completed futures
  keep their results).  Dead workers' orphaned /dev/shm segments are
  reaped (:func:`~repro.parallel.transport.reap_segments`).
* **deadlines** — with ``policy.timeout`` set, a straggler past its
  per-shard deadline has its workers killed and the flight
  re-dispatched.
* **degradation ladder** — shm→pickle transport fallback already exists
  upstream; this layer adds workers→serial: exhausted pool retries get
  one final inline attempt in the parent, and a pool that breaks more
  than ``policy.max_rebuilds`` times finishes the remainder serially.

Determinism still comes from the shards, not the pool — any worker
count, any fault pattern that is eventually survived, produces
identical results.  Retry/requeue accounting accumulates into a
:class:`FaultStats` the caller may pass in; ``pool.retry`` /
``pool.requeue`` spans and ``fault.*`` counters record every recovery
event.

If the host cannot spawn worker processes at all (restricted sandboxes,
missing semaphores), :func:`pmap` degrades to the serial path rather
than failing the campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, fields
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import ShardExecutionError, TransientShardError
from repro.telemetry import count, span

T = TypeVar("T")
R = TypeVar("R")

#: exception classes worth re-dispatching: chaos-injected transients,
#: plus the classes a dying worker's pipe machinery can surface
TRANSIENT_EXCEPTIONS = (
    TransientShardError,
    ConnectionError,
    EOFError,
    InterruptedError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the pool fights for each shard before giving up."""

    #: total dispatch attempts per shard *in the pool* (the final
    #: inline-serial rung is on top of these)
    max_attempts: int = 3
    #: first-retry backoff, seconds; doubles per attempt
    backoff_base: float = 0.05
    #: backoff ceiling, seconds
    backoff_cap: float = 2.0
    #: per-shard deadline, seconds (``None`` = no deadline); measured
    #: from when the drain reaches the shard, so it bounds *stragglers*,
    #: not queue wait
    timeout: float | None = None
    #: pool rebuilds tolerated before degrading the remainder to serial
    max_rebuilds: int = 3

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.max_rebuilds < 0:
            raise ValueError("max_rebuilds must be >= 0")

    def backoff_seconds(self, key: object, attempt: int) -> float:
        """Backoff before retry ``attempt + 1`` — exponential, with
        jitter drawn deterministically from ``(key, attempt)`` so two
        runs of the same failing campaign sleep identically."""
        if self.backoff_base <= 0:
            return 0.0
        digest = hashlib.blake2b(
            f"{key}\x1f{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        frac = int.from_bytes(digest, "little") / 2.0**64
        return min(
            self.backoff_cap,
            self.backoff_base * (2.0 ** (attempt - 1)) * (0.5 + frac),
        )


@dataclass
class FaultStats:
    """Every recovery event the execution path survived.

    Accumulates across pools and executors via :meth:`add`; flows onto
    study/ensemble/campaign reports so a run that limped through faults
    says so (the merged *results* are byte-identical either way).
    """

    #: transient failures re-dispatched with backoff
    retries: int = 0
    #: flights resubmitted because their pool died under them
    requeues: int = 0
    #: pool teardown/rebuild cycles
    rebuilds: int = 0
    #: per-shard deadlines that expired
    timeouts: int = 0
    #: drops down the workers→serial ladder (degrade events and final
    #: inline rungs)
    serial_hops: int = 0
    #: faults attributed to the chaos harness (:mod:`repro.chaos`)
    injected: int = 0
    #: shards re-attached from the checkpoint journal on ``--resume``
    resumed: int = 0

    def add(self, other: "FaultStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def activity(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))


def _call_tagged(fn: Callable[[T], R], item: T, ordinal: int) -> R:
    """Call ``fn`` and tag shard-shaped results with worker identity.

    Runs in whichever process executes the item (a pool worker on the
    parallel path, this process on the serial ones) and stamps the
    executing pid, the pool's dispatch ordinal, and the measured wall
    seconds onto any result that carries those attributes.  Duck-typed
    because the pool also maps plain values in tests — non-shard
    results pass through untouched.
    """
    t0 = time.perf_counter()
    result = fn(item)
    if hasattr(result, "worker_pid") and hasattr(result, "dispatch_ordinal"):
        result.worker_pid = os.getpid()
        result.dispatch_ordinal = ordinal
        # `is None`, not falsiness: 0.0 is a legitimate measurement a
        # traced execution may already have stamped.
        if result.worker_seconds is None:
            result.worker_seconds = time.perf_counter() - t0
    return result


def _with_attempt(item: T, attempt: int) -> T:
    """Stamp the 0-based retry attempt onto shard-shaped items.

    Duck-typed like :func:`_call_tagged`: plain mapped values pass
    through.  The chaos harness gates injection on this field, which is
    what makes every retry ladder converge.
    """
    if (
        dataclasses.is_dataclass(item)
        and hasattr(item, "attempt")
        and getattr(item, "attempt") != attempt
    ):
        return dataclasses.replace(item, attempt=attempt)
    return item


def _stamp_attempts(result: R, attempts: int) -> R:
    if hasattr(result, "attempts"):
        result.attempts = attempts
    return result


def _note_injected(exc: BaseException, stats: FaultStats) -> None:
    if getattr(exc, "injected", False):
        stats.injected += 1
        count("fault.injected")


def _run_retrying(
    fn: Callable[[T], R],
    item: T,
    ordinal: int,
    policy: RetryPolicy,
    stats: FaultStats,
    *,
    start_attempt: int = 1,
) -> R:
    """The serial rung: execute inline with the retry budget."""
    attempt = start_attempt
    while True:
        try:
            result = _call_tagged(fn, _with_attempt(item, attempt - 1), ordinal)
            return _stamp_attempts(result, attempt)
        except TRANSIENT_EXCEPTIONS as exc:
            _note_injected(exc, stats)
            if attempt >= policy.max_attempts:
                raise ShardExecutionError.wrap(item, ordinal, attempt, exc) from exc
            stats.retries += 1
            count("fault.retries")
            delay = policy.backoff_seconds(ordinal, attempt)
            with span("pool.retry", ordinal=ordinal, attempt=attempt, where="serial"):
                if delay:
                    time.sleep(delay)
            attempt += 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            raise ShardExecutionError.wrap(item, ordinal, attempt, exc) from exc


@dataclass(eq=False)
class _Flight:
    """One item's journey through the pool: identity-based, mutable."""

    item: object
    ordinal: int
    #: dispatch count, 1-based; the item is stamped with ``attempt - 1``
    attempt: int = 1
    future: object | None = None


class _ResilientMap:
    """The chunk-streaming pool engine behind :func:`pmap_chunked`.

    One long-lived executor serves the whole sequence, at most two
    chunks in flight (peak memory O(chunk), workers never idle between
    chunks), results delivered strictly in submission order.  The
    ``live`` registry tracks every undelivered flight *across* chunks so
    a pool rebuild can requeue all of them — not just the chunk being
    drained — instead of letting the other in-flight chunk's stale
    futures break the fresh pool's healthy work.
    """

    def __init__(
        self,
        fn: Callable,
        chunks: list,
        chunk_size: int,
        workers: int,
        total: int,
        policy: RetryPolicy,
        stats: FaultStats,
        on_result: Callable | None = None,
    ):
        self.fn = fn
        self.chunks = chunks
        self.chunk_size = chunk_size
        self.workers = workers
        self.total = total
        self.policy = policy
        self.stats = stats
        self.on_result = on_result
        self.pool: ProcessPoolExecutor | None = None
        self.live: list[_Flight] = []
        self.rebuilds = 0
        self.degraded = False

    # -- pool lifecycle -------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        from repro.chaos import mark_worker_process

        return ProcessPoolExecutor(
            max_workers=min(self.workers, self.total),
            initializer=mark_worker_process,
        )

    def _teardown_pool(self) -> None:
        """Kill the current pool's workers and reap their shm orphans."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pids = [p.pid for p in procs if p.pid is not None]
        for p in procs:
            try:
                p.terminate()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=True, cancel_futures=True)
        if pids:
            from repro.parallel.transport import reap_segments

            reap_segments(pids)

    def _degrade(self) -> None:
        """Drop the remainder of the map down the workers→serial rung."""
        if self.degraded:
            return
        self.degraded = True
        self.stats.serial_hops += 1
        count("fault.serial_hops")
        self._teardown_pool()
        for flight in self.live:
            if not self._delivered_future(flight):
                flight.future = None

    @staticmethod
    def _delivered_future(flight: _Flight) -> bool:
        """True when the flight's future holds a retrievable result."""
        fut = flight.future
        return (
            fut is not None
            and fut.done()
            and not fut.cancelled()
            and fut.exception() is None
        )

    def _requeue(self, reason: str) -> None:
        """Rebuild the pool and resubmit every undelivered flight."""
        with span("pool.requeue", reason=reason, live=len(self.live)):
            self._teardown_pool()
            self.rebuilds += 1
            self.stats.rebuilds += 1
            count("fault.rebuilds")
            if self.rebuilds > self.policy.max_rebuilds:
                self._degrade()
                return
            try:
                self.pool = self._new_pool()
            except (OSError, PermissionError):
                self._degrade()
                return
            requeued = 0
            for flight in self.live:
                if self._delivered_future(flight):
                    continue
                flight.attempt += 1
                flight.future = self._submit_flight(flight)
                requeued += 1
            self.stats.requeues += requeued
            count("fault.requeues", requeued)

    # -- dispatch -------------------------------------------------------

    def _submit_flight(self, flight: _Flight):
        if self.degraded or self.pool is None:
            return None
        item = _with_attempt(flight.item, flight.attempt - 1)
        try:
            return self.pool.submit(_call_tagged, self.fn, item, flight.ordinal)
        except (OSError, PermissionError):
            self._degrade()
            return None
        except (BrokenExecutor, RuntimeError):
            # Pool already broken (or shut down under us) at submit
            # time; the drain requeues flights whose future is None.
            return None

    def _submit_chunk(self, index: int) -> list[_Flight]:
        chunk = self.chunks[index]
        base = index * self.chunk_size
        flights = []
        with span("pool.dispatch", chunk=index, items=len(chunk)):
            for offset, item in enumerate(chunk):
                flight = _Flight(item=item, ordinal=base + offset)
                self.live.append(flight)
                flight.future = self._submit_flight(flight)
                flights.append(flight)
        return flights

    # -- drain ----------------------------------------------------------

    def _serial_flight(self, flight: _Flight):
        result = _run_retrying(
            self.fn,
            flight.item,
            flight.ordinal,
            self.policy,
            self.stats,
            start_attempt=max(flight.attempt, 1),
        )
        self.live.remove(flight)
        return result

    def _deliver(self, flight: _Flight, result):
        self.live.remove(flight)
        return _stamp_attempts(result, flight.attempt)

    def _final_serial_rung(self, flight: _Flight):
        """Pool retries exhausted: one last inline attempt, then wrap."""
        self.stats.serial_hops += 1
        count("fault.serial_hops")
        attempt = flight.attempt + 1
        try:
            result = _call_tagged(
                self.fn, _with_attempt(flight.item, attempt - 1), flight.ordinal
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            raise ShardExecutionError.wrap(
                flight.item, flight.ordinal, attempt, exc
            ) from exc
        flight.attempt = attempt
        return self._deliver(flight, result)

    def _drain_flight(self, flight: _Flight):
        while True:
            if flight.future is None:
                if not self.degraded:
                    # Lost at submit time (broken pool): rebuild once,
                    # which resubmits this flight along with the rest.
                    self._requeue("lost-future")
                    if flight.future is not None:
                        continue
                return self._serial_flight(flight)
            try:
                result = flight.future.result(timeout=self.policy.timeout)
            except FutureTimeoutError:
                self.stats.timeouts += 1
                count("fault.timeouts")
                self._requeue("deadline")
                continue
            except (BrokenExecutor, CancelledError):
                self._requeue("broken-pool")
                continue
            except TRANSIENT_EXCEPTIONS as exc:
                _note_injected(exc, self.stats)
                if flight.attempt >= self.policy.max_attempts:
                    return self._final_serial_rung(flight)
                self.stats.retries += 1
                count("fault.retries")
                delay = self.policy.backoff_seconds(flight.ordinal, flight.attempt)
                with span("pool.retry", ordinal=flight.ordinal, attempt=flight.attempt):
                    if delay:
                        time.sleep(delay)
                flight.attempt += 1
                flight.future = self._submit_flight(flight)
                continue
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                raise ShardExecutionError.wrap(
                    flight.item, flight.ordinal, flight.attempt, exc
                ) from exc
            return self._deliver(flight, result)

    def run(self) -> Iterator[list]:
        try:
            # Everything the sandboxed-host failure can touch (executor
            # construction allocates the semaphores, the first
            # submissions spawn the workers) happens before anything is
            # yielded, so the serial fallback never skips or re-yields a
            # chunk.  Submit-time failures after start-up degrade via
            # flight.future = None instead of raising.
            self.pool = self._new_pool()
            in_flight: list[list[_Flight]] = []
            index = 0
            while index < len(self.chunks) and len(in_flight) < 2:
                in_flight.append(self._submit_chunk(index))
                index += 1
        except (OSError, PermissionError):
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
                self.pool = None
            self.live.clear()
            ordinal = 0
            for chunk in self.chunks:
                done = []
                for item in chunk:
                    result = _run_retrying(
                        self.fn, item, ordinal, self.policy, self.stats
                    )
                    if self.on_result is not None:
                        self.on_result(result)
                    done.append(result)
                    ordinal += 1
                yield done
            return
        try:
            while in_flight:
                with span("pool.drain", in_flight=len(in_flight)):
                    done = []
                    for flight in in_flight.pop(0):
                        result = self._drain_flight(flight)
                        # Per-delivery hook, strictly in submission
                        # order — this is what lets a checkpoint journal
                        # bank each cell the moment it crosses back,
                        # not a chunk later.
                        if self.on_result is not None:
                            self.on_result(result)
                        done.append(result)
                if index < len(self.chunks):
                    in_flight.append(self._submit_chunk(index))
                    index += 1
                yield done
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=True, cancel_futures=True)
                self.pool = None


def pmap(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    stats: FaultStats | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``workers <= 1`` (or a single item) runs inline in this process;
    otherwise a resilient :class:`~concurrent.futures.ProcessPoolExecutor`
    with at most ``len(items)`` workers is used.  ``fn`` and every item
    must be picklable for the multi-process path.  Failures that survive
    the ``policy`` retry ladder raise
    :class:`~repro.errors.ShardExecutionError`.
    """
    out: list[R] = []
    for chunk in pmap_chunked(
        fn, items, workers=workers, policy=policy, stats=stats
    ):
        out.extend(chunk)
    return out


def pmap_chunked(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    chunk_size: int | None = None,
    policy: RetryPolicy | None = None,
    stats: FaultStats | None = None,
    on_result: Callable[[R], None] | None = None,
) -> Iterator[list[R]]:
    """Map ``fn`` over ``items`` one chunk at a time, preserving order.

    The streaming form of :func:`pmap` for work lists too large to hold
    results for all at once (an ensemble's worlds × cells): one
    long-lived pool serves the whole sequence (start-up is paid once,
    not per chunk), but at most two chunks are in flight at a time — so
    peak memory is O(chunk), not O(items), while workers never sit idle
    between chunks.  ``policy`` governs retries, deadlines, and the
    degradation ladder; recovery events accumulate into ``stats`` when
    given.  ``on_result`` fires once per item, in delivery (= input)
    order, the moment its result is retrieved — *before* the enclosing
    chunk is yielded — which is what checkpoint journaling hangs off:
    a crash later in the same chunk must not lose cells that already
    crossed back.  As with :func:`pmap`, ``workers <= 1`` runs inline
    and a host without process support degrades to the serial path.
    """
    if chunk_size is None:
        chunk_size = max(1, workers) * 4
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if policy is None:
        policy = RetryPolicy()
    if stats is None:
        stats = FaultStats()
    chunks = [items[start:start + chunk_size] for start in range(0, len(items), chunk_size)]
    if workers <= 1 or len(items) <= 1:
        ordinal = 0
        for chunk in chunks:
            done = []
            for item in chunk:
                result = _run_retrying(fn, item, ordinal, policy, stats)
                if on_result is not None:
                    on_result(result)
                done.append(result)
                ordinal += 1
            yield done
        return
    engine = _ResilientMap(
        fn, chunks, chunk_size, workers, len(items), policy, stats, on_result
    )
    yield from engine.run()


def execute_shards(
    shards: Sequence[T],
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    stats: FaultStats | None = None,
) -> list:
    """Execute study shards across ``workers`` processes, in plan order."""
    from repro.parallel.shard import execute_shard

    return pmap(execute_shard, shards, workers=workers, policy=policy, stats=stats)

"""Process-pool execution of study shards.

Shards are pure functions of their inputs, so the pool is deliberately
boring: ship each :class:`~repro.parallel.shard.StudyShard` to a worker
process, collect results *in submission order* (``Executor.map``
preserves it), and let :mod:`repro.parallel.merge` reassemble the
campaign.  Determinism comes from the shards, not the pool — any
worker count, including 1, produces identical results.

If the host cannot spawn worker processes at all (restricted sandboxes,
missing semaphores), :func:`pmap` degrades to the serial path rather
than failing the campaign.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def pmap(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``workers <= 1`` (or a single item) runs inline in this process;
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with at
    most ``len(items)`` workers is used.  ``fn`` and every item must be
    picklable for the multi-process path.
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        # No process support on this host: fall back to serial execution.
        return [fn(item) for item in items]


def execute_shards(shards: Sequence[T], *, workers: int = 1) -> list:
    """Execute study shards across ``workers`` processes, in plan order."""
    from repro.parallel.shard import execute_shard

    return pmap(execute_shard, shards, workers=workers)

"""Process-pool execution of study shards.

Shards are pure functions of their inputs, so the pool is deliberately
boring: ship each :class:`~repro.parallel.shard.StudyShard` to a worker
process, collect results *in submission order* (``Executor.map``
preserves it), and let :mod:`repro.parallel.merge` reassemble the
campaign.  Determinism comes from the shards, not the pool — any
worker count, including 1, produces identical results.

If the host cannot spawn worker processes at all (restricted sandboxes,
missing semaphores), :func:`pmap` degrades to the serial path rather
than failing the campaign.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def pmap(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``workers <= 1`` (or a single item) runs inline in this process;
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with at
    most ``len(items)`` workers is used.  ``fn`` and every item must be
    picklable for the multi-process path.
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError):
        # No process support on this host: fall back to serial execution.
        return [fn(item) for item in items]


def pmap_chunked(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    chunk_size: int | None = None,
) -> Iterator[list[R]]:
    """Map ``fn`` over ``items`` one chunk at a time, preserving order.

    The streaming form of :func:`pmap` for work lists too large to hold
    results for all at once (an ensemble's worlds × cells): one
    long-lived :class:`~concurrent.futures.ProcessPoolExecutor` serves
    the whole sequence (pool start-up is paid once, not per chunk), but
    at most two chunks are in flight at a time — so peak memory is
    O(chunk), not O(items), while workers never sit idle between
    chunks.  As with :func:`pmap`, ``workers <= 1`` runs inline and a
    host without process support degrades to the serial path.
    """
    if chunk_size is None:
        chunk_size = max(1, workers) * 4
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks = [items[start:start + chunk_size] for start in range(0, len(items), chunk_size)]
    if workers <= 1 or len(items) <= 1:
        for chunk in chunks:
            yield [fn(item) for item in chunk]
        return
    pool = None
    try:
        # Everything the sandboxed-host failure can touch (executor
        # construction allocates the semaphores, the first submissions
        # spawn the workers) happens before anything is yielded, so the
        # serial fallback never skips or re-yields a chunk.
        pool = ProcessPoolExecutor(max_workers=min(workers, len(items)))
        in_flight: list[list] = []
        index = 0
        while index < len(chunks) and len(in_flight) < 2:
            in_flight.append([pool.submit(fn, item) for item in chunks[index]])
            index += 1
    except (OSError, PermissionError):
        if pool is not None:
            # Spawn failed partway: cancel what never started and drop
            # the half-broken pool before re-running everything serially.
            pool.shutdown(wait=False, cancel_futures=True)
        for chunk in chunks:
            yield [fn(item) for item in chunk]
        return
    with pool:
        while in_flight:
            done = [future.result() for future in in_flight.pop(0)]
            if index < len(chunks):
                in_flight.append([pool.submit(fn, item) for item in chunks[index]])
                index += 1
            yield done


def execute_shards(shards: Sequence[T], *, workers: int = 1) -> list:
    """Execute study shards across ``workers`` processes, in plan order."""
    from repro.parallel.shard import execute_shard

    return pmap(execute_shard, shards, workers=workers)

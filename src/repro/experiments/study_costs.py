"""§3.4 Costs: per-cloud study spend.

The paper spent $31,056 (Azure), $31,565 (AWS), and $26,482 (Google) of
a $49,000/cloud budget — under budget partly because ParallelCluster
GPU never ran and Google GPU was covered by credits.  This harness runs
a reduced study campaign (every environment, a representative app
subset, all sizes) and scales the observed spend to the full-campaign
equivalent; claims are about the *relationships*: all clouds under
budget, Google the cheapest, AWS and Azure within ~20% of each other.
"""

from __future__ import annotations

from repro.core.study import StudyConfig, StudyRunner
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

PAPER_SPEND = {"az": 31_056.0, "aws": 31_565.0, "g": 26_482.0}
BUDGET = 49_000.0

#: representative apps: one weak scaler, one strong scaler, one benchmark
CAMPAIGN_APPS = ("amg2023", "lammps", "osu")
#: the paper ran 11 apps x 5 iterations; our reduced campaign covers a
#: third of the apps, so scale spend accordingly for budget comparison
SPEND_SCALE = 11 / len(CAMPAIGN_APPS)


def run(seed: int = 0, iterations: int = 2) -> ExperimentOutput:
    config = StudyConfig(
        env_ids=tuple(
            e for e in (
                "cpu-parallelcluster-aws", "cpu-eks-aws", "cpu-computeengine-g",
                "cpu-gke-g", "cpu-cyclecloud-az", "cpu-aks-az",
                "gpu-parallelcluster-aws", "gpu-eks-aws", "gpu-computeengine-g",
                "gpu-gke-g", "gpu-cyclecloud-az", "gpu-aks-az",
            )
        ),
        apps=CAMPAIGN_APPS,
        iterations=iterations,
        seed=seed,
    )
    report = StudyRunner(config).run()
    scaled = {c: v * SPEND_SCALE for c, v in report.spend_by_cloud.items()}

    table = Table(
        title="Study spend by cloud (scaled to full campaign)",
        columns=("Cloud", "Measured spend", "Paper spend", "Budget"),
        caption=f"Reduced campaign ({len(CAMPAIGN_APPS)} apps x {iterations} "
        f"iterations) scaled by {SPEND_SCALE:.1f}x for comparability.",
    )
    for cloud in ("aws", "az", "g"):
        table.add(cloud, f"${scaled.get(cloud, 0):,.0f}",
                  f"${PAPER_SPEND[cloud]:,.0f}", f"${BUDGET:,.0f}")

    expectations = [
        Expectation("costs", "every cloud stays under the $49k budget",
                    lambda: all(v < BUDGET for v in scaled.values()), "§3.4"),
        Expectation("costs", "Google is the cheapest cloud",
                    lambda: scaled["g"] == min(scaled.values()), "§3.4"),
        Expectation("costs", "spend is study-scale (above $2.5k per cloud, scaled)",
                    lambda: all(v > 2_500.0 for v in scaled.values()), "§3.4"),
        Expectation("costs", "datasets were produced for every cloud environment",
                    lambda: len(report.store) > 0 and report.clusters_created >= 40,
                    "§2.9"),
    ]
    return ExperimentOutput(
        experiment_id="costs",
        title="Study costs",
        table=table,
        store=report.store,
        expectations=expectations,
        notes=f"{report.datasets} datasets, {report.clusters_created} clusters, "
        f"{report.containers_built} containers built "
        f"({report.containers_failed} failed)",
    )

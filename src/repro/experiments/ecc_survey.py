"""§3.3 Mixbench: the ECC survey.

"All cloud GPU environments except Azure turned ECC on ... Azure had a
mixture of settings across environments, ranging from 12.5-25% for Off
and 50-100% for On."  The survey samples every node of each GPU
cluster and tallies ECC state; the attained-performance delta between
ECC states (up to 15% of bandwidth) is checked via the Mixbench
roofline.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mixbench import Mixbench
from repro.envs.registry import environment, gpu_environments
from repro.experiments.base import ExperimentOutput
from repro.machine.gpu import ECC_BANDWIDTH_PENALTY, V100, sample_ecc_settings
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

CLUSTER_NODES = 32


def run(seed: int = 0, iterations: int = 8) -> ExperimentOutput:
    table = Table(
        title="GPU ECC settings by environment (32-node clusters)",
        columns=("Environment", "Cloud", "ECC on (%)", "ECC off (%)"),
        caption="Sampled per provisioned node; Azure fleets are mixed.",
    )
    fractions: dict[str, float] = {}
    for env in gpu_environments():
        # Sample several cluster provisionings (the paper saw 12.5-25%
        # off depending on the Azure environment).
        offs = []
        for it in range(iterations):
            states = sample_ecc_settings(env.cloud, CLUSTER_NODES, seed=seed + it)
            offs.append(1.0 - float(states.mean()))
        frac_off = float(np.mean(offs))
        fractions[env.env_id] = frac_off
        table.add(env.env_id, env.cloud, f"{100 * (1 - frac_off):.1f}",
                  f"{100 * frac_off:.1f}")

    def azure_mixed_others_on() -> bool:
        for env_id, frac_off in fractions.items():
            if "az" in env_id.split("-"):
                if not 0.05 <= frac_off <= 0.30:
                    return False
            else:
                if frac_off != 0.0:
                    return False
        return True

    def ecc_costs_bandwidth() -> bool:
        on = V100.with_ecc(True).effective_mem_bw()
        off = V100.with_ecc(False).effective_mem_bw()
        return abs((off - on) / off - ECC_BANDWIDTH_PENALTY) < 1e-9

    def roofline_shows_delta() -> bool:
        from repro.sim.execution import ExecutionEngine

        engine = ExecutionEngine(seed=seed)
        env = environment("gpu-gke-g")
        ctx = engine.context(env, 32)
        mix = Mixbench()
        roof = mix.roofline(ctx)
        # Memory-bound points scale with intensity; compute-bound saturate.
        return roof[0.25] < roof[4] <= roof[128]

    expectations = [
        Expectation("ecc", "Azure fleets are mixed (5-30% off); all others fully on",
                    azure_mixed_others_on, "§3.3 Mixbench"),
        Expectation("ecc", "ECC costs 15% of memory bandwidth",
                    ecc_costs_bandwidth, "§3.3 Mixbench"),
        Expectation("ecc", "the Mixbench roofline transitions memory- to compute-bound",
                    roofline_shows_delta, "§2.8 Mixbench"),
    ]
    return ExperimentOutput(
        experiment_id="ecc",
        title="Mixbench ECC survey",
        table=table,
        expectations=expectations,
    )

"""Figure 3: Laghos major-kernels total rate on CPU (strong scaled).

Paper claims reproduced:

* on-prem FOM roughly an order of magnitude above cloud, with a 32→64
  speedup near 1.6 and lower variability;
* cloud environments complete only 32 and 64 nodes (timeouts beyond);
* AWS ParallelCluster never completed;
* cluster A segfaults at 128 and 256 nodes.
"""

from __future__ import annotations

from repro.core.analysis import mean_fom, speedup
from repro.envs.registry import cpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation
from repro.sim.run_result import RunState


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    store = run_matrix(cpu_environments(), ["laghos"], iterations=iterations, seed=seed)
    series = series_from_store(
        store,
        "laghos",
        title="Laghos major kernels total rate (CPU)",
        y_label="megadofs x steps / s",
    )
    completing_clouds = [
        e.env_id
        for e in cpu_environments()
        if e.cloud != "p" and e.env_id != "cpu-parallelcluster-aws"
    ]

    def onprem_order_of_magnitude() -> bool:
        for size in (32, 64):
            a = mean_fom(store, "cpu-onprem-a", "laghos", size)
            assert a is not None
            for env_id in completing_clouds:
                c = mean_fom(store, env_id, "laghos", size)
                if c is None or a.mean < 8.0 * c.mean:
                    return False
        return True

    def onprem_speedup() -> bool:
        s = speedup(store, "cpu-onprem-a", "laghos", 32, 64)
        return s is not None and 1.15 <= s <= 1.9

    def clouds_fail_beyond_64() -> bool:
        for env_id in completing_clouds:
            for size in (128, 256):
                if store.completed(env_id=env_id, app="laghos", scale=size):
                    return False
                if not store.query(
                    env_id=env_id, app="laghos", scale=size, state=RunState.TIMEOUT
                ):
                    return False
        return True

    def parallelcluster_never_completes() -> bool:
        return not store.completed(env_id="cpu-parallelcluster-aws", app="laghos")

    def onprem_segfaults() -> bool:
        for size in (128, 256):
            runs = store.query(env_id="cpu-onprem-a", app="laghos", scale=size)
            if not runs or any(r.failure_kind != "segfault" for r in runs):
                return False
        return True

    expectations = [
        Expectation("fig3", "on-prem FOM ~an order of magnitude above every "
                    "completing cloud at 32 and 64 nodes",
                    onprem_order_of_magnitude, "§3.3 Laghos"),
        Expectation("fig3", "on-prem 32->64 speedup near 1.6",
                    onprem_speedup, "§3.3 Laghos"),
        Expectation("fig3", "cloud runs beyond 64 nodes time out (15-20 min window)",
                    clouds_fail_beyond_64, "§3.3 Laghos"),
        Expectation("fig3", "AWS ParallelCluster never completes Laghos",
                    parallelcluster_never_completes, "§3.3 Laghos"),
        Expectation("fig3", "cluster A segfaults at 128 and 256 nodes",
                    onprem_segfaults, "§3.3 Laghos"),
    ]
    return ExperimentOutput(
        experiment_id="fig3",
        title="Laghos FOM (CPU)",
        series=[series],
        store=store,
        expectations=expectations,
    )

"""Table 1: Environment Characteristics."""

from __future__ import annotations

from repro.envs.registry import ENVIRONMENTS
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

#: Table 1 row order in the paper (CPU block then GPU block).
ROW_ORDER = (
    "cpu-onprem-a",
    "cpu-parallelcluster-aws",
    "cpu-eks-aws",
    "cpu-computeengine-g",
    "cpu-gke-g",
    "cpu-cyclecloud-az",
    "cpu-aks-az",
    "gpu-onprem-b",
    "gpu-parallelcluster-aws",
    "gpu-eks-aws",
    "gpu-computeengine-g",
    "gpu-gke-g",
    "gpu-cyclecloud-az",
    "gpu-aks-az",
)

_CONTAINERS = {None: "No", "singularity": "Yes (s)", "containerd": "Yes (cd)"}


def run(seed: int = 0, iterations: int = 0) -> ExperimentOutput:
    """Regenerate Table 1 from the environment registry."""
    table = Table(
        title="Table 1: Environment Characteristics",
        columns=("Environment", "Scheduler", "Containers"),
        caption="(p) on-premises, (s) Singularity, (cd) containerd",
    )
    for env_id in ROW_ORDER:
        env = ENVIRONMENTS[env_id]
        label = f"{env.accelerator.upper()} {env.display_name} ({env.cloud})"
        table.add(label, env.scheduler.capitalize(), _CONTAINERS[env.container_runtime])

    expectations = [
        Expectation(
            "table1",
            "14 environments: 7 CPU + 7 GPU",
            lambda: len(table.rows) == 14,
            "Table 1",
        ),
        Expectation(
            "table1",
            "all Kubernetes environments schedule through Flux",
            lambda: all(
                ENVIRONMENTS[e].scheduler == "flux"
                for e in ROW_ORDER
                if ENVIRONMENTS[e].kind.value == "k8s"
            ),
            "§2.3",
        ),
        Expectation(
            "table1",
            "on-prem uses Slurm (A) and LSF (B), no containers",
            lambda: ENVIRONMENTS["cpu-onprem-a"].scheduler == "slurm"
            and ENVIRONMENTS["gpu-onprem-b"].scheduler == "lsf"
            and ENVIRONMENTS["cpu-onprem-a"].container_runtime is None,
            "Table 1",
        ),
    ]
    return ExperimentOutput(
        experiment_id="table1",
        title="Environment characteristics",
        table=table,
        expectations=expectations,
    )

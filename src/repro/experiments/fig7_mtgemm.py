"""Figure 7: MT-GEMM GFLOP/s (GPU).

Paper claims reproduced:

* GPU tests strong-scale across GPU sizes;
* Compute Engine, AKS, and GKE exhibit similar performance;
* ParallelCluster was not run (environment undeployable);
* CPU results are omitted from the figure — communication-bound from
  the smallest size with GFLOPs decreasing at each larger node count
  (checked on the CPU store, not plotted, exactly as in the paper).
"""

from __future__ import annotations

from repro.core.analysis import mean_fom
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation
from repro.sim.run_result import RunState


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    gpu_store = run_matrix(
        gpu_environments(deployable_only=False), ["mt-gemm"],
        iterations=iterations, seed=seed,
    )
    cpu_store = run_matrix(cpu_environments(), ["mt-gemm"], iterations=iterations, seed=seed)
    series = series_from_store(
        gpu_store, "mt-gemm", title="MT-GEMM GFLOP/s (GPU)", y_label="GFLOP/s"
    )

    def strong_scaling() -> bool:
        for env in gpu_environments():
            lo = mean_fom(gpu_store, env.env_id, "mt-gemm", 32)
            hi = mean_fom(gpu_store, env.env_id, "mt-gemm", 256)
            if lo is None or hi is None:
                return False
            if hi.mean < 4.0 * lo.mean:  # >= 50% efficiency at 8x GPUs
                return False
        return True

    def trio_similar() -> bool:
        for s in (32, 64, 128, 256):
            vals = []
            for env_id in ("gpu-computeengine-g", "gpu-aks-az", "gpu-gke-g"):
                stat = mean_fom(gpu_store, env_id, "mt-gemm", s)
                if stat is None:
                    return False
                vals.append(stat.mean)
            if max(vals) > 1.45 * min(vals):
                return False
        return True

    def parallelcluster_not_run() -> bool:
        runs = gpu_store.query(env_id="gpu-parallelcluster-aws", app="mt-gemm")
        return bool(runs) and all(r.state is RunState.SKIPPED for r in runs)

    def cpu_declines() -> bool:
        for env in cpu_environments():
            prev = None
            for s in (32, 64, 128, 256):
                stat = mean_fom(cpu_store, env.env_id, "mt-gemm", s)
                if stat is None:
                    return False
                if prev is not None and stat.mean > prev * 1.05:
                    return False
                prev = stat.mean
        return True

    expectations = [
        Expectation("fig7", "GPU runs strong-scale across sizes", strong_scaling,
                    "§3.3 MT-GEMM"),
        Expectation("fig7", "Compute Engine, AKS, and GKE perform similarly",
                    trio_similar, "§3.3 MT-GEMM"),
        Expectation("fig7", "ParallelCluster GPU was not run", parallelcluster_not_run,
                    "Figure 7 caption"),
        Expectation("fig7", "CPU GFLOPs decrease at each larger node count "
                    "(why the paper omits them)", cpu_declines, "§3.3 MT-GEMM"),
    ]
    return ExperimentOutput(
        experiment_id="fig7",
        title="MT-GEMM (GPU)",
        series=[series],
        store=gpu_store,
        expectations=expectations,
    )

"""Figure 1: Kripke grind time for CPU environments (lower is better).

Paper claim: "AWS ParallelCluster had the lowest grind time for the
largest three sizes (CPU), followed by EKS and CycleCloud."  Network
interconnect is credited as the strongest influence.
"""

from __future__ import annotations

from repro.core.analysis import mean_fom
from repro.envs.registry import cpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    store = run_matrix(cpu_environments(), ["kripke"], iterations=iterations, seed=seed)
    series = series_from_store(
        store,
        "kripke",
        title="Kripke grind time (CPU)",
        y_label="grind time (ns/unknown-iteration)",
        higher_is_better=False,
    )

    cloud_envs = [e.env_id for e in cpu_environments() if e.cloud != "p"]

    def grind(env_id: str, size: int) -> float:
        stat = mean_fom(store, env_id, "kripke", size)
        assert stat is not None
        return stat.mean

    def pc_lowest_largest_three() -> bool:
        # Allow a statistical tie with EKS (same instances, same fabric);
        # ParallelCluster must be within 3% of the cloud minimum and at
        # or below EKS on average across the three sizes.
        for size in (64, 128, 256):
            best_cloud = min(grind(e, size) for e in cloud_envs)
            if grind("cpu-parallelcluster-aws", size) > best_cloud * 1.03:
                return False
        mean_pc = sum(grind("cpu-parallelcluster-aws", s) for s in (64, 128, 256))
        mean_eks = sum(grind("cpu-eks-aws", s) for s in (64, 128, 256))
        return mean_pc <= mean_eks * 1.02

    def aws_then_cyclecloud() -> bool:
        # EKS second, CycleCloud third among clouds at the largest size.
        ranked = sorted(cloud_envs, key=lambda e: grind(e, 256))
        top3 = set(ranked[:3])
        return {"cpu-parallelcluster-aws", "cpu-eks-aws", "cpu-cyclecloud-az"} == top3

    expectations = [
        Expectation(
            "fig1",
            "ParallelCluster has the lowest cloud grind time for the largest three sizes",
            pc_lowest_largest_three,
            "§3.3 Kripke",
        ),
        Expectation(
            "fig1",
            "top three cloud environments at 256 nodes are ParallelCluster, EKS, CycleCloud",
            aws_then_cyclecloud,
            "§3.3 Kripke",
        ),
        Expectation(
            "fig1",
            "grind time decreases with scale in every environment (weak scaling works)",
            lambda: all(
                grind(e, 32) > grind(e, 256) for e in store.environments()
            ),
            "Figure 1",
        ),
    ]
    return ExperimentOutput(
        experiment_id="fig1",
        title="Kripke grind time",
        series=[series],
        store=store,
        expectations=expectations,
    )

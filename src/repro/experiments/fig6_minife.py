"""Figure 6: MiniFE Total CG Mflops, CPU and GPU.

Paper claims reproduced:

* AKS exhibits the best GPU performance, and the best size-32 CPU
  performance;
* scaling is inconsistent and *inverse* (FOM falls as nodes are added)
  — the fixed-size CG problem is allreduce-bound at study scales;
* on-prem results are unavailable (partial output only).
"""

from __future__ import annotations

from repro.core.analysis import mean_fom, rank_environments
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    cpu_store = run_matrix(cpu_environments(), ["minife"], iterations=iterations, seed=seed)
    gpu_store = run_matrix(gpu_environments(), ["minife"], iterations=iterations, seed=seed)
    cpu_series = series_from_store(
        cpu_store, "minife", title="MiniFE Total CG Mflops (CPU)", y_label="Mflop/s"
    )
    gpu_series = series_from_store(
        gpu_store, "minife", title="MiniFE Total CG Mflops (GPU)", y_label="Mflop/s"
    )

    def aks_best_gpu() -> bool:
        # Azure leads; AKS within 5% of the top at every size.
        for s in (32, 64, 128, 256):
            ranked = rank_environments(gpu_store, "minife", s)
            best_env, best = ranked[0]
            aks = dict(ranked).get("gpu-aks-az")
            if aks is None or aks < 0.95 * best:
                return False
        return True

    def aks_best_cpu_at_32() -> bool:
        ranked = rank_environments(cpu_store, "minife", 32)
        best_env, best = ranked[0]
        aks = dict(ranked).get("cpu-aks-az")
        return aks is not None and aks >= 0.93 * best

    def inverse_scaling() -> bool:
        # FOM at 256 below FOM at 32 for every completing environment.
        count = ok = 0
        for store, envs in ((cpu_store, cpu_environments()), (gpu_store, gpu_environments())):
            for env in envs:
                lo = mean_fom(store, env.env_id, "minife", 32)
                hi = mean_fom(store, env.env_id, "minife", 256)
                if lo is None or hi is None:
                    continue
                count += 1
                ok += hi.mean < lo.mean
        return count > 0 and ok / count >= 0.8

    def onprem_unreported() -> bool:
        return not cpu_store.completed(env_id="cpu-onprem-a", app="minife") and not (
            gpu_store.completed(env_id="gpu-onprem-b", app="minife")
        )

    expectations = [
        Expectation("fig6", "AKS at or near the best GPU performance at every size",
                    aks_best_gpu, "§3.3 MiniFE"),
        Expectation("fig6", "AKS at or near the best CPU performance at size 32",
                    aks_best_cpu_at_32, "§3.3 MiniFE"),
        Expectation("fig6", "scaling is inverse for >= 80% of environments",
                    inverse_scaling, "§3.3 MiniFE"),
        Expectation("fig6", "on-prem results unavailable (partial output)",
                    onprem_unreported, "§3.3 MiniFE"),
    ]
    from repro.core.results import ResultStore

    combined = ResultStore(records=[*cpu_store.records, *gpu_store.records])
    return ExperimentOutput(
        experiment_id="fig6",
        title="MiniFE (CPU + GPU)",
        series=[cpu_series, gpu_series],
        store=combined,
        expectations=expectations,
    )

"""Table 2: Nodes and Network."""

from __future__ import annotations

from repro.cloud.catalog import CATALOG, instance
from repro.envs.registry import ENVIRONMENTS
from repro.experiments.base import ExperimentOutput
from repro.experiments.table1_environments import ROW_ORDER
from repro.network.fabrics import fabric
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table


def run(seed: int = 0, iterations: int = 0) -> ExperimentOutput:
    """Regenerate Table 2 from the instance catalog."""
    table = Table(
        title="Table 2: Nodes and Network",
        columns=(
            "Environment",
            "Node Type",
            "Processor/GPU",
            "Cores",
            "Memory (GB)",
            "Network",
            "Cost/Hr",
        ),
        caption="Cost is hourly USD per instance, GPUs included; on-prem not billed.",
    )
    for env_id in ROW_ORDER:
        env = ENVIRONMENTS[env_id]
        it = env.instance()
        proc = it.processor.model
        if it.gpu:
            proc += f"/{it.gpu.model} {it.gpu.memory_gb}GB"
        cost = f"${it.cost_per_hour:.2f}" if it.cost_per_hour else "-"
        table.add(
            f"{env.accelerator.upper()} {env.display_name}",
            it.name,
            proc,
            it.cores,
            it.memory_gb,
            env.fabric_override or it.fabric,
            cost,
        )

    expectations = [
        Expectation(
            "table2",
            "Google Cloud CPU nodes have 56 cores vs 96 on AWS/Azure",
            lambda: instance("c2d-standard-112").cores == 56
            and instance("hpc6a.48xlarge").cores == 96
            and instance("HB96rs_v3").cores == 96,
            "§2.2",
        ),
        Expectation(
            "table2",
            "every GPU instance carries NVIDIA V100s",
            lambda: all(
                it.gpu.model.startswith("NVIDIA V100")
                or "V100" in it.gpu.model
                for it in CATALOG.values()
                if it.gpu
            ),
            "§2.2",
        ),
        Expectation(
            "table2",
            "on-prem B has 4 GPUs/node; cloud GPU nodes have 8",
            lambda: instance("onprem-b").gpus_per_node == 4
            and all(
                it.gpus_per_node == 8
                for it in CATALOG.values()
                if it.gpu and it.cloud != "p"
            ),
            "§2.4",
        ),
        Expectation(
            "table2",
            "hourly costs match the paper (2.88/5.06/3.60/34.33/23.36/22.03)",
            lambda: (
                instance("hpc6a.48xlarge").cost_per_hour == 2.88
                and instance("c2d-standard-112").cost_per_hour == 5.06
                and instance("HB96rs_v3").cost_per_hour == 3.60
                and instance("p3dn.24xlarge").cost_per_hour == 34.33
                and instance("n1-standard-32-v100").cost_per_hour == 23.36
                and instance("ND40rs_v2").cost_per_hour == 22.03
            ),
            "Table 2",
        ),
        Expectation(
            "table2",
            "every referenced fabric exists in the fabric registry",
            lambda: all(fabric(it.fabric) is not None for it in CATALOG.values()),
            "Table 2",
        ),
    ]
    return ExperimentOutput(
        experiment_id="table2",
        title="Nodes and network",
        table=table,
        expectations=expectations,
    )

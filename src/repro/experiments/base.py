"""Shared experiment machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.analysis import fom_series
from repro.core.results import ResultStore
from repro.envs.environment import Environment
from repro.envs.registry import ENVIRONMENTS
from repro.reporting.compare import Expectation, ExpectationResult, check_expectations
from repro.reporting.series import Series
from repro.reporting.tables import Table
from repro.sim.cache import RunCache
from repro.sim.execution import ExecutionEngine


@dataclass
class ExperimentOutput:
    """What an experiment harness returns."""

    experiment_id: str
    title: str
    table: Table | None = None
    series: list[Series] = field(default_factory=list)
    store: ResultStore | None = None
    expectations: list[Expectation] = field(default_factory=list)
    notes: str = ""

    def check(self) -> list[ExpectationResult]:
        return check_expectations(self.expectations)

    def all_hold(self) -> bool:
        return all(r.holds for r in self.check())


@dataclass(frozen=True)
class _MatrixCell:
    """One environment's slice of a run matrix (picklable work unit)."""

    env_id: str
    apps: tuple[str, ...]
    sizes: tuple[int, ...]
    iterations: int
    seed: int
    options: tuple[tuple[str, Any], ...] | None
    cache_dir: str | None


def _run_matrix_cell(cell: _MatrixCell) -> list:
    env = ENVIRONMENTS[cell.env_id]
    cache = RunCache(cell.cache_dir) if cell.cache_dir else None
    engine = ExecutionEngine(seed=cell.seed, cache=cache)
    options = dict(cell.options) if cell.options is not None else None
    records = []
    for app_name in cell.apps:
        for scale in cell.sizes:
            for it in range(cell.iterations):
                records.append(
                    engine.run(env, app_name, scale, iteration=it, options=options)
                )
    return records


def run_matrix(
    envs: Iterable[Environment],
    apps: Iterable[str],
    *,
    sizes: Callable[[Environment], Iterable[int]] | None = None,
    iterations: int = 5,
    seed: int = 0,
    options: dict[str, Any] | None = None,
    workers: int = 1,
    cache: RunCache | str | None = None,
) -> ResultStore:
    """Run apps × environments × sizes × iterations into a store.

    ``workers`` fans the matrix out one environment per work unit across
    a process pool (records merge back in environment order, so results
    are identical for any worker count); ``cache`` — a
    :class:`~repro.sim.cache.RunCache` or a directory path — replays
    previously simulated runs instead of recomputing them.
    """
    cache_dir = None
    run_cache = None
    if isinstance(cache, RunCache):
        cache_dir = str(cache.root)
        run_cache = cache
    elif cache is not None:  # str or os.PathLike
        cache_dir = str(cache)
        run_cache = RunCache(cache)

    if workers > 1:
        from repro.parallel.pool import pmap

        cells = [
            _MatrixCell(
                env_id=env.env_id,
                apps=tuple(apps),
                sizes=tuple(sizes(env)) if sizes else tuple(env.sizes()),
                iterations=iterations,
                seed=seed,
                options=tuple(sorted(options.items())) if options else None,
                cache_dir=cache_dir,
            )
            for env in envs
        ]
        store = ResultStore()
        for records in pmap(_run_matrix_cell, cells, workers=workers):
            store.extend(records)
        return store

    engine = ExecutionEngine(seed=seed, cache=run_cache)
    store = ResultStore()
    for env in envs:
        env_sizes = list(sizes(env)) if sizes else list(env.sizes())
        for app_name in apps:
            for scale in env_sizes:
                for it in range(iterations):
                    store.add(
                        engine.run(env, app_name, scale, iteration=it, options=options)
                    )
    return store


def series_from_store(
    store: ResultStore,
    app: str,
    *,
    title: str,
    y_label: str,
    x_label: str = "scale (nodes or GPUs)",
    higher_is_better: bool = True,
) -> Series:
    """Build a figure-style series (one line per environment)."""
    series = Series(
        title=title,
        x_label=x_label,
        y_label=y_label,
        higher_is_better=higher_is_better,
    )
    for env_id in store.environments():
        for scale, stat in fom_series(store, env_id, app).items():
            series.add_point(env_id, scale, stat.mean, stat.std)
    return series

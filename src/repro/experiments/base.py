"""Shared experiment machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.analysis import fom_series
from repro.core.results import ResultStore
from repro.envs.environment import Environment
from repro.reporting.compare import Expectation, ExpectationResult, check_expectations
from repro.reporting.series import Series
from repro.reporting.tables import Table
from repro.sim.execution import ExecutionEngine


@dataclass
class ExperimentOutput:
    """What an experiment harness returns."""

    experiment_id: str
    title: str
    table: Table | None = None
    series: list[Series] = field(default_factory=list)
    store: ResultStore | None = None
    expectations: list[Expectation] = field(default_factory=list)
    notes: str = ""

    def check(self) -> list[ExpectationResult]:
        return check_expectations(self.expectations)

    def all_hold(self) -> bool:
        return all(r.holds for r in self.check())


def run_matrix(
    envs: Iterable[Environment],
    apps: Iterable[str],
    *,
    sizes: Callable[[Environment], Iterable[int]] | None = None,
    iterations: int = 5,
    seed: int = 0,
    options: dict[str, Any] | None = None,
) -> ResultStore:
    """Run apps × environments × sizes × iterations into a store."""
    engine = ExecutionEngine(seed=seed)
    store = ResultStore()
    for env in envs:
        env_sizes = list(sizes(env)) if sizes else list(env.sizes())
        for app_name in apps:
            for scale in env_sizes:
                for it in range(iterations):
                    store.add(
                        engine.run(env, app_name, scale, iteration=it, options=options)
                    )
    return store


def series_from_store(
    store: ResultStore,
    app: str,
    *,
    title: str,
    y_label: str,
    x_label: str = "scale (nodes or GPUs)",
    higher_is_better: bool = True,
) -> Series:
    """Build a figure-style series (one line per environment)."""
    series = Series(
        title=title,
        x_label=x_label,
        y_label=y_label,
        higher_is_better=higher_is_better,
    )
    for env_id in store.environments():
        for scale, stat in fom_series(store, env_id, app).items():
            series.add_point(env_id, scale, stat.mean, stat.std)
    return series

"""Figure 2: AMG2023 overall FOM, CPU and GPU (weak scaled).

Paper claims reproduced:

* "Cloud environments excelled for GPU runs, while on-premises had the
  highest FOMs for CPU."
* "The on-premises cluster B (GPU) produced some of the lowest FOMs
  across sizes, but cluster A (CPU) produced the largest."
* "-P 8 4 2 results in about 10% higher FOM than -P 4 4 4"
  (checked via the process-topology option at size 64 on GKE).
"""

from __future__ import annotations

from repro.core.analysis import mean_fom, rank_environments
from repro.envs.environment import GPU_SIZES
from repro.envs.registry import cpu_environments, environment, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation
from repro.sim.execution import ExecutionEngine


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    cpu_store = run_matrix(cpu_environments(), ["amg2023"], iterations=iterations, seed=seed)
    gpu_store = run_matrix(gpu_environments(), ["amg2023"], iterations=iterations, seed=seed)

    cpu_series = series_from_store(
        cpu_store, "amg2023", title="AMG2023 FOM (CPU)", y_label="FOM (nnz_AP/s)"
    )
    gpu_series = series_from_store(
        gpu_store, "amg2023", title="AMG2023 FOM (GPU)", y_label="FOM (nnz_AP/s)"
    )

    def onprem_a_largest() -> bool:
        return all(
            rank_environments(cpu_store, "amg2023", s)[0][0] == "cpu-onprem-a"
            for s in (32, 64, 128, 256)
        )

    def onprem_b_among_lowest() -> bool:
        # bottom half of the 6 GPU environments at every size
        for s in GPU_SIZES:
            ranked = [e for e, _ in rank_environments(gpu_store, "amg2023", s)]
            if ranked.index("gpu-onprem-b") < len(ranked) - 3:
                return False
        return True

    def gpu_beats_cpu_per_cloud() -> bool:
        # "Cloud environments excelled for GPU": at matched scale index,
        # cloud GPU FOM exceeds the same cloud's CPU FOM.
        pairs = [
            ("gpu-eks-aws", "cpu-eks-aws"),
            ("gpu-aks-az", "cpu-aks-az"),
            ("gpu-gke-g", "cpu-gke-g"),
        ]
        for gpu_env, cpu_env in pairs:
            g = mean_fom(gpu_store, gpu_env, "amg2023", 256)
            c = mean_fom(cpu_store, cpu_env, "amg2023", 256)
            if g is None or c is None or g.mean <= c.mean:
                return False
        return True

    def topology_bonus() -> bool:
        engine = ExecutionEngine(seed=seed)
        env = environment("gpu-gke-g")
        tuned = engine.run(env, "amg2023", 64, options={"process_topology": (8, 4, 2)})
        legacy = engine.run(env, "amg2023", 64, options={"process_topology": (4, 4, 4)})
        assert tuned.fom and legacy.fom
        ratio = tuned.fom / legacy.fom
        return 1.05 <= ratio <= 1.15

    expectations = [
        Expectation("fig2", "on-prem A has the largest CPU FOM at every size",
                    onprem_a_largest, "§3.3 AMG2023"),
        Expectation("fig2", "on-prem B is in the bottom half of GPU FOMs at every size",
                    onprem_b_among_lowest, "§3.3 AMG2023"),
        Expectation("fig2", "cloud GPU runs beat the same cloud's CPU runs (GPU excels)",
                    gpu_beats_cpu_per_cloud, "Figure 2"),
        Expectation("fig2", "-P 8 4 2 gives ~10% higher FOM than -P 4 4 4 on GKE size 64",
                    topology_bonus, "§3.3 AMG2023"),
    ]
    from repro.core.results import ResultStore

    combined = ResultStore(records=[*cpu_store.records, *gpu_store.records])
    return ExperimentOutput(
        experiment_id="fig2",
        title="AMG2023 FOM (CPU + GPU)",
        series=[cpu_series, gpu_series],
        store=combined,
        expectations=expectations,
    )

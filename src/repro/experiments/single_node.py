"""§3.3 Single Node Benchmark: the supermarket fish problem.

The study's per-node inventory found machines consistent everywhere
except one AKS instance reporting two processors.  This harness surveys
large simulated fleets per environment and flags anomalies.
"""

from __future__ import annotations

from repro.apps.nodebench import SingleNodeBenchmark, find_fish
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table
from repro.sim.execution import ExecutionEngine

SURVEY_NODES = 256


def run(seed: int = 0, iterations: int = 1) -> ExperimentOutput:
    engine = ExecutionEngine(seed=seed)
    bench = SingleNodeBenchmark()
    table = Table(
        title="Single-node benchmark survey",
        columns=("Environment", "Nodes surveyed", "Anomalous nodes"),
        caption="Anomaly = node whose inventory deviates from the cluster mode "
        "(the supermarket fish problem).",
    )
    anomalies: dict[str, int] = {}
    for env in cpu_environments() + gpu_environments():
        scale = SURVEY_NODES if not env.is_gpu else SURVEY_NODES
        ctx = engine.context(env, scale)
        inventories = bench.collect(ctx)
        fish = find_fish(inventories)
        anomalies[env.env_id] = len(fish)
        table.add(env.env_id, len(inventories), len(fish))

    def only_aks_fishy() -> bool:
        for env_id, n in anomalies.items():
            if "aks" in env_id:
                continue  # may or may not surface at this sample size
            if n != 0:
                return False
        return sum(n for e, n in anomalies.items() if "aks" in e) >= 1

    expectations = [
        Expectation("nodebench",
                    "anomalous nodes occur on AKS and nowhere else",
                    only_aks_fishy, "§3.3 Single Node Benchmark"),
    ]
    return ExperimentOutput(
        experiment_id="nodebench",
        title="Single-node benchmark",
        table=table,
        expectations=expectations,
    )

"""Figure 4: LAMMPS millions of atom-steps/second, CPU and GPU.

Paper claims reproduced:

* on-prem A (CPU) and B (GPU) produce larger FOMs than cloud;
* GKE CPU shows an inflection between 128 and 256 nodes where strong
  scaling stops;
* GPU runs impossible on ParallelCluster (undeployable environment);
* AKS CPU at 256 ran once because of an ~8.8-minute hookup (checked via
  the hookup model).
"""

from __future__ import annotations

from repro.core.analysis import mean_fom, rank_environments
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.network.hookup import hookup_time
from repro.reporting.compare import Expectation
from repro.sim.run_result import RunState


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    cpu_store = run_matrix(cpu_environments(), ["lammps"], iterations=iterations, seed=seed)
    gpu_store = run_matrix(
        gpu_environments(deployable_only=False), ["lammps"],
        iterations=iterations, seed=seed,
    )
    cpu_series = series_from_store(
        cpu_store, "lammps", title="LAMMPS Matom-steps/s (CPU, 64x64x32)",
        y_label="Matom-steps/s",
    )
    gpu_series = series_from_store(
        gpu_store, "lammps", title="LAMMPS Matom-steps/s (GPU, 64x32x32)",
        y_label="Matom-steps/s",
    )

    def onprem_a_best_cpu() -> bool:
        return all(
            rank_environments(cpu_store, "lammps", s)[0][0] == "cpu-onprem-a"
            for s in (32, 64, 128, 256)
        )

    def onprem_b_leads_gpu() -> bool:
        # B leads or statistically ties the lead: within 7% of the best
        # environment at every size (Azure shares B's InfiniBand EDR
        # fabric, so the gap is within run-to-run noise — recorded as a
        # reproduction deviation in EXPERIMENTS.md) and strictly best at
        # at least one size.
        best_count = 0
        for s in (32, 64, 128, 256):
            ranked = rank_environments(gpu_store, "lammps", s)
            values = dict(ranked)
            best_env, best = ranked[0]
            b = values.get("gpu-onprem-b")
            if b is None or b < 0.93 * best:
                return False
            best_count += best_env == "gpu-onprem-b"
        return best_count >= 1

    def gke_inflection() -> bool:
        f128 = mean_fom(cpu_store, "cpu-gke-g", "lammps", 128)
        f256 = mean_fom(cpu_store, "cpu-gke-g", "lammps", 256)
        assert f128 and f256
        return f256.mean < f128.mean * 1.1  # scaling stopped (or reversed)

    def parallelcluster_gpu_skipped() -> bool:
        runs = gpu_store.query(env_id="gpu-parallelcluster-aws", app="lammps")
        return bool(runs) and all(r.state is RunState.SKIPPED for r in runs)

    def aks_hookup_minutes() -> bool:
        h = hookup_time("az", False, 256, seed=seed)
        return 300.0 <= h <= 900.0  # ~8.8 min in the paper

    expectations = [
        Expectation("fig4", "on-prem A has the largest CPU FOM at every size",
                    onprem_a_best_cpu, "§3.3 LAMMPS"),
        Expectation("fig4", "on-prem B leads the GPU FOMs",
                    onprem_b_leads_gpu, "Figure 4"),
        Expectation("fig4", "GKE CPU strong scaling stops between 128 and 256",
                    gke_inflection, "§3.3 LAMMPS"),
        Expectation("fig4", "ParallelCluster GPU runs are impossible",
                    parallelcluster_gpu_skipped, "Figure 4 caption"),
        Expectation("fig4", "AKS CPU hookup at 256 nodes is in the minutes range",
                    aks_hookup_minutes, "§3.3 LAMMPS"),
    ]
    from repro.core.results import ResultStore

    combined = ResultStore(records=[*cpu_store.records, *gpu_store.records])
    return ExperimentOutput(
        experiment_id="fig4",
        title="LAMMPS FOM (CPU + GPU)",
        series=[cpu_series, gpu_series],
        store=combined,
        expectations=expectations,
    )

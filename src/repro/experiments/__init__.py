"""Experiment harnesses: one module per table and figure of the paper.

Each module exposes ``run(seed=..., iterations=...)`` returning an
:class:`~repro.experiments.base.ExperimentOutput` holding the
regenerated table/series plus the paper's qualitative claims as
checkable :class:`~repro.reporting.compare.Expectation` records.

The registry maps experiment ids (``table1`` … ``fig8``, plus the
section-level results) to their runners; ``run_all`` regenerates the
whole evaluation.
"""

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "run_all", "run_experiment"]

"""Table 3: Environment Usability — Assessment of Effort."""

from __future__ import annotations

from repro.core.usability import usability_table
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

#: The paper's Table 3, verbatim: (env_id -> (setup, development,
#: app setup, manual intervention)).
PAPER_TABLE3 = {
    "cpu-parallelcluster-aws": ("medium", "low", "low", "low"),
    "cpu-cyclecloud-az": ("high", "low", "high", "high"),
    "cpu-computeengine-g": ("medium", "medium", "low", "low"),
    "gpu-cyclecloud-az": ("high", "low", "high", "high"),
    "gpu-computeengine-g": ("medium", "medium", "low", "low"),
    "cpu-eks-aws": ("low", "high", "low", "medium"),
    "cpu-aks-az": ("medium", "high", "high", "high"),
    "cpu-gke-g": ("low", "low", "low", "medium"),
    "gpu-eks-aws": ("high", "high", "low", "medium"),
    "gpu-aks-az": ("medium", "high", "high", "medium"),
    "gpu-gke-g": ("low", "low", "low", "medium"),
    "gpu-onprem-b": ("low", "low", "high", "medium"),
    "cpu-onprem-a": ("low", "low", "high", "medium"),
}


def run(seed: int = 0, iterations: int = 0) -> ExperimentOutput:
    """Regenerate Table 3 from the incident database and rubric."""
    assessments = usability_table()
    table = Table(
        title="Table 3: Environment Usability - Assessment of Effort",
        columns=(
            "Environment",
            "Accelerator",
            "Setup",
            "Development",
            "Application Setup",
            "Manual Intervention",
        ),
        caption="low: worked per instructions; medium: unexpected issues; "
        "high: significant development effort (§2.5 rubric).",
    )
    measured: dict[str, tuple[str, ...]] = {}
    for a in assessments:
        row = a.as_row()
        table.add(*row)
        measured[a.env_id] = row[2:]

    def cell_match_fraction() -> float:
        total = hits = 0
        for env_id, paper_row in PAPER_TABLE3.items():
            got = measured.get(env_id)
            if got is None:
                continue
            for p, g in zip(paper_row, got):
                total += 1
                hits += p == g
        return hits / total if total else 0.0

    expectations = [
        Expectation(
            "table3",
            "11 cloud + 2 on-prem environments assessed (ParallelCluster GPU absent)",
            lambda: len(assessments) == 13
            and "gpu-parallelcluster-aws" not in measured,
            "§3.1",
        ),
        Expectation(
            "table3",
            "every effort cell matches the paper's grid",
            lambda: cell_match_fraction() == 1.0,
            "Table 3",
        ),
        Expectation(
            "table3",
            "AWS GPU quota acquisition was medium difficulty, all others low",
            lambda: all(
                a.account_difficulty
                == ("medium" if (a.env_id.startswith("gpu") and "aws" in a.env_id) else "low")
                for a in assessments
            ),
            "§3.1 Accounts and Resources",
        ),
    ]
    return ExperimentOutput(
        experiment_id="table3",
        title="Usability assessment",
        table=table,
        expectations=expectations,
        notes=f"cell agreement with paper: {cell_match_fraction():.0%}",
    )

"""Figure 5: OSU benchmarks at the largest CPU cluster size (256 nodes).

Three panels over the message-size sweep: point-to-point latency,
point-to-point bandwidth, and AllReduce.  Paper claims reproduced:

* environments with InfiniBand/Omni-Path fabrics (on-prem A, Azure
  CycleCloud) have the lowest small-message latencies;
* Azure CycleCloud (IB HDR, 200 Gb/s) reaches the highest bandwidth;
* both AWS environments spike on AllReduce at 32,768 bytes (the OpenMPI
  issue AWS has since fixed);
* CycleCloud shows the highest AllReduce variation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osu import MESSAGE_SIZES, OSUBenchmarks
from repro.envs.registry import cpu_environments
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.series import Series
from repro.sim.execution import ExecutionEngine

SIZE = 256  # nodes


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    engine = ExecutionEngine(seed=seed)
    osu = OSUBenchmarks()
    envs = cpu_environments()

    latency = Series("OSU point-to-point latency (256 nodes)", "message bytes",
                     "one-way latency (us)", higher_is_better=False)
    bandwidth = Series("OSU point-to-point bandwidth (256 nodes)", "message bytes",
                       "bandwidth (MB/s)", higher_is_better=True)
    allreduce = Series("OSU AllReduce (256 nodes)", "message bytes",
                       "avg latency (us)", higher_is_better=False)

    sweeps: dict[str, dict[str, dict[int, list[float]]]] = {}
    for env in envs:
        per_env = {"lat": {}, "bw": {}, "ar": {}}
        for it in range(iterations):
            ctx = engine.context(env, SIZE, iteration=it)
            for s in MESSAGE_SIZES:
                per_env["lat"].setdefault(s, []).append(osu.latency_us(ctx, s))
                per_env["bw"].setdefault(s, []).append(osu.bandwidth_mbps(ctx, s))
                per_env["ar"].setdefault(s, []).append(osu.allreduce_us(ctx, s))
        sweeps[env.env_id] = per_env
        for s in MESSAGE_SIZES:
            for series, key in ((latency, "lat"), (bandwidth, "bw"), (allreduce, "ar")):
                vals = per_env[key][s]
                series.add_point(env.env_id, s, float(np.mean(vals)), float(np.std(vals)))

    def low_latency_fabrics_lowest() -> bool:
        small = 8
        lats = {e: latency.value_at(e, small) for e in sweeps}
        ranked = sorted(lats, key=lambda e: lats[e])
        return set(ranked[:3]) >= {"cpu-onprem-a", "cpu-cyclecloud-az"}

    def cyclecloud_highest_bandwidth() -> bool:
        big = MESSAGE_SIZES[-1]
        bws = {e: bandwidth.value_at(e, big) for e in sweeps}
        return max(bws, key=lambda e: bws[e]) == "cpu-cyclecloud-az"

    def aws_allreduce_spike() -> bool:
        for env_id in ("cpu-parallelcluster-aws", "cpu-eks-aws"):
            at_spike = allreduce.value_at(env_id, 32768)
            below = allreduce.value_at(env_id, 8192)
            above = allreduce.value_at(env_id, 131072)
            assert at_spike and below and above
            if not (at_spike > 2.5 * below and at_spike > 1.5 * above):
                return False
        # Non-AWS environments must not spike.
        at = allreduce.value_at("cpu-cyclecloud-az", 32768)
        below = allreduce.value_at("cpu-cyclecloud-az", 8192)
        return at is not None and below is not None and at < 2.5 * below

    def cyclecloud_highest_variation() -> bool:
        cvs = {}
        for env_id, per_env in sweeps.items():
            ratios = []
            for s in MESSAGE_SIZES:
                vals = per_env["ar"][s]
                m = float(np.mean(vals))
                if m > 0:
                    ratios.append(float(np.std(vals)) / m)
            cvs[env_id] = float(np.mean(ratios))
        top2 = sorted(cvs, key=lambda e: cvs[e], reverse=True)[:2]
        return "cpu-cyclecloud-az" in top2

    expectations = [
        Expectation("fig5", "InfiniBand/Omni-Path environments have the lowest latency",
                    low_latency_fabrics_lowest, "§3.3 OSU"),
        Expectation("fig5", "CycleCloud (IB HDR) reaches the highest bandwidth",
                    cyclecloud_highest_bandwidth, "§3.3 OSU"),
        Expectation("fig5", "both AWS environments spike on AllReduce at 32768 bytes",
                    aws_allreduce_spike, "§3.3 OSU"),
        Expectation("fig5", "CycleCloud is among the highest AllReduce variation",
                    cyclecloud_highest_variation, "Figure 5 caption"),
    ]
    return ExperimentOutput(
        experiment_id="fig5",
        title="OSU benchmarks at 256 nodes",
        series=[latency, bandwidth, allreduce],
        expectations=expectations,
    )

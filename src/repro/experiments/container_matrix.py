"""§3.1 Application Setup: the container build matrix.

The study built 220 unique containers (114 tested, 97 intended for use,
74 ultimately used once ParallelCluster GPU fell away).  This harness
builds the full matrix our registry implies — every app × cloud ×
accelerator, with Azure's two transport variants — and reports the same
style of funnel: attempted → built → intended → used.

Claims checked:

* the Laghos GPU image fails to build on every cloud (the CUDA pin
  conflict);
* every CPU app builds on every cloud;
* Azure images are the most expensive to build (proprietary stack +
  UCX experimentation — §3.1 scored Azure application setup *high*);
* images for undeployable environments are built but never used
  (ParallelCluster GPU).
"""

from __future__ import annotations

from repro.apps.registry import APPS
from repro.containers.builder import AZURE_UCX_SETTINGS, ContainerBuilder
from repro.containers.recipe import recipe_for
from repro.containers.registry import Registry
from repro.envs.registry import ENVIRONMENTS
from repro.experiments.base import ExperimentOutput
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

CLOUDS = ("aws", "az", "g")


def run(seed: int = 0, iterations: int = 0) -> ExperimentOutput:
    builder = ContainerBuilder()
    registry = Registry()
    build_minutes: dict[str, float] = {c: 0.0 for c in CLOUDS}
    failed_tags: list[str] = []

    for app_name, model in APPS.items():
        for cloud in CLOUDS:
            for gpu in (False, True):
                variants = (
                    list(AZURE_UCX_SETTINGS.values()) if cloud == "az" else [None]
                )
                for ucx in variants:
                    recipe = recipe_for(app_name, cloud, gpu=gpu)
                    result = builder.try_build(recipe, ucx_tls=ucx)
                    if result.ok:
                        registry.push(result.image)
                        build_minutes[cloud] += result.image.build_minutes
                    else:
                        failed_tags.append(recipe.tag)

    # "Used": images whose (cloud, accelerator) stack backs a deployable
    # environment with a container runtime.
    deployable_stacks = {
        (env.cloud, env.accelerator)
        for env in ENVIRONMENTS.values()
        if env.deployable and env.container_runtime is not None
    }
    used = sum(
        1
        for image in registry.images.values()
        if (image.recipe.cloud, "gpu" if image.recipe.gpu else "cpu")
        in deployable_stacks
    )

    table = Table(
        title="Container build matrix (§3.1 Application Setup)",
        columns=("Stage", "Count"),
        caption="The paper's funnel was 220 built / 114 tested / 97 intended "
        "/ 74 used; ours deduplicates by (app, cloud, accelerator, transport).",
    )
    table.add("build attempts", len(builder.attempts))
    table.add("built", builder.built)
    table.add("failed", builder.failed)
    table.add("used by deployable environments", used)

    per_cloud = Table(
        title="Build cost per cloud (minutes of build time)",
        columns=("Cloud", "Total build minutes"),
    )
    for cloud in CLOUDS:
        per_cloud.add(cloud, f"{build_minutes[cloud]:.0f}")

    def laghos_gpu_fails_everywhere() -> bool:
        return {f"laghos-{c}-gpu" for c in CLOUDS} <= set(failed_tags)

    def cpu_apps_build_everywhere() -> bool:
        return not any("cpu" in t for t in failed_tags)

    def azure_most_expensive() -> bool:
        return build_minutes["az"] == max(build_minutes.values())

    def unused_images_exist() -> bool:
        return used < builder.built

    expectations = [
        Expectation("containers", "Laghos GPU fails to build on every cloud",
                    laghos_gpu_fails_everywhere, "§3.3 Laghos"),
        Expectation("containers", "every CPU app builds on every cloud",
                    cpu_apps_build_everywhere, "§3.1"),
        Expectation("containers", "Azure images cost the most build effort",
                    azure_most_expensive, "§3.1 Application Setup"),
        Expectation("containers", "some built images are never used "
                    "(ParallelCluster GPU fell away)", unused_images_exist,
                    "§3.1"),
    ]
    table.rows.extend(per_cloud.rows)
    return ExperimentOutput(
        experiment_id="containers",
        title="Container build matrix",
        table=table,
        expectations=expectations,
        notes=f"failed tags: {sorted(set(failed_tags))}",
    )

"""Table 4: AMG2023 Total Costs By Environment."""

from __future__ import annotations

from repro.core.costs import amg_cost_table, cheapest_accelerator
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    """Run weak-scaled AMG2023 everywhere and total the bills."""
    envs = [
        e for e in cpu_environments() + gpu_environments() if e.cloud != "p"
    ]
    store = run_matrix(envs, ["amg2023"], iterations=iterations, seed=seed)
    rows = amg_cost_table(store)

    table = Table(
        title="Table 4: AMG2023 Total Costs By Environment",
        columns=("Environment", "Accelerator", "Cost/Hr", "Total Cost"),
        caption="Total sums iterations across sizes, accounting for node "
        "count and instance cost. GPU runs are cheaper despite pricier "
        "instances because weak-scaled AMG finishes far faster on GPUs.",
    )
    for r in rows:
        table.add(r.display_name, r.accelerator, f"${r.cost_per_hour:.2f}",
                  f"${r.total_cost:.2f}")

    gpu_rows = [r for r in rows if r.accelerator == "GPU"]
    cpu_rows = [r for r in rows if r.accelerator == "CPU"]

    expectations = [
        Expectation(
            "table4",
            "GPU environments are cheaper on average than CPU for AMG2023",
            lambda: cheapest_accelerator(rows) == "GPU",
            "§4.2 Cost Estimation",
        ),
        Expectation(
            "table4",
            "the cheapest environments are all GPU",
            lambda: all(r.accelerator == "GPU" for r in rows[:3]),
            "Table 4",
        ),
        Expectation(
            "table4",
            "every deployable cloud environment produced a cost row (11 rows)",
            lambda: len(rows) == 11,
            "Table 4",
        ),
        Expectation(
            "table4",
            "the most expensive rows are Google CPU environments "
            "(highest $/hr among CPU at $5.06 with 56-core nodes)",
            lambda: all("Google" in r.display_name for r in cpu_rows[-2:]),
            "Table 4",
        ),
    ]
    return ExperimentOutput(
        experiment_id="table4",
        title="AMG2023 total costs",
        table=table,
        store=store,
        expectations=expectations,
    )

"""Figure 8: Quicksilver segments over cycle tracking time (CPU).

Paper claims reproduced:

* AWS setups have the highest cloud FOM, followed by Azure (Google's
  56-core nodes trail);
* GPU runs did not finish: half the ranks were pinned to GPU 0.
"""

from __future__ import annotations

from repro.core.analysis import mean_fom
from repro.envs.registry import cpu_environments, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix, series_from_store
from repro.reporting.compare import Expectation


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    store = run_matrix(cpu_environments(), ["quicksilver"], iterations=iterations, seed=seed)
    gpu_store = run_matrix(gpu_environments(), ["quicksilver"], iterations=1, seed=seed)
    series = series_from_store(
        store, "quicksilver",
        title="Quicksilver segments / cycle tracking time (CPU)",
        y_label="segments/s",
    )

    def cloud_order() -> bool:
        # AWS > Azure > Google at every size, per cloud pair.
        for s in (32, 64, 128, 256):
            def best_of(cloud_envs):
                vals = [mean_fom(store, e, "quicksilver", s) for e in cloud_envs]
                return max(v.mean for v in vals if v is not None)
            aws = best_of(["cpu-parallelcluster-aws", "cpu-eks-aws"])
            az = best_of(["cpu-cyclecloud-az", "cpu-aks-az"])
            g = best_of(["cpu-computeengine-g", "cpu-gke-g"])
            if not (aws > az > g):
                return False
        return True

    def gpu_runs_fail() -> bool:
        runs = gpu_store.query(app="quicksilver")
        return bool(runs) and all(
            r.failure_kind == "misconfiguration" for r in runs
        )

    expectations = [
        Expectation("fig8", "AWS highest cloud FOM, followed by Azure, then Google",
                    cloud_order, "§3.3 Quicksilver"),
        Expectation("fig8", "GPU runs fail (half of ranks pinned to GPU 0)",
                    gpu_runs_fail, "§3.3 Quicksilver"),
        Expectation("fig8", "segments/s grows with scale (weak scaled)",
                    lambda: all(
                        (lambda lo, hi: lo is not None and hi is not None and hi.mean > lo.mean)(
                            mean_fom(store, e.env_id, "quicksilver", 32),
                            mean_fom(store, e.env_id, "quicksilver", 256),
                        )
                        for e in cpu_environments()
                    ),
                    "Figure 8"),
    ]
    return ExperimentOutput(
        experiment_id="fig8",
        title="Quicksilver (CPU)",
        series=[series],
        store=store,
        expectations=expectations,
    )

"""§3.2: hookup times (job start to application start).

Reproduces the paper's numbers:

* Azure GPU: ~43/30/20/10 s at 4/8/16/32 nodes (decreasing!);
* Azure CPU: ~50/100/200/400+ s at 32/64/128/256 (linear in nodes);
* other clouds: 3–4 s (GPU) and 10–15 s (CPU), flat across sizes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentOutput
from repro.network.hookup import hookup_time
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

GPU_NODE_SIZES = (4, 8, 16, 32)
CPU_NODE_SIZES = (32, 64, 128, 256)
PAPER_AZURE_GPU = {4: 43.0, 8: 30.0, 16: 20.0, 32: 10.0}
PAPER_AZURE_CPU = {32: 50.0, 64: 100.0, 128: 200.0, 256: 400.0}


def _mean_hookup(cloud: str, gpu: bool, nodes: int, seed: int, iterations: int) -> float:
    vals = [
        hookup_time(cloud, gpu, nodes, seed=seed, iteration=i)
        for i in range(iterations)
    ]
    return float(np.mean(vals))


def run(seed: int = 0, iterations: int = 10) -> ExperimentOutput:
    table = Table(
        title="Hookup time by cloud and size (seconds)",
        columns=("Cloud", "Accelerator", *(str(s) for s in CPU_NODE_SIZES)),
        caption="GPU rows use node sizes 4/8/16/32; CPU rows 32/64/128/256.",
    )
    data: dict[tuple[str, bool], dict[int, float]] = {}
    for cloud in ("aws", "az", "g", "p"):
        for gpu, sizes in ((True, GPU_NODE_SIZES), (False, CPU_NODE_SIZES)):
            row = {n: _mean_hookup(cloud, gpu, n, seed, iterations) for n in sizes}
            data[(cloud, gpu)] = row
            table.add(cloud, "GPU" if gpu else "CPU",
                      *(f"{v:.1f}" for v in row.values()))

    def azure_gpu_matches() -> bool:
        row = data[("az", True)]
        return all(
            0.6 * expect <= row[n] <= 1.5 * expect
            for n, expect in PAPER_AZURE_GPU.items()
        ) and row[4] > row[32]

    def azure_cpu_matches() -> bool:
        row = data[("az", False)]
        return all(
            0.6 * expect <= row[n] <= 1.5 * expect
            for n, expect in PAPER_AZURE_CPU.items()
        ) and row[256] > row[32]

    def others_flat() -> bool:
        for cloud in ("aws", "g"):
            gpu_row = data[(cloud, True)]
            cpu_row = data[(cloud, False)]
            if not all(1.0 <= v <= 8.0 for v in gpu_row.values()):
                return False
            if not all(5.0 <= v <= 25.0 for v in cpu_row.values()):
                return False
            # Scale is not a factor: spread under 2x across sizes.
            if max(cpu_row.values()) > 2.0 * min(cpu_row.values()):
                return False
        return True

    expectations = [
        Expectation("hookup", "Azure GPU hookup ~43/30/20/10 s and decreasing with size",
                    azure_gpu_matches, "§3.2"),
        Expectation("hookup", "Azure CPU hookup ~50/100/200/400 s, linear in nodes",
                    azure_cpu_matches, "§3.2"),
        Expectation("hookup", "other clouds flat at 3-4 s (GPU) / 10-15 s (CPU)",
                    others_flat, "§3.2"),
    ]
    return ExperimentOutput(
        experiment_id="hookup",
        title="Hookup times",
        table=table,
        expectations=expectations,
    )

"""Registry of every experiment harness."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    container_matrix,
    ecc_survey,
    fig1_kripke,
    fig2_amg,
    fig3_laghos,
    fig4_lammps,
    fig5_osu,
    fig6_minife,
    fig7_mtgemm,
    fig8_quicksilver,
    hookup_times,
    single_node,
    stream_triad,
    study_costs,
    table1_environments,
    table2_nodes,
    table3_usability,
    table4_amg_costs,
)
from repro.experiments.base import ExperimentOutput

EXPERIMENTS: dict[str, Callable[..., ExperimentOutput]] = {
    "table1": table1_environments.run,
    "table2": table2_nodes.run,
    "table3": table3_usability.run,
    "table4": table4_amg_costs.run,
    "fig1": fig1_kripke.run,
    "fig2": fig2_amg.run,
    "fig3": fig3_laghos.run,
    "fig4": fig4_lammps.run,
    "fig5": fig5_osu.run,
    "fig6": fig6_minife.run,
    "fig7": fig7_mtgemm.run,
    "fig8": fig8_quicksilver.run,
    "hookup": hookup_times.run,
    "stream": stream_triad.run,
    "ecc": ecc_survey.run,
    "nodebench": single_node.run,
    "costs": study_costs.run,
    "containers": container_matrix.run,
}


def run_experiment(experiment_id: str, *, seed: int = 0, iterations: int | None = None) -> ExperimentOutput:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    kwargs = {"seed": seed}
    if iterations is not None:
        kwargs["iterations"] = iterations
    return runner(**kwargs)


def run_all(*, seed: int = 0, iterations: int | None = None) -> dict[str, ExperimentOutput]:
    """Regenerate the full evaluation section."""
    return {
        exp_id: run_experiment(exp_id, seed=seed, iterations=iterations)
        for exp_id in EXPERIMENTS
    }

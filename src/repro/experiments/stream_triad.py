"""§3.3 Stream: Triad bandwidth, CPU (size-64 aggregate) and GPU (size 32).

Paper figures this harness reproduces (GB/s):

* CPU aggregate at 64 nodes: GKE 6800.9 ± 2402.3, Compute Engine
  6239.4 ± 2326.1, EKS 3013.2 ± 880.3, AKS 2579.5 ± 907.6;
* GPU per-GPU Triad at size 32: GKE 782.91, Compute Engine 783.3,
  AKS 748.54, on-prem B 782.52, CycleCloud 748.54.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import mean_fom
from repro.envs.registry import cpu_environments, environment, gpu_environments
from repro.experiments.base import ExperimentOutput, run_matrix
from repro.reporting.compare import Expectation
from repro.reporting.tables import Table

PAPER_CPU_AGGREGATE = {
    "cpu-gke-g": 6800.9,
    "cpu-computeengine-g": 6239.35,
    "cpu-eks-aws": 3013.23,
    "cpu-aks-az": 2579.5,
}
PAPER_GPU_TRIAD = {
    "gpu-gke-g": 782.91,
    "gpu-computeengine-g": 783.3,
    "gpu-aks-az": 748.54,
    "gpu-onprem-b": 782.52,
    "gpu-cyclecloud-az": 748.54,
}


def run(seed: int = 0, iterations: int = 5) -> ExperimentOutput:
    cpu_store = run_matrix(
        cpu_environments(), ["stream"], sizes=lambda e: (64,),
        iterations=iterations, seed=seed,
    )
    gpu_store = run_matrix(
        gpu_environments(), ["stream"], sizes=lambda e: (32,),
        iterations=iterations, seed=seed,
    )

    table = Table(
        title="Stream Triad bandwidth",
        columns=("Environment", "Config", "Measured (GB/s)", "Paper (GB/s)"),
        caption="CPU rows: aggregate across a 64-node cluster. "
        "GPU rows: per-GPU Triad at size 32.",
    )
    measured: dict[str, float] = {}
    for env in cpu_environments():
        stat = mean_fom(cpu_store, env.env_id, "stream", 64)
        if stat:
            measured[env.env_id] = stat.mean
            paper = PAPER_CPU_AGGREGATE.get(env.env_id)
            table.add(env.env_id, "CPU 64-node aggregate", f"{stat.mean:.1f}",
                      f"{paper:.1f}" if paper else "-")
    for env in gpu_environments():
        stat = mean_fom(gpu_store, env.env_id, "stream", 32)
        if stat:
            measured[env.env_id] = stat.mean
            paper = PAPER_GPU_TRIAD.get(env.env_id)
            table.add(env.env_id, "GPU per-GPU Triad", f"{stat.mean:.1f}",
                      f"{paper:.1f}" if paper else "-")

    def cpu_within_25pct() -> bool:
        return all(
            abs(measured[e] - v) / v < 0.25 for e, v in PAPER_CPU_AGGREGATE.items()
        )

    def cpu_ordering() -> bool:
        return (
            measured["cpu-gke-g"] > measured["cpu-eks-aws"] > 0
            and measured["cpu-computeengine-g"] > measured["cpu-aks-az"]
            and measured["cpu-aks-az"] < measured["cpu-eks-aws"] * 1.2
        )

    def gpu_within_5pct() -> bool:
        return all(
            abs(measured[e] - v) / v < 0.05 for e, v in PAPER_GPU_TRIAD.items()
        )

    expectations = [
        Expectation("stream", "CPU aggregates within 25% of the paper's figures",
                    cpu_within_25pct, "§3.3 Stream"),
        Expectation("stream", "Google environments lead; AKS lowest CPU aggregate",
                    cpu_ordering, "§3.3 Stream"),
        Expectation("stream", "GPU Triad within 5% of the paper's figures",
                    gpu_within_5pct, "§3.3 Stream"),
    ]
    from repro.core.results import ResultStore

    combined = ResultStore(records=[*cpu_store.records, *gpu_store.records])
    return ExperimentOutput(
        experiment_id="stream",
        title="Stream Triad",
        table=table,
        store=combined,
        expectations=expectations,
    )

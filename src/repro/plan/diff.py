"""Plan diffing: which cells of a variant plan can reuse the baseline?

Incremental execution rests on one observation: a scenario perturbs a
cell only through a fixed set of overlay hooks (``effective_rate``,
``Fabric.overlaid``, ``friction_overrides``, ``lag_overrides``,
``price_overlay``/``fault_scale``, ``probability_scale``), and every
:class:`~repro.scenarios.spec.Perturbation` type declares — via its
``touches(cloud)`` predicate and ``hook`` label — exactly which cell
coordinates it can reach.  A cell on a cloud no perturbation touches is
*byte-identical* to the baseline cell (the overlays configure nothing
there — see :func:`~repro.scenarios.apply.overlay_provider`), so its
folded summary can be attached straight from the cache instead of
re-simulated.

:func:`diff_plans` makes that decision auditable.  Given two compiled
:class:`~repro.plan.ir.RunPlan`\\ s it intersects their cells on the
coordinates a :class:`~repro.plan.ir.PlannedRun` carries — (seed, env,
apps, scale, iterations) — via the content-addressed cell summary key
(:func:`~repro.parallel.shard.shard_summary_key`, which embeds the
per-cell overlay *footprint* rather than the whole scenario), and
classifies every variant cell:

* **reusable** — a baseline cell shares the summary key, so the cached
  summary the baseline wrote is the variant cell's result, bit for bit;
* **dirty** — the scenario's footprint touches the cell (the diff names
  the hooks), or no baseline cell matches the coordinates at all.

The classification is *conservative by construction*: the summary key
hashes everything that determines a cell's output, so two cells share a
key only when they share a result.  A diff of a plan against itself is
therefore 100% reusable, and mutating any perturbation field dirties
exactly the cells whose footprint digest changes
(``tests/test_plan_diff.py`` fuzzes both properties).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.envs.registry import ENVIRONMENTS
from repro.parallel.shard import shard_summary_key
from repro.plan.ir import RunPlan
from repro.scenarios.spec import active


@dataclass(frozen=True)
class CellDiff:
    """One variant cell's classification against the baseline plan."""

    #: the variant shard's global plan index
    shard_index: int
    #: the variant world the cell belongs to
    world: int
    env_id: str
    scale: int
    #: the cell's cloud — the coordinate ``touches`` predicates test
    cloud: str
    #: the variant world's scenario label (``None`` = baseline world)
    scenario_id: str | None
    #: must this cell re-simulate?
    dirty: bool
    #: overlay hooks the scenario activates *on this cell's cloud*
    #: (empty for reusable cells)
    hooks: tuple[str, ...]
    #: one human-readable line justifying the classification
    reason: str
    #: the matching baseline shard's index, ``None`` when unmatched
    baseline_index: int | None


@dataclass(frozen=True)
class PlanDiff:
    """Every variant cell classified; the incremental executor's input."""

    baseline_digest: str
    variant_digest: str
    cells: tuple[CellDiff, ...]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def reusable(self) -> tuple[CellDiff, ...]:
        return tuple(c for c in self.cells if not c.dirty)

    @property
    def dirty(self) -> tuple[CellDiff, ...]:
        return tuple(c for c in self.cells if c.dirty)

    @property
    def n_reusable(self) -> int:
        return sum(1 for c in self.cells if not c.dirty)

    @property
    def n_dirty(self) -> int:
        return sum(1 for c in self.cells if c.dirty)

    def reusable_indices(self) -> frozenset[int]:
        """Variant shard indices the executor may attach from cache."""
        return frozenset(c.shard_index for c in self.cells if not c.dirty)

    def describe(self) -> dict:
        """A JSON-safe description (``repro plan diff --json``)."""
        return {
            "baseline_digest": self.baseline_digest,
            "variant_digest": self.variant_digest,
            "totals": {
                "cells": self.n_cells,
                "reusable": self.n_reusable,
                "dirty": self.n_dirty,
            },
            "cells": [
                {
                    "index": c.shard_index,
                    "world": c.world,
                    "scenario": c.scenario_id,
                    "env": c.env_id,
                    "scale": c.scale,
                    "cloud": c.cloud,
                    "dirty": c.dirty,
                    "hooks": list(c.hooks),
                    "reason": c.reason,
                    "baseline_index": c.baseline_index,
                }
                for c in self.cells
            ],
        }

    def render(self) -> str:
        """The diff as fixed-width text (``repro plan diff``)."""
        lines = [
            f"plan diff: {self.baseline_digest} -> {self.variant_digest}",
            f"cells: {self.n_cells}  reusable: {self.n_reusable}  "
            f"dirty: {self.n_dirty}",
            "",
        ]
        for c in self.cells:
            mark = "dirty   " if c.dirty else "reusable"
            label = c.scenario_id or "baseline"
            lines.append(
                f"  [{mark}] world {c.world:>3} ({label}) "
                f"{c.env_id} @ {c.scale}: {c.reason}"
            )
        return "\n".join(lines)


def diff_plans(baseline: RunPlan, variant: RunPlan) -> PlanDiff:
    """Classify every cell of ``variant`` against ``baseline``.

    The intersection runs on content, not labels: a variant cell is
    reusable exactly when some baseline cell shares its summary key —
    the hash of every :class:`~repro.plan.ir.PlannedRun` coordinate the
    cell groups (seed, env, apps, scale, iterations) plus the per-cell
    overlay footprint.  Matching keys means matching results, so the
    classification can never reuse a cell the scenario touches: a
    touched cell's footprint digest differs from the baseline's, the
    keys diverge, and the cell lands in the dirty set with its active
    hooks named.
    """
    baseline_by_key = {
        shard_summary_key(shard): shard.index for shard in baseline.shards
    }
    cells: list[CellDiff] = []
    for shard in variant.shards:
        cloud = ENVIRONMENTS[shard.env_id].cloud
        scn = active(shard.scenario)
        hooks = scn.touched_hooks(cloud) if scn is not None else ()
        base_index = baseline_by_key.get(shard_summary_key(shard))
        if base_index is not None:
            dirty = False
            reason = "summary key matches baseline cell " + (
                "(identical footprint)" if hooks else "(footprint empty)"
            )
        elif hooks:
            dirty = True
            reason = "scenario touches this cloud via " + ", ".join(hooks)
        else:
            dirty = True
            reason = "no baseline cell with matching coordinates"
        cells.append(
            CellDiff(
                shard_index=shard.index,
                world=shard.world,
                env_id=shard.env_id,
                scale=shard.scale,
                cloud=cloud,
                scenario_id=scn.scenario_id if scn is not None else None,
                dirty=dirty,
                hooks=hooks,
                reason=reason,
                baseline_index=base_index,
            )
        )
    return PlanDiff(
        baseline_digest=baseline.digest(),
        variant_digest=variant.digest(),
        cells=tuple(cells),
    )

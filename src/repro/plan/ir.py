"""The RunPlan intermediate representation.

Every orchestration front-end in this repo — :class:`StudyRunner` (one
campaign), :class:`ScenarioSweep` (N counterfactual worlds), and
:class:`EnsembleRunner` (seed grid × scenario grid) — used to carry its
own planning, seeding, sharding, and merge logic.  The IR collapses
them: each front-end *compiles* its config to one :class:`RunPlan`
(:mod:`repro.plan.compile`) and a single
:class:`~repro.plan.executor.PlanExecutor` runs any plan.

A plan is three nested granularities, all pure values:

* :class:`PlanWorld` — one full campaign at one (scenario, seed)
  coordinate.  A plain study is a one-world plan; an ensemble is
  scenario-major × replicas.
* :class:`~repro.parallel.shard.StudyShard` — one (environment, size)
  cell of one world: the unit that ships to a worker process (§2.9's
  cluster-per-size granularity).
* :class:`PlannedRun` — one (world, seed, env, app, size, iteration)
  coordinate: the explicit cross-product the shards group.  Shard
  execution batches consecutive runs of one (env, app, size) group
  through :meth:`~repro.sim.execution.ExecutionEngine.run_batch`.

Plans are deterministic in their inputs: worlds are ordered by
position, shards world-major in serial campaign order, runs app-major
then iterations ascending — so executing a plan in plan order (any
worker count) reproduces the serial dataset byte for byte, and
:meth:`RunPlan.digest` names the whole intent stably (``repro plan
show`` prints it before anything executes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Iterator

from repro.parallel.shard import StudyShard
from repro.scenarios.spec import Scenario, active


@dataclass(frozen=True)
class PlannedRun:
    """One explicit run coordinate of the compiled cross-product."""

    world: int
    seed: int
    scenario_id: str | None
    env_id: str
    app: str
    scale: int
    iteration: int


@dataclass(frozen=True)
class PlanWorld:
    """One replica-world: a full campaign at one (scenario, seed)."""

    index: int  # position in plan (and fold) order
    scenario: Scenario | None
    seed: int
    replica: int = 0

    @property
    def scenario_id(self) -> str:
        """The world's label; a missing scenario is the baseline world."""
        return self.scenario.scenario_id if self.scenario is not None else "baseline"

    @property
    def is_baseline(self) -> bool:
        scn = active(self.scenario)
        return scn is None


def planned_runs(shard: StudyShard) -> Iterator[PlannedRun]:
    """The explicit run units one shard groups, in execution order."""
    scn = active(shard.scenario)
    scenario_id = scn.scenario_id if scn is not None else None
    for app in shard.apps:
        for iteration in range(shard.iterations):
            yield PlannedRun(
                world=shard.world,
                seed=shard.seed,
                scenario_id=scenario_id,
                env_id=shard.env_id,
                app=app,
                scale=shard.scale,
                iteration=iteration,
            )


@dataclass(frozen=True)
class RunPlan:
    """A compiled execution plan: worlds → shards → runs.

    ``shards`` is world-major (every shard of world 0, then world 1, …)
    with globally unique ascending ``index`` values; each shard's
    ``world`` tag names its :class:`PlanWorld` by that world's
    ``index``.  Subset plans (:meth:`subset`) keep the original world
    indices, so results regroup against the full plan unambiguously.
    """

    worlds: tuple[PlanWorld, ...]
    shards: tuple[StudyShard, ...]
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        known = {world.index for world in self.worlds}
        if len(known) != len(self.worlds):
            raise ValueError("plan worlds must have unique indices")
        stray = [shard for shard in self.shards if shard.world not in known]
        if stray:
            raise ValueError(
                f"shard {stray[0].index} references unknown world {stray[0].world}"
            )

    # -- shape ---------------------------------------------------------------

    @property
    def n_worlds(self) -> int:
        return len(self.worlds)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_runs(self) -> int:
        return sum(len(shard.apps) * shard.iterations for shard in self.shards)

    def runs(self) -> Iterator[PlannedRun]:
        """Every planned run, in plan (== serial execution) order."""
        for shard in self.shards:
            yield from planned_runs(shard)

    def shards_for_world(self, index: int) -> tuple[StudyShard, ...]:
        return tuple(shard for shard in self.shards if shard.world == index)

    def world_shard_counts(self) -> list[tuple[PlanWorld, int]]:
        """(world, shard count) pairs in plan order."""
        counts = {world.index: 0 for world in self.worlds}
        for shard in self.shards:
            counts[shard.world] += 1
        return [(world, counts[world.index]) for world in self.worlds]

    def subset(self, world_indices) -> "RunPlan":
        """The sub-plan containing only the given worlds (indices kept).

        The ensemble runner compiles the full grid once, then executes
        only the worlds whose folded summaries missed the cache.
        """
        wanted = set(world_indices)
        return RunPlan(
            worlds=tuple(w for w in self.worlds if w.index in wanted),
            shards=tuple(s for s in self.shards if s.world in wanted),
            cache_dir=self.cache_dir,
        )

    def split_baseline(self) -> tuple["RunPlan", "RunPlan"]:
        """(baseline worlds' sub-plan, remaining worlds' sub-plan).

        The two-phase incremental schedule: the baseline sub-plan
        executes first (warming the cell cache), then the remainder runs
        with diff-aware reuse against it (:mod:`repro.plan.diff`).  Both
        halves keep their original world indices, so results regroup
        against the full plan unambiguously.
        """
        base = self.subset(w.index for w in self.worlds if w.is_baseline)
        rest = self.subset(w.index for w in self.worlds if not w.is_baseline)
        return base, rest

    # -- composition ---------------------------------------------------------

    @staticmethod
    def concat(*plans: "RunPlan") -> "RunPlan":
        """One plan holding every world of ``plans``, re-indexed.

        World indices (and shard indices / world tags) are resequenced
        so the invariants hold across inputs that each start at 0.  The
        result is only meant as a *diff baseline*
        (:func:`~repro.plan.diff.diff_plans` matches shards by their
        content-addressed summary keys, never by index) — the campaign
        runner concatenates an ensemble's own baseline replicas with the
        smoke-stage plan so the grid stage can attach any cell either
        one already simulated.  Shards whose summary keys collide across
        inputs are harmless: the diff's key map collapses them.
        """
        worlds: list[PlanWorld] = []
        shards: list[StudyShard] = []
        cache_dir = next((p.cache_dir for p in plans if p.cache_dir), None)
        for plan in plans:
            remap = {}
            for world in plan.worlds:
                remap[world.index] = len(worlds)
                worlds.append(dataclasses.replace(world, index=remap[world.index]))
            for shard in plan.shards:
                shards.append(
                    dataclasses.replace(
                        shard, index=len(shards), world=remap[shard.world]
                    )
                )
        return RunPlan(worlds=tuple(worlds), shards=tuple(shards), cache_dir=cache_dir)

    # -- inspection ----------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-safe description of the plan (``repro plan show``)."""
        grouped: dict[int, list[StudyShard]] = {w.index: [] for w in self.worlds}
        for shard in self.shards:
            grouped[shard.world].append(shard)
        worlds = []
        for world in self.worlds:
            shards = grouped[world.index]
            worlds.append(
                {
                    "world": world.index,
                    "scenario": world.scenario_id,
                    "seed": world.seed,
                    "replica": world.replica,
                    "shards": len(shards),
                    "runs": sum(len(s.apps) * s.iterations for s in shards),
                }
            )
        return {
            "worlds": worlds,
            "shards": [
                {
                    "index": shard.index,
                    "world": shard.world,
                    "env": shard.env_id,
                    "scale": shard.scale,
                    "apps": list(shard.apps),
                    "iterations": shard.iterations,
                    "seed": shard.seed,
                    "scenario": (
                        active(shard.scenario).scenario_id
                        if active(shard.scenario) is not None
                        else None
                    ),
                }
                for shard in self.shards
            ],
            "cache_dir": self.cache_dir,
            "totals": {
                "worlds": self.n_worlds,
                "shards": self.n_shards,
                "runs": self.n_runs,
            },
        }

    def digest(self) -> str:
        """Stable content hash of the compiled plan's semantics.

        Scenario payloads participate via their own semantic digests;
        cosmetic world labels and the cache directory do not (neither
        changes what runs — an empty scenario digests like no scenario,
        exactly as it caches).
        """
        data = self.describe()
        data.pop("cache_dir")
        for world, source in zip(data["worlds"], self.worlds):
            scn = active(source.scenario)
            world.pop("scenario")
            world["scenario_digest"] = scn.digest() if scn is not None else None
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

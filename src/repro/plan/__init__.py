"""One execution planner for every orchestration front-end.

``repro.plan`` is the compile→execute→merge pipeline the study, the
scenario sweep, and the ensemble all share:

* :mod:`repro.plan.ir` — the :class:`RunPlan` intermediate
  representation: worlds → shards → explicit :class:`PlannedRun` units;
* :mod:`repro.plan.compile` — compilers from each front-end's config;
* :mod:`repro.plan.executor` — the single :class:`PlanExecutor` that
  runs any plan serially or across the worker pool with byte-identical
  merge order;
* :mod:`repro.plan.diff` — cell-granular plan diffing: classify every
  (env, size) cell of a variant plan as *reusable* (attachable from the
  baseline's cache) or *dirty* (the scenario's overlay hooks touch it),
  powering the executor's incremental mode.

``repro plan show`` prints a compiled plan — worlds, shards, run
counts, digest — before anything executes; ``repro plan diff`` prints
the reusable/dirty classification the incremental mode would act on.
"""

from repro.plan.compile import compile_ensemble, compile_scenarios, compile_study
from repro.plan.diff import CellDiff, PlanDiff, diff_plans
from repro.plan.executor import PlanExecutor, ReuseStats
from repro.plan.ir import PlannedRun, PlanWorld, RunPlan, planned_runs

__all__ = [
    "CellDiff",
    "PlanDiff",
    "PlanExecutor",
    "PlanWorld",
    "PlannedRun",
    "ReuseStats",
    "RunPlan",
    "compile_ensemble",
    "compile_scenarios",
    "compile_study",
    "diff_plans",
    "planned_runs",
]

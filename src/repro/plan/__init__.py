"""One execution planner for every orchestration front-end.

``repro.plan`` is the compile→execute→merge pipeline the study, the
scenario sweep, and the ensemble all share:

* :mod:`repro.plan.ir` — the :class:`RunPlan` intermediate
  representation: worlds → shards → explicit :class:`PlannedRun` units;
* :mod:`repro.plan.compile` — compilers from each front-end's config;
* :mod:`repro.plan.executor` — the single :class:`PlanExecutor` that
  runs any plan serially or across the worker pool with byte-identical
  merge order.

``repro plan show`` on the CLI prints a compiled plan — worlds, shards,
run counts, digest — before anything executes.
"""

from repro.plan.compile import compile_ensemble, compile_scenarios, compile_study
from repro.plan.executor import PlanExecutor
from repro.plan.ir import PlannedRun, PlanWorld, RunPlan, planned_runs

__all__ = [
    "PlanExecutor",
    "PlanWorld",
    "PlannedRun",
    "RunPlan",
    "compile_ensemble",
    "compile_scenarios",
    "compile_study",
    "planned_runs",
]

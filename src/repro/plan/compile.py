"""Compilers: front-end configs → one :class:`~repro.plan.ir.RunPlan`.

Three front-ends, one IR:

* :func:`compile_study` — a single campaign (one world);
* :func:`compile_scenarios` — a what-if sweep (one world per scenario,
  all at the campaign's seed);
* :func:`compile_ensemble` — a Monte-Carlo replication (scenario-major
  × replicas ascending, replica ``r`` at seed ``base_seed + r``).

All three delegate cell planning to the one shared
:func:`~repro.parallel.shard.plan_shards` (environments in config
order, sizes in environment order — the serial campaign order) and then
re-index the shards world-major so every shard's ``index`` is its
global position in the plan.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.parallel.shard import StudyShard, plan_shards
from repro.plan.ir import PlanWorld, RunPlan
from repro.scenarios.presets import scenario_grid
from repro.scenarios.spec import Scenario


def _world_shards(
    config, world: PlanWorld, cache_dir: str | None, start_index: int
) -> list[StudyShard]:
    """One world's cells, re-indexed to their global plan positions."""
    shards = plan_shards(
        config, cache_dir=cache_dir, scenario=world.scenario, world=world.index
    )
    return [
        dataclasses.replace(shard, index=start_index + offset)
        for offset, shard in enumerate(shards)
    ]


def compile_study(
    config,
    *,
    cache_dir: str | None = None,
    scenario: Scenario | None = None,
) -> RunPlan:
    """Compile one :class:`~repro.core.study.StudyConfig` campaign."""
    world = PlanWorld(index=0, scenario=scenario, seed=config.seed)
    return RunPlan(
        worlds=(world,),
        shards=tuple(_world_shards(config, world, cache_dir, start_index=0)),
        cache_dir=cache_dir,
    )


def compile_scenarios(
    config,
    scenarios: Iterable[Scenario],
    *,
    cache_dir: str | None = None,
    include_baseline: bool = True,
) -> RunPlan:
    """Compile a what-if sweep: one world per scenario, same seed.

    ``scenarios`` passes through :func:`~repro.scenarios.presets.scenario_grid`
    — unique ids enforced, the label ``"baseline"`` reserved, and the
    baseline world injected first unless ``include_baseline`` is off.
    """
    worlds = tuple(
        PlanWorld(index=i, scenario=scn, seed=config.seed)
        for i, scn in enumerate(
            scenario_grid(list(scenarios), include_baseline=include_baseline)
        )
    )
    shards: list[StudyShard] = []
    for world in worlds:
        shards.extend(_world_shards(config, world, cache_dir, start_index=len(shards)))
    return RunPlan(worlds=worlds, shards=tuple(shards), cache_dir=cache_dir)


def compile_ensemble(spec, *, cache_dir: str | None = None) -> RunPlan:
    """Compile an :class:`~repro.ensemble.spec.EnsembleSpec` grid.

    World order is the spec's fold order — scenario-major, replicas
    ascending — so world 0 is always (baseline, replica 0): the seed
    study that anchors the exceedance thresholds.
    """
    worlds = tuple(
        PlanWorld(
            index=i,
            scenario=scn,
            seed=spec.replica_seed(replica),
            replica=replica,
        )
        for i, (scn, replica) in enumerate(spec.worlds())
    )
    shards: list[StudyShard] = []
    for world in worlds:
        shards.extend(
            _world_shards(
                spec.study_config(world.replica), world, cache_dir, start_index=len(shards)
            )
        )
    return RunPlan(worlds=worlds, shards=tuple(shards), cache_dir=cache_dir)

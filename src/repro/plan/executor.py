"""The one executor every front-end shares.

A :class:`PlanExecutor` runs any :class:`~repro.plan.ir.RunPlan` —
serially for ``workers=1``, through the :mod:`repro.parallel` process
pool otherwise — and hands results back **in plan order** regardless of
worker count or completion order.  That single ordering guarantee is
what makes every front-end's output byte-identical across worker
counts: the shards are pure functions, the pool preserves submission
order, and the merge folds per world in shard-plan order.

Shard batches stream through
:func:`~repro.parallel.pool.pmap_chunked`, so peak memory is bounded by
one chunk of shard results (plus the world currently being folded) —
an ensemble of hundreds of worlds never holds more than a window of
records at a time.

**Incremental mode** (``incremental=True``) adds diff-aware reuse: the
plan is diffed against a baseline plan (:func:`repro.plan.diff.diff_plans`)
and every cell the diff proves untouched is *attached* — its folded
summary loaded straight from the cell-level cache the baseline run
wrote — while only the dirty cells (and any reusable cells whose cache
entries are cold or malformed) dispatch to shards.  Results are still
yielded in plan order and are byte-identical to a from-scratch run:
attachment only ever substitutes a cached result stored under the same
content-addressed key the cell would recompute.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.incidents import Incident
from repro.errors import ConfigurationError
from repro.parallel.merge import MergedStudy, merge_shard_results
from repro.parallel.pool import FaultStats, RetryPolicy, pmap_chunked
from repro.parallel.shard import (
    ShardResult,
    StudyShard,
    attach_shard,
    execute_shard,
    shard_summary_key,
)
from repro.plan.ir import PlanWorld, RunPlan
from repro.plan.journal import ExecutionJournal
from repro.sim.cache import RunCache
from repro.telemetry import count as telemetry_count
from repro.telemetry import current_tracer, enabled, span


@dataclass
class ReuseStats:
    """What incremental execution reused, executed, and rejected."""

    #: cells the diff classified reusable / dirty
    planned_reusable: int = 0
    planned_dirty: int = 0
    #: cells actually attached from the cell-level cache
    attached: int = 0
    #: cells dispatched to shard execution (dirty + cold/invalid reuse)
    executed: int = 0
    #: malformed cell-summary entries met on the reuse path — each one
    #: flowed through :meth:`~repro.sim.cache.RunCache.note_invalid`
    #: and re-executed; surfaced so degradation is never silent
    invalid: int = 0

    def add(self, other: "ReuseStats") -> None:
        self.planned_reusable += other.planned_reusable
        self.planned_dirty += other.planned_dirty
        self.attached += other.attached
        self.executed += other.executed
        self.invalid += other.invalid

    def to_dict(self) -> dict[str, int]:
        return {
            "planned_reusable": self.planned_reusable,
            "planned_dirty": self.planned_dirty,
            "attached": self.attached,
            "executed": self.executed,
            "invalid": self.invalid,
        }


class PlanExecutor:
    """Executes a compiled :class:`RunPlan`, streaming worlds in order."""

    def __init__(
        self,
        plan: RunPlan,
        *,
        workers: int = 1,
        incremental: bool = False,
        baseline: RunPlan | None = None,
        transport: str = "auto",
        retry: RetryPolicy | None = None,
        chaos: object | None = None,
        resume: bool = False,
    ):
        if incremental and plan.cache_dir is None:
            raise ConfigurationError(
                "incremental execution needs a cache directory: reusable "
                "cells attach from the cell-level cache the baseline run "
                "wrote (compile the plan with cache_dir=...)"
            )
        if resume and plan.cache_dir is None:
            raise ConfigurationError(
                "resume needs a cache directory: completed cells re-attach "
                "through the journal and cell-level cache the interrupted "
                "run wrote (compile the plan with cache_dir=...)"
            )
        if transport not in ("auto", "shm", "pickle"):
            raise ConfigurationError(
                f"unknown transport {transport!r}: choose 'auto', 'shm', "
                "or 'pickle'"
            )
        self.plan = plan
        self.workers = workers
        #: how shard stores cross back from workers: ``"shm"`` packs
        #: columns into shared-memory blocks, ``"pickle"`` ships them
        #: through the pool pipe, ``"auto"`` probes and prefers shm.
        #: Results are byte-identical either way.
        self.transport = transport
        self.incremental = incremental
        #: the plan reusable cells are diffed against; defaults to the
        #: plan's own baseline worlds (:meth:`RunPlan.split_baseline`)
        self.baseline = baseline
        #: the computed diff (populated when incremental iteration starts)
        self.diff = None
        #: reuse accounting (all zeros for non-incremental runs)
        self.reuse = ReuseStats()
        #: retry ladder for the pool (defaults are production-sane)
        self.retry = retry if retry is not None else RetryPolicy()
        #: fault-injection plan stamped onto every dispatched shard
        #: (:class:`repro.chaos.FaultPlan`); ``None`` = no chaos
        self.chaos = chaos
        #: re-attach cells the journal proves complete instead of
        #: executing them (:mod:`repro.plan.journal`)
        self.resume = resume
        #: recovery accounting: retries, requeues, rebuilds, resumed
        #: cells — all zeros for a clean run
        self.faults = FaultStats()

    def _chunk_size(self) -> int:
        # A chunk spans several small worlds (or part of one large one);
        # only one chunk of shard results is ever alive at a time.
        counts = self.plan.world_shard_counts()
        first = counts[0][1] if counts else 0
        return max(first, max(1, self.workers) * 4, 1)

    def _transport_mode(self) -> str:
        """The transport shards actually dispatch with.

        ``auto`` resolves to shared memory when the pool will really
        cross process boundaries and the platform supports it; inline
        execution (``workers<=1``) never pays the packing cost.
        """
        if self.workers <= 1:
            return "pickle"
        if self.transport == "auto":
            from repro.parallel.transport import shm_available

            return "shm" if shm_available() else "pickle"
        return self.transport

    def _dispatchable(self, shards: Sequence[StudyShard]) -> tuple[StudyShard, ...]:
        """Shards as dispatched: trace- and transport-marked.

        The flags only tell :func:`~repro.parallel.shard.execute_shard`
        to record spans (``trace``) and how to ship the result store
        back (``transport``) — cache keys hash explicit shard fields,
        so any marking keys (and computes) identically.
        """
        traced = enabled()
        mode = self._transport_mode()
        if not traced and mode == "pickle" and self.chaos is None:
            return tuple(shards)
        return tuple(
            dataclasses.replace(
                s,
                trace=traced or s.trace,
                transport=mode,
                chaos=self.chaos if self.chaos is not None else s.chaos,
            )
            for s in shards
        )

    def _absorb_traces(self, results: list[ShardResult]) -> None:
        """Move worker span snapshots off the results into the tracer.

        The snapshot is enriched with the pool's tags (dispatch ordinal,
        measured worker wall seconds) and then dropped from the result,
        so downstream merging sees exactly what an untraced run carries.
        """
        tracer = current_tracer()
        for r in results:
            if r.trace is None:
                continue
            if tracer is not None:
                snapshot = r.trace
                if r.dispatch_ordinal >= 0:
                    snapshot["dispatch_ordinal"] = r.dispatch_ordinal
                if r.worker_seconds:
                    snapshot["worker_seconds"] = r.worker_seconds
                tracer.absorb(snapshot)
            r.trace = None

    def _journal(self) -> ExecutionJournal | None:
        """The checkpoint journal, when there is a cache to anchor it.

        Journaling is unconditional with a cache directory: it is what
        makes *this* run resumable if it dies, not a resume-mode-only
        artifact.  Without a cache there is nothing to re-attach
        through, so there is nothing worth journaling.
        """
        if self.plan.cache_dir is None:
            return None
        return ExecutionJournal(self.plan.cache_dir)

    def _resume_attached(
        self, journal: ExecutionJournal | None
    ) -> dict[int, ShardResult]:
        """Cells the journal proves complete, re-attached from the cache.

        A journaled key whose cache entry went cold or malformed simply
        stays on the execute list — resume degrades to re-execution,
        never to a hole in the tables.
        """
        if not self.resume or journal is None:
            return {}
        done_keys = journal.completed()
        if not done_keys:
            return {}
        cache = RunCache(self.plan.cache_dir)
        attached: dict[int, ShardResult] = {}
        with span("plan.attach", journaled=len(done_keys), resume=True):
            for shard in self.plan.shards:
                if shard_summary_key(shard) not in done_keys:
                    continue
                result = attach_shard(shard, cache)
                if result is not None:
                    attached[shard.index] = result
        self.faults.resumed += len(attached)
        telemetry_count("fault.resumed", len(attached))
        return attached

    def _journaled_results(
        self, to_run: Sequence[StudyShard], journal: ExecutionJournal | None
    ) -> Iterator[ShardResult]:
        """Execute ``to_run`` through the pool, journaling as drained.

        Each completed cell is journaled the moment its result is
        *retrieved* (the pool's per-delivery hook) — before the chunk
        it belongs to is yielded, before the caller folds it — so a
        crash mid-chunk or mid-world still banks every drained cell
        for ``--resume``.  Deliveries arrive strictly in ``to_run``
        order, so pairing them with the shard list by position is
        sound.
        """
        keys = iter(to_run)

        def bank(_result) -> None:
            if journal is not None:
                journal.record(shard_summary_key(next(keys)))

        batches = pmap_chunked(
            execute_shard,
            self._dispatchable(to_run),
            workers=self.workers,
            chunk_size=self._chunk_size(),
            policy=self.retry,
            stats=self.faults,
            on_result=bank,
        )
        for batch in batches:
            yield from batch

    def iter_world_results(self) -> Iterator[tuple[PlanWorld, list[ShardResult]]]:
        """Yield (world, its shard results) in plan order.

        Shards execute across the worker pool in plan order; results are
        regrouped by each world's shard count, so a world is yielded the
        moment its last cell returns — no barrier across worlds.  In
        incremental mode reusable cells attach from the cache instead of
        executing; with ``resume`` journaled cells attach the same way;
        the yielded groups are indistinguishable.
        """
        if self.incremental:
            yield from self._iter_incremental()
            return
        with span(
            "plan.run", shards=len(self.plan.shards), workers=self.workers
        ):
            journal = self._journal()
            try:
                attached = self._resume_attached(journal)
                to_run = [
                    s for s in self.plan.shards if s.index not in attached
                ]
                results = self._journaled_results(to_run, journal)
                shards = iter(self.plan.shards)
                for world, n_shards in self.plan.world_shard_counts():
                    # The world span stays open across the yield, so the
                    # caller's fold of this world is attributed to it.
                    with span("plan.world", world=world.index, shards=n_shards):
                        world_results = []
                        for _ in range(n_shards):
                            shard = next(shards)
                            result = attached.pop(shard.index, None)
                            world_results.append(
                                result if result is not None else next(results)
                            )
                        assert all(r.world == world.index for r in world_results)
                        self._absorb_traces(world_results)
                        yield world, world_results
            finally:
                if journal is not None:
                    journal.close()

    def _iter_incremental(self) -> Iterator[tuple[PlanWorld, list[ShardResult]]]:
        """The diff-aware path: attach reusable cells, dispatch the rest.

        Attachment probes happen up front (the pool needs its work list
        before submission), so the attached-result map peaks at the
        whole reusable set; each entry is a *folded* cell summary — tiny
        next to the simulation it replaces — and is popped as its world
        yields.  A reusable cell whose cache entry is cold or malformed
        silently joins the dispatch list; malformed entries additionally
        flow through :meth:`RunCache.note_invalid` and count in
        :attr:`reuse.invalid <ReuseStats.invalid>`.
        """
        from repro.plan.diff import diff_plans

        with span(
            "plan.run",
            shards=len(self.plan.shards),
            workers=self.workers,
            incremental=True,
        ):
            baseline = self.baseline
            if baseline is None:
                baseline, _ = self.plan.split_baseline()
            with span("plan.diff"):
                self.diff = diff_plans(baseline, self.plan)
            reusable = self.diff.reusable_indices()
            cache = RunCache(self.plan.cache_dir)
            journal = self._journal()
            resume_keys: set[str] = set()
            if self.resume and journal is not None:
                resume_keys = journal.completed()
            attached: dict[int, ShardResult] = {}
            resumed = 0
            to_run = []
            try:
                with span("plan.attach", reusable=len(reusable)):
                    for shard in self.plan.shards:
                        journaled = (
                            bool(resume_keys)
                            and shard_summary_key(shard) in resume_keys
                        )
                        if shard.index in reusable or journaled:
                            before = cache.invalid
                            result = attach_shard(shard, cache)
                            self.reuse.invalid += cache.invalid - before
                            if result is not None:
                                attached[shard.index] = result
                                if journaled and shard.index not in reusable:
                                    resumed += 1
                                continue
                        to_run.append(shard)
                if resumed:
                    self.faults.resumed += resumed
                    telemetry_count("fault.resumed", resumed)
                self.reuse.planned_reusable = self.diff.n_reusable
                self.reuse.planned_dirty = self.diff.n_dirty
                self.reuse.attached = len(attached)
                self.reuse.executed = len(to_run)
                for name, value in self.reuse.to_dict().items():
                    telemetry_count(f"plan.reuse.{name}", value)
                results = self._journaled_results(to_run, journal)
                shards = iter(self.plan.shards)
                for world, n_shards in self.plan.world_shard_counts():
                    with span("plan.world", world=world.index, shards=n_shards):
                        world_results = []
                        for _ in range(n_shards):
                            shard = next(shards)
                            result = attached.pop(shard.index, None)
                            world_results.append(
                                result if result is not None else next(results)
                            )
                        assert all(r.world == world.index for r in world_results)
                        self._absorb_traces(world_results)
                        yield world, world_results
            finally:
                if journal is not None:
                    journal.close()

    def merged_worlds(
        self,
        *,
        seed_incidents: dict[str, list[Incident]] | None = None,
    ) -> Iterator[tuple[PlanWorld, MergedStudy]]:
        """Yield (world, deterministically merged campaign) in plan order.

        ``seed_incidents`` seeds every world's incident log with a fresh
        copy (container-build incidents precede fault incidents per
        environment, exactly as in the serial campaign).
        """
        for world, results in self.iter_world_results():
            incidents = {
                env: list(incs) for env, incs in (seed_incidents or {}).items()
            }
            with span("plan.merge", world=world.index, shards=len(results)):
                merged = merge_shard_results(results, incidents=incidents)
            yield world, merged

    def run(
        self,
        *,
        seed_incidents: dict[str, list[Incident]] | None = None,
    ) -> list[tuple[PlanWorld, MergedStudy]]:
        """Execute the whole plan; every world merged, in plan order."""
        return list(self.merged_worlds(seed_incidents=seed_incidents))

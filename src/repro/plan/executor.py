"""The one executor every front-end shares.

A :class:`PlanExecutor` runs any :class:`~repro.plan.ir.RunPlan` —
serially for ``workers=1``, through the :mod:`repro.parallel` process
pool otherwise — and hands results back **in plan order** regardless of
worker count or completion order.  That single ordering guarantee is
what makes every front-end's output byte-identical across worker
counts: the shards are pure functions, the pool preserves submission
order, and the merge folds per world in shard-plan order.

Shard batches stream through
:func:`~repro.parallel.pool.pmap_chunked`, so peak memory is bounded by
one chunk of shard results (plus the world currently being folded) —
an ensemble of hundreds of worlds never holds more than a window of
records at a time.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.incidents import Incident
from repro.parallel.merge import MergedStudy, merge_shard_results
from repro.parallel.pool import pmap_chunked
from repro.parallel.shard import ShardResult, execute_shard
from repro.plan.ir import PlanWorld, RunPlan


class PlanExecutor:
    """Executes a compiled :class:`RunPlan`, streaming worlds in order."""

    def __init__(self, plan: RunPlan, *, workers: int = 1):
        self.plan = plan
        self.workers = workers

    def _chunk_size(self) -> int:
        # A chunk spans several small worlds (or part of one large one);
        # only one chunk of shard results is ever alive at a time.
        counts = self.plan.world_shard_counts()
        first = counts[0][1] if counts else 0
        return max(first, max(1, self.workers) * 4, 1)

    def iter_world_results(self) -> Iterator[tuple[PlanWorld, list[ShardResult]]]:
        """Yield (world, its shard results) in plan order.

        Shards execute across the worker pool in plan order; results are
        regrouped by each world's shard count, so a world is yielded the
        moment its last cell returns — no barrier across worlds.
        """
        results = (
            shard_result
            for batch in pmap_chunked(
                execute_shard,
                self.plan.shards,
                workers=self.workers,
                chunk_size=self._chunk_size(),
            )
            for shard_result in batch
        )
        for world, n_shards in self.plan.world_shard_counts():
            world_results = [next(results) for _ in range(n_shards)]
            assert all(r.world == world.index for r in world_results)
            yield world, world_results

    def merged_worlds(
        self,
        *,
        seed_incidents: dict[str, list[Incident]] | None = None,
    ) -> Iterator[tuple[PlanWorld, MergedStudy]]:
        """Yield (world, deterministically merged campaign) in plan order.

        ``seed_incidents`` seeds every world's incident log with a fresh
        copy (container-build incidents precede fault incidents per
        environment, exactly as in the serial campaign).
        """
        for world, results in self.iter_world_results():
            incidents = {
                env: list(incs) for env, incs in (seed_incidents or {}).items()
            }
            yield world, merge_shard_results(results, incidents=incidents)

    def run(
        self,
        *,
        seed_incidents: dict[str, list[Incident]] | None = None,
    ) -> list[tuple[PlanWorld, MergedStudy]]:
        """Execute the whole plan; every world merged, in plan order."""
        return list(self.merged_worlds(seed_incidents=seed_incidents))

"""Checkpoint journal: which cells an interrupted run already finished.

The journal is the small piece that turns the caches into a resume
mechanism.  Cell summaries already live in the content-addressed cache
(:func:`~repro.parallel.shard.shard_summary_key`), but a cold probe of
every key costs a decode per cell and — worse — cannot distinguish "this
run finished that cell" from "some other campaign happened to share it".
The journal records exactly the former: one JSON line per *completed*
shard, appended and flushed as each result is drained, so a run killed
mid-world still knows every cell it banked.

Keys are content-addressed summary keys, **not** plan digests: an
interrupted ensemble resumes through differently-shaped sub-plans
(worlds regrouped, batches re-cut) whose digests would never match, but
a cell's summary key is the same bytes in any of them.

Format — ``journal.jsonl`` next to the cache::

    {"key": "<shard summary key>"}
    {"key": "..."}

Tolerant on read: a torn final line (the crash was mid-append) or alien
garbage is skipped, never fatal — the worst case is re-executing a cell
whose record was lost, which is exactly what the caches make cheap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class ExecutionJournal:
    """Append-only record of completed shard summary keys."""

    FILENAME = "journal.jsonl"

    def __init__(self, cache_dir: str | os.PathLike):
        self.path = Path(cache_dir) / self.FILENAME
        self._fh = None

    def completed(self) -> set[str]:
        """Every key journaled by prior (possibly interrupted) runs."""
        keys: set[str] = set()
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        # A torn append from the interrupted run: skip.
                        continue
                    key = entry.get("key") if isinstance(entry, dict) else None
                    if isinstance(key, str) and key:
                        keys.add(key)
        except OSError:
            return set()
        return keys

    def record(self, key: str) -> None:
        """Journal one completed cell — durable before the next drain."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps({"key": key}, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ExecutionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

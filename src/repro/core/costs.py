"""Cost analysis: Table 4 (AMG2023 total cost) and study spend (§3.4).

Table 4 sums, per environment, the cost of all AMG2023 iterations
across sizes (nodes × instance cost × execution time).  The paper's
headline observation — *GPU runs were significantly cheaper despite the
more expensive instance type* — emerges because weak-scaled AMG
finishes each GPU run far faster than the CPU equivalent.

Study spend aggregates every run plus provisioning overheads and
compares against the $49k/cloud budget, reproducing §3.4's totals
(Azure $31,056 / AWS $31,565 / Google $26,482 in the paper; our
simulated study lands in the same under-budget regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ResultStore
from repro.envs.registry import ENVIRONMENTS


@dataclass(frozen=True)
class CostRow:
    """One Table 4 row."""

    env_id: str
    display_name: str
    accelerator: str
    cost_per_hour: float
    total_cost: float


def amg_cost_table(store: ResultStore) -> list[CostRow]:
    """Table 4: AMG2023 total cost by environment, cheapest first.

    Totals sum across iterations and sizes, accounting for node count
    and instance cost — the paper's definition.
    """
    rows: list[CostRow] = []
    for env_id in store.environments():
        env = ENVIRONMENTS.get(env_id)
        if env is None:
            continue
        runs = store.query(env_id=env_id, app="amg2023")
        # Table 4 accounts for *execution time*, cluster size, and
        # instance cost (§3.4) — hookup/idle time is not part of the
        # per-app total, so strip its share of the metered cost.
        total = 0.0
        for r in runs:
            if r.total_seconds > 0:
                total += r.cost_usd * (r.wall_seconds / r.total_seconds)
        if total == 0.0 and env.cloud == "p":
            continue  # on-prem has no billing
        if not runs:
            continue
        rows.append(
            CostRow(
                env_id=env_id,
                display_name=env.display_name,
                accelerator=env.accelerator.upper(),
                cost_per_hour=env.instance().cost_per_hour,
                total_cost=total,
            )
        )
    rows.sort(key=lambda r: r.total_cost)
    return rows


def study_spend(store: ResultStore, *, overhead_factor: float = 1.35) -> dict[str, float]:
    """Per-cloud study spend estimate.

    ``overhead_factor`` accounts for cluster idle time between jobs,
    provisioning retries, and testing (the paper's bills include far
    more than FOM-producing runs).
    """
    totals: dict[str, float] = {}
    for r in store.records:
        env = ENVIRONMENTS.get(r.env_id)
        if env is None or env.cloud == "p":
            continue
        totals[env.cloud] = totals.get(env.cloud, 0.0) + r.cost_usd * overhead_factor
    return totals


def cheapest_accelerator(rows: list[CostRow]) -> str:
    """Which accelerator class produced the cheaper AMG runs overall."""
    by_acc: dict[str, list[float]] = {}
    for row in rows:
        by_acc.setdefault(row.accelerator, []).append(row.total_cost)
    means = {acc: sum(v) / len(v) for acc, v in by_acc.items() if v}
    return min(means, key=means.get) if means else ""

"""Usability scoring: the effort rubric behind Table 3.

§2.5 defines the rubric: *low* means the documented procedure worked
with minimal configuration; *medium* means unexpected issues needing
debugging or development; *high* means significant development effort.
We make the rubric computable by scoring accumulated effort minutes per
category:

* ``low``    — under 30 minutes of unexpected work;
* ``medium`` — up to four hours (debugging/development sessions);
* ``high``   — beyond four hours (multi-day or multi-person efforts).

:func:`assess_environment` folds the curated incident database (plus
any study-time incidents) into an :class:`UsabilityAssessment`;
:func:`usability_table` renders the full Table 3 grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.incidents import (
    ACCOUNT_DIFFICULTY,
    CATEGORIES,
    Incident,
    incidents_for,
)
from repro.envs.environment import Environment
from repro.envs.registry import ENVIRONMENTS

LOW_THRESHOLD_MIN = 30.0
MEDIUM_THRESHOLD_MIN = 240.0


class EffortLevel(enum.Enum):
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def from_minutes(cls, minutes: float) -> "EffortLevel":
        if minutes < 0:
            raise ValueError("effort cannot be negative")
        if minutes <= LOW_THRESHOLD_MIN:
            return cls.LOW
        if minutes <= MEDIUM_THRESHOLD_MIN:
            return cls.MEDIUM
        return cls.HIGH


@dataclass
class UsabilityAssessment:
    """Effort levels for one environment across the four categories."""

    env_id: str
    display_name: str
    accelerator: str
    levels: dict[str, EffortLevel]
    minutes: dict[str, float]
    incidents: list[Incident] = field(default_factory=list)
    account_difficulty: str = "low"

    @property
    def total_minutes(self) -> float:
        return sum(self.minutes.values())

    def as_row(self) -> tuple[str, ...]:
        """(display name, accelerator, setup, development, app setup,
        manual intervention) — Table 3's column order."""
        return (
            self.display_name,
            self.accelerator.upper(),
            self.levels["setup"].value,
            self.levels["development"].value,
            self.levels["app_setup"].value,
            self.levels["manual_intervention"].value,
        )


def assess_environment(
    env: Environment, extra_incidents: list[Incident] | None = None
) -> UsabilityAssessment:
    """Score one environment from curated + study-time incidents."""
    incidents = incidents_for(env.env_id) + list(extra_incidents or [])
    minutes = {cat: 0.0 for cat in CATEGORIES}
    for inc in incidents:
        minutes[inc.category] += inc.effort_minutes
    levels = {cat: EffortLevel.from_minutes(m) for cat, m in minutes.items()}
    return UsabilityAssessment(
        env_id=env.env_id,
        display_name=env.display_name,
        accelerator=env.accelerator,
        levels=levels,
        minutes=minutes,
        incidents=incidents,
        account_difficulty=ACCOUNT_DIFFICULTY.get((env.cloud, env.accelerator), "low"),
    )


#: Table 3 row order from the paper.
TABLE3_ORDER: tuple[str, ...] = (
    "cpu-parallelcluster-aws",
    "cpu-cyclecloud-az",
    "cpu-computeengine-g",
    "gpu-cyclecloud-az",
    "gpu-computeengine-g",
    "cpu-eks-aws",
    "cpu-aks-az",
    "cpu-gke-g",
    "gpu-eks-aws",
    "gpu-aks-az",
    "gpu-gke-g",
    "gpu-onprem-b",
    "cpu-onprem-a",
)


def usability_table(
    extra: dict[str, list[Incident]] | None = None,
) -> list[UsabilityAssessment]:
    """The full Table 3: one assessment per assessable environment.

    ParallelCluster GPU is absent, as in the paper (§3.1 reduced the
    assessment from 12 to 11 cloud environments).
    """
    extra = extra or {}
    rows = []
    for env_id in TABLE3_ORDER:
        env = ENVIRONMENTS[env_id]
        rows.append(assess_environment(env, extra.get(env_id)))
    return rows

"""Core study layer: orchestration, usability scoring, costs, analysis."""

from repro.core.analysis import (
    fom_series,
    mean_fom,
    parallel_efficiency,
    scaling_table,
    speedup,
)
from repro.core.costs import amg_cost_table, study_spend
from repro.core.incidents import INCIDENT_DB, Incident, incidents_for
from repro.core.results import ResultStore
from repro.core.study import StudyConfig, StudyRunner
from repro.core.usability import (
    EffortLevel,
    UsabilityAssessment,
    assess_environment,
    usability_table,
)

__all__ = [
    "EffortLevel",
    "INCIDENT_DB",
    "Incident",
    "ResultStore",
    "StudyConfig",
    "StudyRunner",
    "UsabilityAssessment",
    "amg_cost_table",
    "assess_environment",
    "fom_series",
    "incidents_for",
    "mean_fom",
    "parallel_efficiency",
    "scaling_table",
    "speedup",
    "study_spend",
    "usability_table",
]

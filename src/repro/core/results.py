"""Result store: the study's dataset collection, columnar-native.

The paper reports 25,541 datasets (runs) of which 3,546 appear in the
paper.  :class:`ResultStore` is the in-memory analogue: every
:class:`~repro.sim.run_result.RunRecord` lands here, with query helpers
the experiments use and a CSV exporter for archival (the study pushed
job output to an OCI registry via ORAS; :meth:`to_artifact` produces
the equivalent payload).

Storage is columnar: records append into growing typed NumPy column
buffers (amortized-doubling capacity), plus parallel Python lists for
the string/dict payloads aggregations never touch.  That inverts the
seed design — a list of dataclasses converted to columns at every fold
(the former hot-path cost PR 3 measured) — into columns as the truth:

* :meth:`to_frame` hands :class:`~repro.ensemble.frame.ResultFrame`
  *views* of the buffers — zero copies, so aggregation starts
  immediately;
* CSV/artifact export walks the columns directly;
* legacy callers that want row objects (queries, iteration,
  ``store.records``) get :class:`RunRecord` instances materialized
  lazily and cached — built once, only when actually asked for.
"""

from __future__ import annotations

import csv
import io
import mmap
import os
import tempfile
from bisect import bisect_right
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.sim.run_result import (
    APP_NAME_WIDTH as _APP_WIDTH,
    ENV_ID_WIDTH as _ENV_WIDTH,
    STATE_CODE,
    STATE_ORDER,
    RunRecord,
    RunState,
)


#: environment knob for the out-of-core threshold (megabytes); an env
#: var rather than plumbing because worker processes inherit it for free
SPILL_ENV = "REPRO_SPILL_MB"

#: where spill files land; default honors TMPDIR via tempfile
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: sentinel distinguishing "no limit passed" (read the environment) from
#: an explicit ``None`` ("never spill")
_SPILL_FROM_ENV = object()


def spill_limit_bytes():
    """The process-wide spill threshold in bytes, or ``None`` (in-RAM)."""
    raw = os.environ.get(SPILL_ENV)
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes < 0:
        return None
    return int(megabytes * (1 << 20))


def set_spill_limit_mb(megabytes) -> None:
    """Set (or with ``None`` clear) the spill threshold for this process
    *and every worker it forks or spawns* — the CLI ``--spill-mb`` knob."""
    if megabytes is None:
        os.environ.pop(SPILL_ENV, None)
    else:
        os.environ[SPILL_ENV] = repr(float(megabytes))


class _ColumnBuffer:
    """One growing typed column: amortized-doubling NumPy storage.

    In-RAM (``np.empty``) below the spill threshold; above it the
    backing moves to an *unlinked* temp-file mmap, and fully-written
    pages are periodically synced and dropped from the page cache
    (``MADV_DONTNEED``), so a buffer's resident set stays a bounded
    window regardless of how many records it holds.  ``view()`` is a
    zero-copy slice either way — readers fault spilled pages back in on
    demand, which is exactly the working-set-only memory profile the
    out-of-core store promises.
    """

    __slots__ = ("_arr", "_n", "_spill", "_mmap", "_synced")

    #: release dirty spilled pages once this many bytes accumulate
    _SYNC_CHUNK = 1 << 20

    def __init__(self, dtype, spill_bytes=_SPILL_FROM_ENV):
        self._arr = np.empty(0, dtype=dtype)
        self._n = 0
        self._spill = (
            spill_limit_bytes() if spill_bytes is _SPILL_FROM_ENV else spill_bytes
        )
        self._mmap = None
        self._synced = 0

    def __len__(self) -> int:
        return self._n

    def view(self) -> np.ndarray:
        """The live column as a zero-copy view of the buffer."""
        return self._arr[: self._n]

    def _spill_alloc(self, capacity: int):
        """An ndarray over a fresh unlinked temp-file mapping, or ``None``
        if the filesystem refuses (the fallback rung: stay in RAM)."""
        dtype = self._arr.dtype
        nbytes = max(capacity * dtype.itemsize, mmap.PAGESIZE)
        try:
            fd, path = tempfile.mkstemp(
                prefix="repro-spill-", dir=os.environ.get(SPILL_DIR_ENV)
            )
            try:
                os.unlink(path)
                os.ftruncate(fd, nbytes)
                mapped = mmap.mmap(fd, nbytes)
            finally:
                os.close(fd)
        except OSError:
            return None
        self._mmap = mapped
        self._synced = 0
        return np.frombuffer(mapped, dtype=dtype, count=capacity)

    def _release(self, mapped, start: int, end: int) -> None:
        """Sync then drop the page-aligned byte range from RAM."""
        start = -(-start // mmap.PAGESIZE) * mmap.PAGESIZE
        end = (end // mmap.PAGESIZE) * mmap.PAGESIZE
        if end <= start:
            return
        try:
            mapped.flush(start, end - start)
            mapped.madvise(mmap.MADV_DONTNEED, start, end - start)
        except (OSError, ValueError, AttributeError):
            pass

    def _maybe_sync(self) -> None:
        if self._mmap is None:
            return
        written = self._n * self._arr.dtype.itemsize
        if written - self._synced < self._SYNC_CHUNK:
            return
        self._release(self._mmap, self._synced, written)
        self._synced = (written // mmap.PAGESIZE) * mmap.PAGESIZE

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need > len(self._arr):
            capacity = max(need, 2 * len(self._arr), 16)
            old_arr, old_mmap = self._arr, self._mmap
            grown = None
            if (
                self._spill is not None
                and capacity * self._arr.dtype.itemsize >= self._spill
            ):
                grown = self._spill_alloc(capacity)
            if grown is None:
                self._mmap, self._synced = None, 0
                grown = np.empty(capacity, dtype=old_arr.dtype)
                grown[: self._n] = old_arr[: self._n]
                self._arr = grown
                return
            # Spilled growth: copy in bounded windows, dropping each
            # window's pages (source and destination) as it completes,
            # so the copy itself never faults the whole column resident.
            itemsize = old_arr.dtype.itemsize
            step = max(self._SYNC_CHUNK // itemsize, 1)
            for start in range(0, self._n, step):
                stop = min(self._n, start + step)
                grown[start:stop] = old_arr[start:stop]
                self._release(self._mmap, start * itemsize, stop * itemsize)
                if old_mmap is not None:
                    self._release(old_mmap, start * itemsize, stop * itemsize)
            # The old mapping closes when its last array view is
            # collected — never explicitly, since callers may still hold
            # (now stale-capacity) views from before the growth.
            self._arr = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._arr[self._n] = value
        self._n += 1
        self._maybe_sync()

    def extend(self, values) -> None:
        """Append a list (or ndarray) of values in one vectorized copy."""
        if len(values) == 0:
            return
        chunk = np.asarray(values, dtype=self._arr.dtype)
        self._reserve(len(chunk))
        self._arr[self._n : self._n + len(chunk)] = chunk
        self._n += len(chunk)
        self._maybe_sync()

    def fill(self, n: int, value) -> None:
        """Append ``n`` copies of one value (a broadcast store, no chunk
        allocation — block appends use this for the group-constant
        columns)."""
        if n <= 0:
            return
        self._reserve(n)
        self._arr[self._n : self._n + n] = value
        self._n += n
        self._maybe_sync()

    # -- pickling (shard transport) -----------------------------------------

    def __getstate__(self):
        # Ship exactly the live prefix; a view's pickle already copies
        # only its own elements, and the receiver needs no spare
        # capacity.  (Wrapped in a tuple: pickle skips __setstate__ for
        # falsy states, and a bare ndarray has no stable truthiness.)
        return (self.view(),)

    def __setstate__(self, state):
        (self._arr,) = state
        self._n = len(self._arr)
        self._spill = spill_limit_bytes()
        self._mmap = None
        self._synced = 0

    @classmethod
    def _wrap(cls, arr: np.ndarray) -> "_ColumnBuffer":
        """A buffer over an existing array, zero-copy (shm attach)."""
        buf = cls.__new__(cls)
        buf._arr = arr
        buf._n = len(arr)
        buf._spill = None
        buf._mmap = None
        buf._synced = 0
        return buf


def _has_array_leaf(template: dict) -> bool:
    """Does this payload template carry per-record array leaves?"""
    return any(
        isinstance(v, np.ndarray) or (isinstance(v, dict) and _has_array_leaf(v))
        for v in template.values()
    )


def _materialize_slot(template, i: int):
    """One record's payload out of a column-block template.

    Array leaves hold per-record values (``leaf[i]``); nested dicts
    recurse; anything else is a group-constant shared verbatim.
    """
    return {
        key: (
            value[i].item()
            if isinstance(value, np.ndarray)
            else _materialize_slot(value, i) if isinstance(value, dict) else value
        )
        for key, value in template.items()
    }


def payload_slot(payload, i: int):
    """Record ``i``'s value out of any block payload shape.

    Accepts the three shapes block producers hand around — a
    per-record list, a group-constant value, or a dict template whose
    array leaves hold per-record values — and returns what record ``i``
    of the block carries.
    """
    if isinstance(payload, (list, tuple)):
        return payload[i]
    if isinstance(payload, dict) and _has_array_leaf(payload):
        return _materialize_slot(payload, i)
    return payload


class _PayloadColumn:
    """Per-record Python payloads, stored as lazy segments.

    The typed columns cover everything aggregations touch; what remains
    (fom units, failure kinds, phase and extra dicts) is Python data.
    Row-by-row appends keep a plain list, but block appends store one
    *segment* — a shared constant or a dict template whose array leaves
    carry per-record values — so a 10k-iteration block costs O(1)
    Python objects until someone actually asks for row dicts, and shard
    transport pickles arrays instead of 10k dicts.
    """

    __slots__ = ("_segments", "_starts", "_n")

    #: segment kinds
    _ITEMS, _CONST, _COLS = 0, 1, 2

    def __init__(self):
        self._segments: list[tuple] = []  # (kind, n, payload)
        self._starts: list[int] = []  # cumulative start offset per segment
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _push(self, kind: int, n: int, payload) -> None:
        if n <= 0:
            return
        self._segments.append((kind, n, payload))
        self._starts.append(self._n)
        self._n += n

    def append(self, value) -> None:
        if self._segments and self._segments[-1][0] == self._ITEMS:
            kind, n, items = self._segments[-1]
            items.append(value)
            self._segments[-1] = (kind, n + 1, items)
            self._n += 1
        else:
            self._push(self._ITEMS, 1, [value])

    def extend(self, values) -> None:
        values = list(values)
        if not values:
            return
        if self._segments and self._segments[-1][0] == self._ITEMS:
            kind, n, items = self._segments[-1]
            items.extend(values)
            self._segments[-1] = (kind, n + len(values), items)
            self._n += len(values)
        else:
            self._push(self._ITEMS, len(values), values)

    def append_const(self, n: int, value) -> None:
        """``n`` records sharing one payload (group-constant dicts)."""
        self._push(self._CONST, n, value)

    def append_cols(self, n: int, template: dict) -> None:
        """``n`` records materialized lazily from array-leaf ``template``."""
        self._push(self._COLS, n, template)

    def extend_from(self, other: "_PayloadColumn") -> None:
        """Concatenate another column's segments (store merge)."""
        for kind, n, payload in other._segments:
            # Copy item lists so the source stays independent.
            self._push(kind, n, list(payload) if kind == self._ITEMS else payload)

    def __getitem__(self, i: int):
        if not -self._n <= i < self._n:
            raise IndexError(i)
        if i < 0:
            i += self._n
        seg = bisect_right(self._starts, i) - 1
        kind, _, payload = self._segments[seg]
        offset = i - self._starts[seg]
        if kind == self._ITEMS:
            return payload[offset]
        if kind == self._CONST:
            return payload
        return _materialize_slot(payload, offset)

    def __iter__(self):
        for kind, n, payload in self._segments:
            if kind == self._ITEMS:
                yield from payload
            elif kind == self._CONST:
                for _ in range(n):
                    yield payload
            else:
                for i in range(n):
                    yield _materialize_slot(payload, i)

    def __getstate__(self):
        return (self._segments, self._starts, self._n)

    def __setstate__(self, state):
        self._segments, self._starts, self._n = state


#: (column name, dtype, value extractor) for every typed buffer
_TYPED_COLUMNS: tuple[tuple[str, str, Callable[[RunRecord], Any]], ...] = (
    ("env", f"U{_ENV_WIDTH}", lambda r: r.env_id),
    ("app", f"U{_APP_WIDTH}", lambda r: r.app),
    ("scale", "i8", lambda r: r.scale),
    ("nodes", "i8", lambda r: r.nodes),
    ("iteration", "i8", lambda r: r.iteration),
    ("state", "i1", lambda r: STATE_CODE[r.state]),
    ("fom", "f8", lambda r: np.nan if r.fom is None else r.fom),
    ("wall_seconds", "f8", lambda r: r.wall_seconds),
    ("hookup_seconds", "f8", lambda r: r.hookup_seconds),
    ("cost_usd", "f8", lambda r: r.cost_usd),
)


class ResultStore:
    """Queryable columnar collection of run records."""

    def __init__(
        self,
        records: Iterable[RunRecord] | None = None,
        *,
        spill_bytes=_SPILL_FROM_ENV,
    ):
        self._cols: dict[str, _ColumnBuffer] = {
            name: _ColumnBuffer(dtype, spill_bytes) for name, dtype, _ in _TYPED_COLUMNS
        }
        #: explicit None mask for ``fom`` (NaN is the column encoding)
        self._fom_none = _ColumnBuffer("?", spill_bytes)
        #: incremental (env, app, scale) factorization: first-seen code
        #: per cell plus a per-record label column, so a frame never
        #: re-derives the group-by keys from the string columns
        self._cell_codes: dict[tuple[str, str, int], int] = {}
        self._labels = _ColumnBuffer("i8", spill_bytes)
        #: per-record Python payloads the columns don't carry (segmented
        #: so block appends stay O(1) in Python objects)
        self._fom_units = _PayloadColumn()
        self._failure_kind = _PayloadColumn()
        self._phases = _PayloadColumn()
        self._extra = _PayloadColumn()
        #: lazily materialized row objects (a prefix cache; appends
        #: extend it on the next access, not eagerly)
        self._rows: list[RunRecord] = []
        #: transport marking: ``"shm"`` makes the *next* pickle pack the
        #: numeric columns into shared memory; stats record how the
        #: store actually arrived on the attaching side
        self._transport: str | None = None
        self._transport_stats: dict[str, Any] | None = None
        if records:
            self.extend(records)

    # -- building -----------------------------------------------------------

    @staticmethod
    def _check_widths(env_id: str, app: str) -> None:
        if len(env_id) > _ENV_WIDTH:
            raise ValueError(
                f"env id {env_id!r} exceeds the store's {_ENV_WIDTH}-char column"
            )
        if len(app) > _APP_WIDTH:
            raise ValueError(
                f"app name {app!r} exceeds the store's {_APP_WIDTH}-char column"
            )

    def _label_for(self, env_id: str, app: str, scale: int) -> int:
        codes = self._cell_codes
        key = (env_id, app, scale)
        code = codes.get(key)
        if code is None:
            code = codes[key] = len(codes)
        return code

    def add(self, record: RunRecord) -> None:
        self._check_widths(record.env_id, record.app)
        for name, _, extract in _TYPED_COLUMNS:
            self._cols[name].append(extract(record))
        self._fom_none.append(record.fom is None)
        self._labels.append(self._label_for(record.env_id, record.app, record.scale))
        self._fom_units.append(record.fom_units)
        self._failure_kind.append(record.failure_kind)
        self._phases.append(record.phases)
        self._extra.append(record.extra)

    def extend(self, records: Iterable[RunRecord]) -> None:
        records = list(records)
        if not records:
            return
        for r in records:
            self._check_widths(r.env_id, r.app)
        for name, _, extract in _TYPED_COLUMNS:
            self._cols[name].extend([extract(r) for r in records])
        self._fom_none.extend([r.fom is None for r in records])
        self._labels.extend(
            [self._label_for(r.env_id, r.app, r.scale) for r in records]
        )
        self._fom_units.extend(r.fom_units for r in records)
        self._failure_kind.extend(r.failure_kind for r in records)
        self._phases.extend(r.phases for r in records)
        self._extra.extend(r.extra for r in records)

    def append_block(
        self,
        *,
        env_id: str,
        app: str,
        scale: int,
        nodes: int,
        iteration: np.ndarray,
        state: np.ndarray,
        fom: np.ndarray,
        fom_none: np.ndarray,
        wall_seconds: np.ndarray,
        hookup_seconds: np.ndarray,
        cost_usd: np.ndarray,
        fom_units: str,
        failure_kind,
        phases,
        extra,
    ) -> None:
        """Append one (env, app, size) group's iterations straight into
        the typed buffers — the block path's sink, no per-run
        :class:`RunRecord` objects.

        The group coordinates are scalars; ``iteration``/``state``/the
        float columns are parallel arrays.  ``failure_kind`` is ``None``
        or one string shared by the whole block, or a per-record
        sequence; ``phases``/``extra`` are either one group-constant
        dict, a dict whose :class:`~numpy.ndarray` leaves hold
        per-record values (materialized lazily), or a per-record list.
        Appending a block of N is equivalent to N :meth:`add` calls with
        the records the block describes (``tests/test_results_block.py``
        pins this, empty and single-iteration blocks included).
        """
        n = len(iteration)
        if n == 0:
            return
        self._check_widths(env_id, app)
        cols = self._cols
        cols["env"].fill(n, env_id)
        cols["app"].fill(n, app)
        cols["scale"].fill(n, scale)
        cols["nodes"].fill(n, nodes)
        cols["iteration"].extend(np.asarray(iteration, dtype=np.int64))
        cols["state"].extend(np.asarray(state, dtype=np.int8))
        cols["fom"].extend(np.asarray(fom, dtype=np.float64))
        cols["wall_seconds"].extend(np.asarray(wall_seconds, dtype=np.float64))
        cols["hookup_seconds"].extend(np.asarray(hookup_seconds, dtype=np.float64))
        cols["cost_usd"].extend(np.asarray(cost_usd, dtype=np.float64))
        self._fom_none.extend(np.asarray(fom_none, dtype=bool))
        self._labels.fill(n, self._label_for(env_id, app, scale))
        self._fom_units.append_const(n, fom_units)
        for column, payload in (
            (self._failure_kind, failure_kind),
            (self._phases, phases),
            (self._extra, extra),
        ):
            if isinstance(payload, (list, tuple)):
                column.extend(payload)
            elif isinstance(payload, dict) and _has_array_leaf(payload):
                column.append_cols(n, payload)
            else:
                column.append_const(n, payload)

    def absorb(self, store: "ResultStore") -> None:
        """Concatenate another store's records onto this one, in order.

        Columns concatenate vectorized, payload segments are carried
        over intact, and the source's first-seen cell codes are remapped
        into this store's factorization.
        """
        for name in self._cols:
            self._cols[name].extend(store._cols[name].view())
        self._fom_none.extend(store._fom_none.view())
        if len(store):
            # Remap the source's first-seen cell codes into ours.
            remap = np.empty(len(store._cell_codes), dtype=np.int64)
            for key, code in store._cell_codes.items():
                remap[code] = self._label_for(*key)
            self._labels.extend(remap[store._labels.view()])
        self._fom_units.extend_from(store._fom_units)
        self._failure_kind.extend_from(store._failure_kind)
        self._phases.extend_from(store._phases)
        self._extra.extend_from(store._extra)

    @classmethod
    def merge(cls, stores: "Iterable[ResultStore]") -> "ResultStore":
        """Concatenate several stores (shard-then-merge) in given order.

        Record order is exactly the concatenation order, so merging
        per-shard stores in shard-plan order reproduces the serial
        campaign's dataset byte for byte (see :mod:`repro.parallel`).
        """
        merged = cls()
        for store in stores:
            merged.absorb(store)
        return merged

    # -- pickling (shard transport) -----------------------------------------

    #: columns reconstructed from (cells, labels) on unpickle — the
    #: fixed-width string columns dominate naive transport size and are
    #: fully derivable from the cell factorization
    _DERIVED_COLUMNS = ("env", "app", "scale")

    def _shm_arrays(self) -> dict[str, np.ndarray]:
        """The store's typed column views, keyed for a shm block.

        *Every* typed column ships, derived string columns included:
        unlike the pipe, block bytes cost one local memcpy, and carrying
        the derived columns lets the receiving side skip the gather
        that rebuilds them from the cell labels.  (The Python payload
        columns still ship as O(1) pickled segments.)
        """
        arrays = {f"col:{name}": buf.view() for name, buf in self._cols.items()}
        arrays["fom_none"] = self._fom_none.view()
        arrays["labels"] = self._labels.view()
        return arrays

    def __getstate__(self):
        """Columnar transport: compacted buffers and payload segments.

        Shard results cross the process boundary as this state — a
        handful of arrays plus payload segments — never as a pickled
        list of per-record objects.  The lazily materialized row cache
        never ships, and neither do the env/app/scale columns (rebuilt
        from the cell labels with three vectorized gathers).

        When the store is marked for shm transport (see
        :meth:`mark_transport`) the numeric columns move through one
        shared-memory block instead and only its descriptor is pickled;
        if the block can't be created the state degrades to the plain
        pickle form below — the receiving side handles both.
        """
        state = {
            "cols": {
                name: buf
                for name, buf in self._cols.items()
                if name not in self._DERIVED_COLUMNS
            },
            "fom_none": self._fom_none,
            "cells": sorted(self._cell_codes, key=self._cell_codes.get),
            "labels": self._labels,
            "fom_units": self._fom_units,
            "failure_kind": self._failure_kind,
            "phases": self._phases,
            "extra": self._extra,
        }
        if self._transport == "shm":
            from repro.parallel import transport

            descriptor = transport.pack_columns(self._shm_arrays())
            if descriptor is not None:
                del state["cols"], state["fom_none"], state["labels"]
                state["shm"] = descriptor
                state["col_order"] = list(self._cols)
        return state

    def __setstate__(self, state):
        if "shm" in state:
            from repro.parallel import transport

            views = transport.attach_columns(state["shm"])
            state["cols"] = {
                name: _ColumnBuffer._wrap(views[f"col:{name}"])
                for name in state["col_order"]
            }
            state["fom_none"] = _ColumnBuffer._wrap(views["fom_none"])
            state["labels"] = _ColumnBuffer._wrap(views["labels"])
            self._transport_stats = {
                "mode": "shm",
                "blocks": 1,
                "bytes": state["shm"]["size"],
                "copied_bytes": 0,
            }
        else:
            self._transport_stats = None
        self._transport = None
        self._cols = state["cols"]
        self._fom_none = state["fom_none"]
        cells = state["cells"]
        self._cell_codes = {key: code for code, key in enumerate(cells)}
        self._labels = state["labels"]
        if any(name not in self._cols for name in self._DERIVED_COLUMNS):
            # Plain pickle transport derives env/app/scale from the cell
            # labels (they never ship — see __getstate__); shm transport
            # carries them in the block, so this gather is skipped.
            labels = self._labels.view()
            by_code = {
                "env": np.array([c[0] for c in cells] or [""], dtype=f"U{_ENV_WIDTH}"),
                "app": np.array([c[1] for c in cells] or [""], dtype=f"U{_APP_WIDTH}"),
                "scale": np.array([c[2] for c in cells] or [0], dtype=np.int64),
            }
            for name in self._DERIVED_COLUMNS:
                # The gather materializes a fresh array; wrap it as the
                # column's buffer directly rather than copying it again.
                self._cols[name] = _ColumnBuffer._wrap(by_code[name][labels])
        # Restore the schema's column order.
        self._cols = {name: self._cols[name] for name, _, _ in _TYPED_COLUMNS}
        self._fom_units = state["fom_units"]
        self._failure_kind = state["failure_kind"]
        self._phases = state["phases"]
        self._extra = state["extra"]
        self._rows = []

    def mark_transport(self, mode: str | None) -> None:
        """Choose how this store crosses the next process boundary.

        ``"shm"`` packs the numeric columns into a shared-memory block
        at pickle time (falling back to plain pickle if that fails);
        ``None``/``"pickle"`` is the plain path.  The mark itself never
        ships — an unpickled store is always unmarked.
        """
        self._transport = mode if mode == "shm" else None

    @property
    def transport_stats(self) -> dict[str, Any] | None:
        """How this store arrived, if it crossed a process boundary via
        shared memory (``None`` for pickle transport or local stores)."""
        return getattr(self, "_transport_stats", None)

    def __len__(self) -> int:
        return len(self._fom_units)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    # -- lazy row materialization -------------------------------------------

    @property
    def records(self) -> list[RunRecord]:
        """Row objects for legacy callers, materialized lazily.

        The list is built from the columns on first access and cached;
        appends after that only materialize the new tail.  Treat it as
        read-only — mutate the store through :meth:`add`/:meth:`extend`.
        """
        n = len(self)
        if len(self._rows) < n:
            cols = {name: buf.view() for name, buf in self._cols.items()}
            fom_none = self._fom_none.view()
            for i in range(len(self._rows), n):
                self._rows.append(
                    RunRecord(
                        env_id=str(cols["env"][i]),
                        app=str(cols["app"][i]),
                        scale=int(cols["scale"][i]),
                        nodes=int(cols["nodes"][i]),
                        iteration=int(cols["iteration"][i]),
                        state=STATE_ORDER[cols["state"][i]],
                        fom=None if fom_none[i] else float(cols["fom"][i]),
                        fom_units=self._fom_units[i],
                        wall_seconds=float(cols["wall_seconds"][i]),
                        hookup_seconds=float(cols["hookup_seconds"][i]),
                        cost_usd=float(cols["cost_usd"][i]),
                        phases=self._phases[i],
                        failure_kind=self._failure_kind[i],
                        extra=self._extra[i],
                    )
                )
        return self._rows

    # -- queries ------------------------------------------------------------

    def query(
        self,
        *,
        env_id: str | None = None,
        app: str | None = None,
        scale: int | None = None,
        state: RunState | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
    ) -> list[RunRecord]:
        out = []
        for r in self.records:
            if env_id is not None and r.env_id != env_id:
                continue
            if app is not None and r.app != app:
                continue
            if scale is not None and r.scale != scale:
                continue
            if state is not None and r.state != state:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def completed(self, **kwargs) -> list[RunRecord]:
        return self.query(state=RunState.COMPLETED, **kwargs)

    def foms(self, env_id: str, app: str, scale: int) -> list[float]:
        return [
            r.fom
            for r in self.completed(env_id=env_id, app=app, scale=scale)
            if r.fom is not None
        ]

    def environments(self) -> list[str]:
        return [str(v) for v in np.unique(self._cols["env"].view())]

    def apps(self) -> list[str]:
        return [str(v) for v in np.unique(self._cols["app"].view())]

    def scales(self, env_id: str, app: str) -> list[int]:
        mask = (self._cols["env"].view() == env_id) & (
            self._cols["app"].view() == app
        )
        return [int(v) for v in np.unique(self._cols["scale"].view()[mask])]

    def counts_by_state(self) -> dict[RunState, int]:
        codes, counts = np.unique(self._cols["state"].view(), return_counts=True)
        return {STATE_ORDER[code]: int(count) for code, count in zip(codes, counts)}

    def total_cost(self) -> float:
        return float(np.sum(self._cols["cost_usd"].view())) if len(self) else 0.0

    # -- columnar fast path --------------------------------------------------

    def frame_columns(self) -> dict[str, np.ndarray]:
        """The frame-schema columns as zero-copy views of the buffers."""
        return {name: buf.view() for name, buf in self._cols.items()}

    def cell_index(self) -> tuple[list[tuple[str, str, int]], np.ndarray]:
        """(sorted unique cells, per-record int64 labels), precomputed.

        The factorization is maintained incrementally at append time
        (first-seen codes), so producing the sorted view is one
        vectorized remap — no string sorting at fold time.
        """
        cells = sorted(self._cell_codes)
        remap = np.empty(max(len(cells), 1), dtype=np.int64)
        for sorted_index, key in enumerate(cells):
            remap[self._cell_codes[key]] = sorted_index
        return cells, remap[self._labels.view()]

    def to_frame(self):
        """A columnar :class:`~repro.ensemble.frame.ResultFrame` view.

        Zero-copy: the frame borrows views of this store's buffers (and
        the store's incremental cell factorization), so aggregation
        starts without a conversion pass.  (Appending to the store after
        taking a frame leaves the frame on its snapshot.)
        """
        from repro.ensemble.frame import ResultFrame

        cells, labels = self.cell_index()
        return ResultFrame.from_columns(
            self.frame_columns(), cells=cells, labels=labels
        )

    # -- export -------------------------------------------------------------

    CSV_FIELDS = (
        "env_id",
        "app",
        "scale",
        "nodes",
        "iteration",
        "state",
        "fom",
        "fom_units",
        "wall_seconds",
        "hookup_seconds",
        "cost_usd",
        "failure_kind",
    )

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.CSV_FIELDS)
        cols = {name: b.view() for name, b in self._cols.items()}
        fom_none = self._fom_none.view()
        for i in range(len(self)):
            writer.writerow(
                [
                    str(cols["env"][i]),
                    str(cols["app"][i]),
                    int(cols["scale"][i]),
                    int(cols["nodes"][i]),
                    int(cols["iteration"][i]),
                    STATE_ORDER[cols["state"][i]].value,
                    "" if fom_none[i] else f"{float(cols['fom'][i]):.6g}",
                    self._fom_units[i],
                    f"{float(cols['wall_seconds'][i]):.3f}",
                    f"{float(cols['hookup_seconds'][i]):.3f}",
                    f"{float(cols['cost_usd'][i]):.4f}",
                    self._failure_kind[i] or "",
                ]
            )
        return buf.getvalue()

    def to_artifact(self, name: str = "study-results") -> tuple[str, bytes]:
        """(artifact name, payload) for an ORAS registry push."""
        return f"{name}.csv", self.to_csv().encode("utf-8")

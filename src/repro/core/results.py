"""Result store: the study's dataset collection, columnar-native.

The paper reports 25,541 datasets (runs) of which 3,546 appear in the
paper.  :class:`ResultStore` is the in-memory analogue: every
:class:`~repro.sim.run_result.RunRecord` lands here, with query helpers
the experiments use and a CSV exporter for archival (the study pushed
job output to an OCI registry via ORAS; :meth:`to_artifact` produces
the equivalent payload).

Storage is columnar: records append into growing typed NumPy column
buffers (amortized-doubling capacity), plus parallel Python lists for
the string/dict payloads aggregations never touch.  That inverts the
seed design — a list of dataclasses converted to columns at every fold
(the former hot-path cost PR 3 measured) — into columns as the truth:

* :meth:`to_frame` hands :class:`~repro.ensemble.frame.ResultFrame`
  *views* of the buffers — zero copies, so aggregation starts
  immediately;
* CSV/artifact export walks the columns directly;
* legacy callers that want row objects (queries, iteration,
  ``store.records``) get :class:`RunRecord` instances materialized
  lazily and cached — built once, only when actually asked for.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.sim.run_result import (
    APP_NAME_WIDTH as _APP_WIDTH,
    ENV_ID_WIDTH as _ENV_WIDTH,
    STATE_CODE,
    STATE_ORDER,
    RunRecord,
    RunState,
)


class _ColumnBuffer:
    """One growing typed column: amortized-doubling NumPy storage."""

    __slots__ = ("_arr", "_n")

    def __init__(self, dtype):
        self._arr = np.empty(0, dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def view(self) -> np.ndarray:
        """The live column as a zero-copy view of the buffer."""
        return self._arr[: self._n]

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need > len(self._arr):
            capacity = max(need, 2 * len(self._arr), 16)
            grown = np.empty(capacity, dtype=self._arr.dtype)
            grown[: self._n] = self._arr[: self._n]
            self._arr = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._arr[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        """Append a list (or ndarray) of values in one vectorized copy."""
        if len(values) == 0:
            return
        chunk = np.asarray(values, dtype=self._arr.dtype)
        self._reserve(len(chunk))
        self._arr[self._n : self._n + len(chunk)] = chunk
        self._n += len(chunk)


#: (column name, dtype, value extractor) for every typed buffer
_TYPED_COLUMNS: tuple[tuple[str, str, Callable[[RunRecord], Any]], ...] = (
    ("env", f"U{_ENV_WIDTH}", lambda r: r.env_id),
    ("app", f"U{_APP_WIDTH}", lambda r: r.app),
    ("scale", "i8", lambda r: r.scale),
    ("nodes", "i8", lambda r: r.nodes),
    ("iteration", "i8", lambda r: r.iteration),
    ("state", "i1", lambda r: STATE_CODE[r.state]),
    ("fom", "f8", lambda r: np.nan if r.fom is None else r.fom),
    ("wall_seconds", "f8", lambda r: r.wall_seconds),
    ("hookup_seconds", "f8", lambda r: r.hookup_seconds),
    ("cost_usd", "f8", lambda r: r.cost_usd),
)


class ResultStore:
    """Queryable columnar collection of run records."""

    def __init__(self, records: Iterable[RunRecord] | None = None):
        self._cols: dict[str, _ColumnBuffer] = {
            name: _ColumnBuffer(dtype) for name, dtype, _ in _TYPED_COLUMNS
        }
        #: explicit None mask for ``fom`` (NaN is the column encoding)
        self._fom_none = _ColumnBuffer("?")
        #: incremental (env, app, scale) factorization: first-seen code
        #: per cell plus a per-record label column, so a frame never
        #: re-derives the group-by keys from the string columns
        self._cell_codes: dict[tuple[str, str, int], int] = {}
        self._labels = _ColumnBuffer("i8")
        #: per-record Python payloads the columns don't carry
        self._fom_units: list[str] = []
        self._failure_kind: list[str | None] = []
        self._phases: list[dict] = []
        self._extra: list[dict] = []
        #: lazily materialized row objects (a prefix cache; appends
        #: extend it on the next access, not eagerly)
        self._rows: list[RunRecord] = []
        if records:
            self.extend(records)

    # -- building -----------------------------------------------------------

    @staticmethod
    def _check_widths(env_id: str, app: str) -> None:
        if len(env_id) > _ENV_WIDTH:
            raise ValueError(
                f"env id {env_id!r} exceeds the store's {_ENV_WIDTH}-char column"
            )
        if len(app) > _APP_WIDTH:
            raise ValueError(
                f"app name {app!r} exceeds the store's {_APP_WIDTH}-char column"
            )

    def _label_for(self, env_id: str, app: str, scale: int) -> int:
        codes = self._cell_codes
        key = (env_id, app, scale)
        code = codes.get(key)
        if code is None:
            code = codes[key] = len(codes)
        return code

    def add(self, record: RunRecord) -> None:
        self._check_widths(record.env_id, record.app)
        for name, _, extract in _TYPED_COLUMNS:
            self._cols[name].append(extract(record))
        self._fom_none.append(record.fom is None)
        self._labels.append(self._label_for(record.env_id, record.app, record.scale))
        self._fom_units.append(record.fom_units)
        self._failure_kind.append(record.failure_kind)
        self._phases.append(record.phases)
        self._extra.append(record.extra)

    def extend(self, records: Iterable[RunRecord]) -> None:
        records = list(records)
        if not records:
            return
        for r in records:
            self._check_widths(r.env_id, r.app)
        for name, _, extract in _TYPED_COLUMNS:
            self._cols[name].extend([extract(r) for r in records])
        self._fom_none.extend([r.fom is None for r in records])
        self._labels.extend(
            [self._label_for(r.env_id, r.app, r.scale) for r in records]
        )
        self._fom_units.extend(r.fom_units for r in records)
        self._failure_kind.extend(r.failure_kind for r in records)
        self._phases.extend(r.phases for r in records)
        self._extra.extend(r.extra for r in records)

    @classmethod
    def merge(cls, stores: "Iterable[ResultStore]") -> "ResultStore":
        """Concatenate several stores (shard-then-merge) in given order.

        Record order is exactly the concatenation order, so merging
        per-shard stores in shard-plan order reproduces the serial
        campaign's dataset byte for byte (see :mod:`repro.parallel`).
        """
        merged = cls()
        for store in stores:
            for name in merged._cols:
                merged._cols[name].extend(store._cols[name].view())
            merged._fom_none.extend(store._fom_none.view())
            if len(store):
                # Remap the source's first-seen cell codes into ours.
                remap = np.empty(len(store._cell_codes), dtype=np.int64)
                for key, code in store._cell_codes.items():
                    remap[code] = merged._label_for(*key)
                merged._labels.extend(remap[store._labels.view()])
            merged._fom_units.extend(store._fom_units)
            merged._failure_kind.extend(store._failure_kind)
            merged._phases.extend(store._phases)
            merged._extra.extend(store._extra)
        return merged

    def __len__(self) -> int:
        return len(self._fom_units)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    # -- lazy row materialization -------------------------------------------

    @property
    def records(self) -> list[RunRecord]:
        """Row objects for legacy callers, materialized lazily.

        The list is built from the columns on first access and cached;
        appends after that only materialize the new tail.  Treat it as
        read-only — mutate the store through :meth:`add`/:meth:`extend`.
        """
        n = len(self)
        if len(self._rows) < n:
            cols = {name: buf.view() for name, buf in self._cols.items()}
            fom_none = self._fom_none.view()
            for i in range(len(self._rows), n):
                self._rows.append(
                    RunRecord(
                        env_id=str(cols["env"][i]),
                        app=str(cols["app"][i]),
                        scale=int(cols["scale"][i]),
                        nodes=int(cols["nodes"][i]),
                        iteration=int(cols["iteration"][i]),
                        state=STATE_ORDER[cols["state"][i]],
                        fom=None if fom_none[i] else float(cols["fom"][i]),
                        fom_units=self._fom_units[i],
                        wall_seconds=float(cols["wall_seconds"][i]),
                        hookup_seconds=float(cols["hookup_seconds"][i]),
                        cost_usd=float(cols["cost_usd"][i]),
                        phases=self._phases[i],
                        failure_kind=self._failure_kind[i],
                        extra=self._extra[i],
                    )
                )
        return self._rows

    # -- queries ------------------------------------------------------------

    def query(
        self,
        *,
        env_id: str | None = None,
        app: str | None = None,
        scale: int | None = None,
        state: RunState | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
    ) -> list[RunRecord]:
        out = []
        for r in self.records:
            if env_id is not None and r.env_id != env_id:
                continue
            if app is not None and r.app != app:
                continue
            if scale is not None and r.scale != scale:
                continue
            if state is not None and r.state != state:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def completed(self, **kwargs) -> list[RunRecord]:
        return self.query(state=RunState.COMPLETED, **kwargs)

    def foms(self, env_id: str, app: str, scale: int) -> list[float]:
        return [
            r.fom
            for r in self.completed(env_id=env_id, app=app, scale=scale)
            if r.fom is not None
        ]

    def environments(self) -> list[str]:
        return [str(v) for v in np.unique(self._cols["env"].view())]

    def apps(self) -> list[str]:
        return [str(v) for v in np.unique(self._cols["app"].view())]

    def scales(self, env_id: str, app: str) -> list[int]:
        mask = (self._cols["env"].view() == env_id) & (
            self._cols["app"].view() == app
        )
        return [int(v) for v in np.unique(self._cols["scale"].view()[mask])]

    def counts_by_state(self) -> dict[RunState, int]:
        codes, counts = np.unique(self._cols["state"].view(), return_counts=True)
        return {STATE_ORDER[code]: int(count) for code, count in zip(codes, counts)}

    def total_cost(self) -> float:
        return float(np.sum(self._cols["cost_usd"].view())) if len(self) else 0.0

    # -- columnar fast path --------------------------------------------------

    def frame_columns(self) -> dict[str, np.ndarray]:
        """The frame-schema columns as zero-copy views of the buffers."""
        return {name: buf.view() for name, buf in self._cols.items()}

    def cell_index(self) -> tuple[list[tuple[str, str, int]], np.ndarray]:
        """(sorted unique cells, per-record int64 labels), precomputed.

        The factorization is maintained incrementally at append time
        (first-seen codes), so producing the sorted view is one
        vectorized remap — no string sorting at fold time.
        """
        cells = sorted(self._cell_codes)
        remap = np.empty(max(len(cells), 1), dtype=np.int64)
        for sorted_index, key in enumerate(cells):
            remap[self._cell_codes[key]] = sorted_index
        return cells, remap[self._labels.view()]

    def to_frame(self):
        """A columnar :class:`~repro.ensemble.frame.ResultFrame` view.

        Zero-copy: the frame borrows views of this store's buffers (and
        the store's incremental cell factorization), so aggregation
        starts without a conversion pass.  (Appending to the store after
        taking a frame leaves the frame on its snapshot.)
        """
        from repro.ensemble.frame import ResultFrame

        cells, labels = self.cell_index()
        return ResultFrame.from_columns(
            self.frame_columns(), cells=cells, labels=labels
        )

    # -- export -------------------------------------------------------------

    CSV_FIELDS = (
        "env_id",
        "app",
        "scale",
        "nodes",
        "iteration",
        "state",
        "fom",
        "fom_units",
        "wall_seconds",
        "hookup_seconds",
        "cost_usd",
        "failure_kind",
    )

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.CSV_FIELDS)
        cols = {name: b.view() for name, b in self._cols.items()}
        fom_none = self._fom_none.view()
        for i in range(len(self)):
            writer.writerow(
                [
                    str(cols["env"][i]),
                    str(cols["app"][i]),
                    int(cols["scale"][i]),
                    int(cols["nodes"][i]),
                    int(cols["iteration"][i]),
                    STATE_ORDER[cols["state"][i]].value,
                    "" if fom_none[i] else f"{float(cols['fom'][i]):.6g}",
                    self._fom_units[i],
                    f"{float(cols['wall_seconds'][i]):.3f}",
                    f"{float(cols['hookup_seconds'][i]):.3f}",
                    f"{float(cols['cost_usd'][i]):.4f}",
                    self._failure_kind[i] or "",
                ]
            )
        return buf.getvalue()

    def to_artifact(self, name: str = "study-results") -> tuple[str, bytes]:
        """(artifact name, payload) for an ORAS registry push."""
        return f"{name}.csv", self.to_csv().encode("utf-8")

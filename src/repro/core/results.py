"""Result store: the study's dataset collection.

The paper reports 25,541 datasets (runs) of which 3,546 appear in the
paper.  :class:`ResultStore` is the in-memory analogue: every
:class:`~repro.sim.run_result.RunRecord` lands here, with query helpers
the experiments use and a CSV exporter for archival (the study pushed
job output to an OCI registry via ORAS; :meth:`to_artifact` produces
the equivalent payload).
"""

from __future__ import annotations

import csv
import io
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.sim.run_result import RunRecord, RunState


@dataclass
class ResultStore:
    """Queryable collection of run records."""

    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    @classmethod
    def merge(cls, stores: "Iterable[ResultStore]") -> "ResultStore":
        """Concatenate several stores (shard-then-merge) in given order.

        Record order is exactly the concatenation order, so merging
        per-shard stores in shard-plan order reproduces the serial
        campaign's dataset byte for byte (see :mod:`repro.parallel`).
        """
        merged = cls()
        for store in stores:
            merged.extend(store.records)
        return merged

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- queries ------------------------------------------------------------

    def query(
        self,
        *,
        env_id: str | None = None,
        app: str | None = None,
        scale: int | None = None,
        state: RunState | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
    ) -> list[RunRecord]:
        out = []
        for r in self.records:
            if env_id is not None and r.env_id != env_id:
                continue
            if app is not None and r.app != app:
                continue
            if scale is not None and r.scale != scale:
                continue
            if state is not None and r.state != state:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def completed(self, **kwargs) -> list[RunRecord]:
        return self.query(state=RunState.COMPLETED, **kwargs)

    def foms(self, env_id: str, app: str, scale: int) -> list[float]:
        return [
            r.fom
            for r in self.completed(env_id=env_id, app=app, scale=scale)
            if r.fom is not None
        ]

    def environments(self) -> list[str]:
        return sorted({r.env_id for r in self.records})

    def apps(self) -> list[str]:
        return sorted({r.app for r in self.records})

    def scales(self, env_id: str, app: str) -> list[int]:
        return sorted({r.scale for r in self.query(env_id=env_id, app=app)})

    def counts_by_state(self) -> dict[RunState, int]:
        counts: dict[RunState, int] = defaultdict(int)
        for r in self.records:
            counts[r.state] += 1
        return dict(counts)

    def total_cost(self) -> float:
        return sum(r.cost_usd for r in self.records)

    # -- columnar fast path --------------------------------------------------

    def to_frame(self):
        """A columnar :class:`~repro.ensemble.frame.ResultFrame` view.

        One conversion pass over the records; aggregation from then on
        is vectorized NumPy.  The fold path for anything that touches
        the store more than once per record (the ensemble engine, bulk
        statistics) — the list of dataclasses stays the archival truth.
        """
        from repro.ensemble.frame import ResultFrame

        return ResultFrame.from_store(self)

    # -- export -------------------------------------------------------------

    CSV_FIELDS = (
        "env_id",
        "app",
        "scale",
        "nodes",
        "iteration",
        "state",
        "fom",
        "fom_units",
        "wall_seconds",
        "hookup_seconds",
        "cost_usd",
        "failure_kind",
    )

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.CSV_FIELDS)
        for r in self.records:
            writer.writerow(
                [
                    r.env_id,
                    r.app,
                    r.scale,
                    r.nodes,
                    r.iteration,
                    r.state.value,
                    "" if r.fom is None else f"{r.fom:.6g}",
                    r.fom_units,
                    f"{r.wall_seconds:.3f}",
                    f"{r.hookup_seconds:.3f}",
                    f"{r.cost_usd:.4f}",
                    r.failure_kind or "",
                ]
            )
        return buf.getvalue()

    def to_artifact(self, name: str = "study-results") -> tuple[str, bytes]:
        """(artifact name, payload) for an ORAS registry push."""
        return f"{name}.csv", self.to_csv().encode("utf-8")

"""Analysis helpers: FOM aggregation, speedup, scaling efficiency.

The study ran five iterations per point (§2.8) and reports means with
variability; these helpers compute the same aggregates from a
:class:`~repro.core.results.ResultStore`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import ResultStore


@dataclass(frozen=True)
class FomStat:
    """Mean ± std of a FOM at one point."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.3g} (n={self.n})"


def mean_fom(store: ResultStore, env_id: str, app: str, scale: int) -> FomStat | None:
    """Aggregate the iterations at one (env, app, scale) point."""
    foms = store.foms(env_id, app, scale)
    if not foms:
        return None
    n = len(foms)
    mean = sum(foms) / n
    var = sum((f - mean) ** 2 for f in foms) / n if n > 1 else 0.0
    return FomStat(mean=mean, std=math.sqrt(var), n=n)


def fom_series(
    store: ResultStore, env_id: str, app: str
) -> dict[int, FomStat]:
    """FOM stats across all scales for one environment/app."""
    series = {}
    for scale in store.scales(env_id, app):
        stat = mean_fom(store, env_id, app, scale)
        if stat is not None:
            series[scale] = stat
    return series


def speedup(
    store: ResultStore, env_id: str, app: str, base_scale: int, scale: int,
    *, higher_is_better: bool = True,
) -> float | None:
    """Observed speedup between two scales (strong scaling)."""
    a = mean_fom(store, env_id, app, base_scale)
    b = mean_fom(store, env_id, app, scale)
    if a is None or b is None or a.mean == 0 or b.mean == 0:
        return None
    return b.mean / a.mean if higher_is_better else a.mean / b.mean


def parallel_efficiency(
    store: ResultStore, env_id: str, app: str, base_scale: int, scale: int,
    *, higher_is_better: bool = True,
) -> float | None:
    """Speedup divided by the ideal (scale ratio)."""
    s = speedup(store, env_id, app, base_scale, scale, higher_is_better=higher_is_better)
    if s is None:
        return None
    return s / (scale / base_scale)


def scaling_table(
    store: ResultStore, app: str, *, env_ids: list[str] | None = None
) -> dict[str, dict[int, FomStat]]:
    """env_id -> {scale -> FomStat} for one app across environments."""
    envs = env_ids if env_ids is not None else store.environments()
    return {e: fom_series(store, e, app) for e in envs}


def rank_environments(
    store: ResultStore, app: str, scale: int, *, higher_is_better: bool = True
) -> list[tuple[str, float]]:
    """Environments ordered best-first by mean FOM at one scale."""
    rows = []
    for env_id in store.environments():
        stat = mean_fom(store, env_id, app, scale)
        if stat is not None:
            rows.append((env_id, stat.mean))
    rows.sort(key=lambda t: t[1], reverse=higher_is_better)
    return rows

"""The incident database: every effort event §3.1 reports, curated.

Each :class:`Incident` charges human effort (minutes) to one usability
category of one or more environments.  The usability scorer aggregates
these into the low/medium/high grid of Table 3.  Effort magnitudes
follow the paper's narrative ("took over a day", "20-30 minutes
debugging", "significant development effort").

Dynamic incidents also arrive at study time from the fault registry
(:func:`incident_from_fault`) and container-build failures
(:func:`incident_from_build_failure`), so a simulated study produces
the same *kind* of log the authors kept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.faults import FaultEvent
from repro.containers.builder import BuildResult

#: usability categories of Table 3
CATEGORIES = ("setup", "development", "app_setup", "manual_intervention")


@dataclass(frozen=True)
class Incident:
    """One unit of recorded effort."""

    env_ids: tuple[str, ...]
    category: str  # one of CATEGORIES
    effort_minutes: float
    description: str
    source: str = "paper-3.1"

    def applies_to(self, env_id: str) -> bool:
        return env_id in self.env_ids


def _i(envs: tuple[str, ...], cat: str, minutes: float, desc: str) -> Incident:
    if cat not in CATEGORIES:
        raise ValueError(f"bad category {cat}")
    return Incident(env_ids=envs, category=cat, effort_minutes=minutes, description=desc)


INCIDENT_DB: tuple[Incident, ...] = (
    # ------------------------------------------------------------- setup
    _i(("cpu-parallelcluster-aws",), "setup", 120,
       "ParallelCluster required a custom build and multi-step configuration"),
    _i(("cpu-cyclecloud-az", "gpu-cyclecloud-az"), "setup", 600,
       "CycleCloud took over a day to deploy; interfaces went out of sync "
       "with the Azure portal"),
    _i(("cpu-computeengine-g", "gpu-computeengine-g"), "setup", 120,
       "Cluster Toolkit configuration files could not be customized"),
    _i(("cpu-aks-az", "gpu-aks-az"), "setup", 100,
       "Azure cluster bring-up required multiple stages of commands"),
    _i(("gpu-aks-az",), "setup", 25,
       "a node consistently came up with 7/8 GPUs; resolved via padded quota"),
    _i(("gpu-eks-aws",), "setup", 300,
       "erroneously created placement group led to partial cluster "
       "instantiation; debugging added substantial cost"),
    # ------------------------------------------------------- development
    _i(("cpu-aks-az", "gpu-aks-az"), "development", 600,
       "custom container base for proprietary software (hpcx, hcoll, sharp) "
       "and a custom daemonset to install InfiniBand drivers"),
    _i(("cpu-eks-aws", "gpu-eks-aws"), "development", 400,
       "eksctl placement-group bug, broken cleanup step, custom tool build, "
       "and CNI daemonset patched for prefix delegation at 256 nodes"),
    _i(("cpu-computeengine-g", "gpu-computeengine-g"), "development", 120,
       "custom Terraform deployments for Flux Framework due to Cluster "
       "Toolkit GPU/Slurm issues"),
    # --------------------------------------------------------- app setup
    _i(("cpu-cyclecloud-az", "gpu-cyclecloud-az", "cpu-aks-az", "gpu-aks-az"),
       "app_setup", 400,
       "Azure container bases were challenging to build; UCX transport "
       "selection required extensive experimentation"),
    _i(("cpu-onprem-a", "gpu-onprem-b"), "app_setup", 300,
       "bare-metal builds through modules/Spack with less control over the "
       "software environment"),
    # ------------------------------------------------ manual intervention
    _i(("cpu-cyclecloud-az", "gpu-cyclecloud-az"), "manual_intervention", 400,
       "job submissions stalled (process management, module loading, Slurm) "
       "and needed continuous monitoring"),
    _i(("cpu-aks-az",), "manual_intervention", 300,
       "proximity placement groups would not complete for >= 100 nodes; "
       "cluster scaled manually with colocation status unknown"),
    _i(("cpu-eks-aws", "gpu-eks-aws", "cpu-gke-g", "gpu-gke-g",
        "cpu-aks-az", "gpu-aks-az"), "manual_intervention", 90,
       "Kubernetes environments: deploy each cluster size independently and "
       "shell in to interact with the queue per application"),
    _i(("cpu-onprem-a", "gpu-onprem-b"), "manual_intervention", 120,
       "on-prem jobs often errored (bad nodes) and had to be monitored, "
       "debugged, and resubmitted"),
)


#: Account/quota acquisition difficulty (§3.1 "Accounts and Resources").
ACCOUNT_DIFFICULTY: dict[tuple[str, str], str] = {
    ("aws", "cpu"): "low",
    ("aws", "gpu"): "medium",  # reservation never granted; 48h block
    ("az", "cpu"): "low",
    ("az", "gpu"): "low",
    ("g", "cpu"): "low",
    ("g", "gpu"): "low",
    ("p", "cpu"): "low",
    ("p", "gpu"): "low",
}


def incidents_for(env_id: str) -> list[Incident]:
    """All curated incidents charged to an environment."""
    return [inc for inc in INCIDENT_DB if inc.applies_to(env_id)]


def merge_incident_logs(
    into: dict[str, list[Incident]],
    env_id: str,
    incidents: "list[Incident] | tuple[Incident, ...]",
) -> None:
    """Append ``incidents`` to ``into[env_id]``, creating the log lazily.

    Used when folding per-shard incident logs back into the campaign log
    (:mod:`repro.parallel.merge`); appending in shard-plan order keeps
    the merged log identical to a serial campaign's.
    """
    for incident in incidents:
        into.setdefault(env_id, []).append(incident)


def incident_from_fault(env_id: str, event: FaultEvent) -> Incident:
    """Convert a triggered provisioning fault into an incident record."""
    category = "setup" if not event.fatal else "manual_intervention"
    return Incident(
        env_ids=(env_id,),
        category=category,
        effort_minutes=event.time_cost / 60.0,
        description=event.detail,
        source=f"fault:{event.fault_id}",
    )


def incident_from_build_failure(env_id: str, result: BuildResult) -> Incident:
    """Convert a failed container build into an app-setup incident."""
    if result.ok:
        raise ValueError("build succeeded; no incident to file")
    return Incident(
        env_ids=(env_id,),
        category="app_setup",
        effort_minutes=180.0,
        description=result.error or "container build failure",
        source=f"build:{result.recipe.tag}",
    )

"""Study orchestration: the full experimental campaign of §2.

:class:`StudyRunner` reproduces the study's workflow end to end:

1. request quotas per cloud and instance type (padding GPU requests — the
   33-for-32 trick);
2. build and push the container matrix for the configured apps and
   environments (recording build failures as incidents);
3. for each environment and cluster size: provision a cluster (charging
   the billing meter, recording provisioning faults), deploy the
   environment (Kubernetes: cluster + daemonsets + Flux Operator
   MiniCluster; VM: Singularity pulls; on-prem: queue waits), run each
   app for ``iterations`` iterations, release the cluster;
4. collect every run in a :class:`~repro.core.results.ResultStore` and
   every effort event in the incident log.

The paper created separate clusters per size for cost efficiency
(§2.9); so does the runner.  A full-size study produces tens of
thousands of records (the paper: 25,541); the default config is sized
for CI while `StudyConfig.full_study()` matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import APPS
from repro.cloud.providers import CloudProvider, get_provider
from repro.containers.builder import AZURE_UCX_SETTINGS, ContainerBuilder
from repro.containers.recipe import recipe_for
from repro.containers.registry import Registry
from repro.core.incidents import (
    Incident,
    incident_from_build_failure,
    incident_from_fault,
)
from repro.core.results import ResultStore
from repro.envs.environment import Environment, EnvironmentKind
from repro.envs.registry import ENVIRONMENTS
from repro.errors import ProvisioningError, QuotaError
from repro.k8s.cluster import KubernetesCluster
from repro.k8s.cni import CniConfig
from repro.k8s.daemonsets import (
    AKS_INFINIBAND_INSTALLER,
    EFA_DEVICE_PLUGIN,
    NVIDIA_DEVICE_PLUGIN,
)
from repro.k8s.flux_operator import FluxOperator, MiniClusterSpec
from repro.scheduler.queueing import OnPremQueueModel
from repro.errors import ConfigurationError
from repro.sim.execution import ExecutionEngine
from repro.sim.run_result import RunRecord, RunState
from repro.units import HOUR


@dataclass
class StudyConfig:
    """What to run."""

    env_ids: tuple[str, ...]
    apps: tuple[str, ...]
    sizes: tuple[int, ...] | None = None  # None -> each env's study sizes
    iterations: int = 5
    seed: int = 0

    @classmethod
    def smoke(cls, seed: int = 0) -> "StudyConfig":
        """A small configuration for tests: two envs, two apps, one size."""
        return cls(
            env_ids=("cpu-eks-aws", "cpu-onprem-a"),
            apps=("amg2023", "lammps"),
            sizes=(32,),
            iterations=2,
            seed=seed,
        )

    @classmethod
    def full_study(cls, seed: int = 0) -> "StudyConfig":
        """The paper's campaign: all environments, all apps, 5 iterations."""
        return cls(
            env_ids=tuple(ENVIRONMENTS),
            apps=tuple(APPS),
            sizes=None,
            iterations=5,
            seed=seed,
        )


@dataclass
class StudyReport:
    """Everything a campaign produced."""

    store: ResultStore
    incidents: dict[str, list[Incident]]
    spend_by_cloud: dict[str, float]
    containers_built: int
    containers_failed: int
    clusters_created: int

    @property
    def datasets(self) -> int:
        return len(self.store)


class StudyRunner:
    """Executes a :class:`StudyConfig`."""

    def __init__(self, config: StudyConfig):
        self.config = config
        self.providers: dict[str, CloudProvider] = {}
        self.registry = Registry()
        self.builder = ContainerBuilder()
        self.engine = ExecutionEngine(seed=config.seed)
        self.store = ResultStore()
        self.incidents: dict[str, list[Incident]] = {}
        self.clusters_created = 0
        self._clock: dict[str, float] = {}  # per-cloud study time, seconds

    # -- pieces -------------------------------------------------------------

    def provider(self, cloud: str) -> CloudProvider:
        if cloud not in self.providers:
            self.providers[cloud] = get_provider(cloud, seed=self.config.seed)
        return self.providers[cloud]

    def _note_incident(self, env_id: str, incident: Incident) -> None:
        self.incidents.setdefault(env_id, []).append(incident)

    def build_containers(self) -> None:
        """Build the container matrix for configured apps/environments."""
        built_tags: set[str] = set()
        for env_id in self.config.env_ids:
            env = ENVIRONMENTS[env_id]
            if env.container_runtime is None:
                continue
            ucx = None
            if env.cloud == "az":
                kind = "k8s" if env.kind is EnvironmentKind.K8S else "vm"
                ucx = AZURE_UCX_SETTINGS[kind]
            for app_name in self.config.apps:
                if app_name not in APPS:
                    raise ConfigurationError(f"unknown app {app_name!r}")
                model = APPS[app_name]
                if not model.supports(env.accelerator):
                    # Attempt anyway when the failure is a *build* failure
                    # (Laghos GPU) so the incident gets recorded.
                    if env.accelerator == "gpu" and app_name == "laghos":
                        recipe = recipe_for(app_name, env.cloud, gpu=True)
                        result = self.builder.try_build(recipe, ucx_tls=ucx)
                        if not result.ok:
                            self._note_incident(
                                env_id, incident_from_build_failure(env_id, result)
                            )
                    continue
                recipe = recipe_for(app_name, env.cloud, gpu=env.is_gpu)
                if recipe.tag in built_tags:
                    continue
                result = self.builder.try_build(recipe, ucx_tls=ucx)
                built_tags.add(recipe.tag)
                if result.ok:
                    self.registry.push(result.image)
                else:
                    self._note_incident(
                        env_id, incident_from_build_failure(env_id, result)
                    )

    # -- environment bring-up --------------------------------------------------

    def _deploy_kubernetes(self, env: Environment, cluster, now: float) -> float:
        """Stand up K8s + daemonsets + MiniCluster; returns setup seconds."""
        try:
            kube = KubernetesCluster.create(cluster)
        except ConfigurationError:
            # The 256-node EKS CNI incident: patch for prefix delegation.
            kube = KubernetesCluster.create(
                cluster, cni=CniConfig("aws-vpc-cni", prefix_delegation=True)
            )
        if env.is_gpu:
            kube.deploy_daemonset(NVIDIA_DEVICE_PLUGIN)
        if env.cloud == "aws":
            kube.deploy_daemonset(EFA_DEVICE_PLUGIN)
        if env.cloud == "az":
            kube.deploy_daemonset(AKS_INFINIBAND_INSTALLER)
        operator = FluxOperator(kube)
        fabric_res = None
        if env.cloud == "aws":
            fabric_res = "vpc.amazonaws.com/efa"
        elif env.cloud == "az":
            fabric_res = "rdma/ib"
        spec = MiniClusterSpec(
            name=f"study-{env.env_id}",
            image="study-app-image",
            size=len(kube.nodes),
            tasks_per_node=env.instance().cores,
            gpu_per_pod=env.gpus_per_node if env.is_gpu else 0,
            fabric_resource=fabric_res,
        )
        mc = operator.create(spec)
        return kube.setup_seconds + mc.bringup_seconds

    def _run_size(self, env: Environment, scale: int) -> list[RunRecord]:
        """Provision, run all apps x iterations, release; returns records."""
        records: list[RunRecord] = []
        nodes = env.nodes_for(scale)
        cloud = env.cloud
        now = self._clock.get(cloud, 0.0)

        if cloud == "p":
            # On-prem: no provisioning; jobs wait in the shared queue.
            queue = OnPremQueueModel(
                cluster_nodes=1544 if not env.is_gpu else 795,
                seed=self.config.seed,
            )
            wait = queue.sample_wait(nodes)
            now += wait
        else:
            provider = self.provider(cloud)
            itype = env.instance()
            # Quota requests are retried until granted — the paper's AWS
            # GPU saga: the reservation was denied repeatedly and finally
            # granted as a 48-hour block at month's end.
            for attempt in range(10):
                try:
                    provider.request_quota(itype.name, nodes + 1, attempt=attempt)
                    break
                except QuotaError:
                    if attempt == 9:
                        raise
            kind = "k8s" if env.kind is EnvironmentKind.K8S else "vm"
            try:
                cluster = provider.provision_cluster(
                    itype.name, nodes, environment_kind=kind, now=now
                )
            except ProvisioningError:
                # Retry once; the stall already charged the meter.
                cluster = provider.provision_cluster(
                    itype.name, nodes, environment_kind=kind, now=now, attempt=1
                )
            self.clusters_created += 1
            for event in cluster.fault_events:
                self._note_incident(env.env_id, incident_from_fault(env.env_id, event))
            now += cluster.ready_time
            if env.kind is EnvironmentKind.K8S:
                now += self._deploy_kubernetes(env, cluster, now)

        for app_name in self.config.apps:
            for it in range(self.config.iterations):
                record = self.engine.run(env, app_name, scale, iteration=it)
                records.append(record)
                now += record.total_seconds
                # §3.3: AKS CPU 256 ran a single iteration because hookup
                # took 8.82 minutes.
                if (
                    env.env_id == "cpu-aks-az"
                    and scale == 256
                    and record.hookup_seconds > 300.0
                ):
                    break

        if cloud != "p":
            provider.release_cluster(cluster, now=now)
        self._clock[cloud] = now
        return records

    # -- campaign ----------------------------------------------------------------

    def run(self) -> StudyReport:
        """Execute the configured campaign."""
        self.build_containers()
        for env_id in self.config.env_ids:
            env = ENVIRONMENTS[env_id]
            if not env.deployable:
                # Record skips so the dataset shows the missing environment.
                for app_name in self.config.apps:
                    sizes = self.config.sizes or env.sizes()
                    for scale in sizes:
                        self.store.add(
                            self.engine.run(env, app_name, scale, iteration=0)
                        )
                continue
            sizes = self.config.sizes or env.sizes()
            for scale in sizes:
                for record in self._run_size(env, scale):
                    self.store.add(record)

        # §2.9: job output is pushed to the registry (ORAS-style).
        name, payload = self.store.to_artifact(f"study-seed{self.config.seed}")
        self.registry.push_artifact(name, payload)

        spend: dict[str, float] = {}
        for cloud, provider in self.providers.items():
            spend[cloud] = provider.spend()
        return StudyReport(
            store=self.store,
            incidents=self.incidents,
            spend_by_cloud=spend,
            containers_built=self.builder.built,
            containers_failed=self.builder.failed,
            clusters_created=self.clusters_created,
        )

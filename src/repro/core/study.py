"""Study orchestration: the full experimental campaign of §2.

:class:`StudyRunner` reproduces the study's workflow end to end:

1. request quotas per cloud and instance type (padding GPU requests — the
   33-for-32 trick);
2. build and push the container matrix for the configured apps and
   environments (recording build failures as incidents);
3. for each environment and cluster size: provision a cluster (charging
   the billing meter, recording provisioning faults), deploy the
   environment (Kubernetes: cluster + daemonsets + Flux Operator
   MiniCluster; VM: Singularity pulls; on-prem: queue waits), run each
   app for ``iterations`` iterations, release the cluster;
4. collect every run in a :class:`~repro.core.results.ResultStore` and
   every effort event in the incident log.

The paper created separate clusters per size for cost efficiency
(§2.9); so does the runner — and that per-size independence is what
makes the campaign shardable.  Step 3 is planned as one
:class:`~repro.parallel.shard.StudyShard` per (environment, size) cell
and executed through :mod:`repro.parallel`: serially for ``workers=1``,
across a process pool otherwise, with per-cell keyed seeds so any worker
count produces a byte-identical dataset.  An optional content-addressed
run cache (:mod:`repro.sim.cache`) lets repeated campaigns skip
simulation for runs already recorded.

A full-size study produces tens of thousands of records (the paper:
25,541); the default config is sized for CI while
`StudyConfig.full_study()` matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import APPS
from repro.containers.builder import AZURE_UCX_SETTINGS, ContainerBuilder
from repro.containers.recipe import recipe_for
from repro.containers.registry import Registry
from repro.core.incidents import (
    Incident,
    incident_from_build_failure,
)
from repro.core.results import ResultStore
from repro.envs.environment import EnvironmentKind
from repro.envs.registry import ENVIRONMENTS
from repro.parallel.merge import TransportStats
from repro.parallel.pool import FaultStats
from repro.errors import ConfigurationError
from repro.telemetry import span


@dataclass
class StudyConfig:
    """What to run."""

    env_ids: tuple[str, ...]
    apps: tuple[str, ...]
    sizes: tuple[int, ...] | None = None  # None -> each env's study sizes
    iterations: int = 5
    seed: int = 0

    @classmethod
    def smoke(cls, seed: int = 0) -> "StudyConfig":
        """A small configuration for tests: two envs, two apps, one size."""
        return cls(
            env_ids=("cpu-eks-aws", "cpu-onprem-a"),
            apps=("amg2023", "lammps"),
            sizes=(32,),
            iterations=2,
            seed=seed,
        )

    @classmethod
    def full_study(cls, seed: int = 0) -> "StudyConfig":
        """The paper's campaign: all environments, all apps, 5 iterations."""
        return cls(
            env_ids=tuple(ENVIRONMENTS),
            apps=tuple(APPS),
            sizes=None,
            iterations=5,
            seed=seed,
        )


@dataclass
class StudyReport:
    """Everything a campaign produced."""

    store: ResultStore
    incidents: dict[str, list[Incident]]
    spend_by_cloud: dict[str, float]
    containers_built: int
    containers_failed: int
    clusters_created: int
    cache_hits: int = 0
    cache_misses: int = 0
    #: malformed cache entries encountered (each re-simulated, each
    #: leaving a one-line warning — see :mod:`repro.sim.cache`)
    cache_invalid: int = 0
    #: why those entries were invalid: reason label → count (capped per
    #: shard at :data:`~repro.sim.cache.INVALID_REASON_CAP` labels)
    cache_invalid_reasons: dict[str, int] = field(default_factory=dict)
    #: how shard result stores crossed back from the worker pool
    #: (``None`` only for reports predating transport accounting)
    transport: TransportStats | None = None
    #: recovery events the execution path survived (retries, requeues,
    #: rebuilds, resumed cells); ``None`` when nothing happened —
    #: faults never change the dataset, only this accounting
    faults: FaultStats | None = None

    @property
    def datasets(self) -> int:
        return len(self.store)

    def to_json_dict(self) -> dict:
        """A JSON-safe snapshot: campaign summary plus every record."""
        from repro.sim.cache import encode_record

        summary = {
            "datasets": self.datasets,
            "clusters_created": self.clusters_created,
            "containers_built": self.containers_built,
            "containers_failed": self.containers_failed,
            "spend_by_cloud": dict(sorted(self.spend_by_cloud.items())),
            "incidents": sum(len(i) for i in self.incidents.values()),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "invalid": self.cache_invalid,
            },
        }
        if self.faults is not None and self.faults.activity:
            # Only when something actually happened: a clean run's
            # snapshot stays byte-identical to pre-fault-tolerance ones.
            summary["faults"] = self.faults.to_dict()
        return {
            "summary": summary,
            "records": [encode_record(r) for r in self.store],
        }


class StudyRunner:
    """Executes a :class:`StudyConfig`.

    ``workers`` selects how many processes execute the campaign's
    (environment, size) cells; ``cache_dir`` enables the content-addressed
    run cache shared by every worker.  Results are identical for any
    worker count (see :mod:`repro.parallel`).

    ``scenario`` runs the whole campaign under a what-if overlay
    (:mod:`repro.scenarios`); ``None`` — or an empty scenario — is the
    baseline world, byte for byte.

    ``retry`` tunes the pool's fault-recovery ladder
    (:class:`~repro.parallel.pool.RetryPolicy`), ``chaos`` injects
    deterministic faults (:class:`repro.chaos.FaultPlan`), and
    ``resume`` re-attaches cells a previous interrupted run journaled —
    none of the three changes the dataset a surviving run produces.
    """

    def __init__(
        self,
        config: StudyConfig,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        scenario=None,
        transport: str = "auto",
        retry=None,
        chaos=None,
        resume: bool = False,
    ):
        self.config = config
        self.workers = workers
        self.transport = transport
        self.cache_dir = cache_dir
        self.scenario = scenario
        self.retry = retry
        self.chaos = chaos
        self.resume = resume
        self.registry = Registry()
        self.builder = ContainerBuilder()
        self.store = ResultStore()
        self.incidents: dict[str, list[Incident]] = {}
        self.clusters_created = 0

    # -- pieces -------------------------------------------------------------

    def _note_incident(self, env_id: str, incident: Incident) -> None:
        self.incidents.setdefault(env_id, []).append(incident)

    def build_containers(self) -> None:
        """Build the container matrix for configured apps/environments."""
        with span("study.build_containers", envs=len(self.config.env_ids)):
            self._build_containers()

    def _build_containers(self) -> None:
        built_tags: set[str] = set()
        for env_id in self.config.env_ids:
            env = ENVIRONMENTS[env_id]
            if env.container_runtime is None:
                continue
            ucx = None
            if env.cloud == "az":
                kind = "k8s" if env.kind is EnvironmentKind.K8S else "vm"
                ucx = AZURE_UCX_SETTINGS[kind]
            for app_name in self.config.apps:
                if app_name not in APPS:
                    raise ConfigurationError(f"unknown app {app_name!r}")
                model = APPS[app_name]
                if not model.supports(env.accelerator):
                    # Attempt anyway when the failure is a *build* failure
                    # (Laghos GPU) so the incident gets recorded.
                    if env.accelerator == "gpu" and app_name == "laghos":
                        recipe = recipe_for(app_name, env.cloud, gpu=True)
                        result = self.builder.try_build(recipe, ucx_tls=ucx)
                        if not result.ok:
                            self._note_incident(
                                env_id, incident_from_build_failure(env_id, result)
                            )
                    continue
                recipe = recipe_for(app_name, env.cloud, gpu=env.is_gpu)
                if recipe.tag in built_tags:
                    continue
                result = self.builder.try_build(recipe, ucx_tls=ucx)
                built_tags.add(recipe.tag)
                if result.ok:
                    self.registry.push(result.image)
                else:
                    self._note_incident(
                        env_id, incident_from_build_failure(env_id, result)
                    )

    # -- campaign ----------------------------------------------------------------

    def compile(self):
        """The campaign as a :class:`~repro.plan.ir.RunPlan` (one world)."""
        from repro.plan import compile_study

        return compile_study(
            self.config, cache_dir=self.cache_dir, scenario=self.scenario
        )

    def run(self) -> StudyReport:
        """Execute the configured campaign through the shared planner."""
        from repro.plan import PlanExecutor
        from repro.scenarios.spec import active

        with span("study.run", seed=self.config.seed, workers=self.workers):
            self.build_containers()

            scn = active(self.scenario)
            executor = PlanExecutor(
                self.compile(),
                workers=self.workers,
                transport=self.transport,
                retry=self.retry,
                chaos=self.chaos,
                resume=self.resume,
            )
            ((_, merged),) = executor.run(seed_incidents=self.incidents)

            self.store = merged.store
            self.incidents = merged.incidents
            self.clusters_created = merged.clusters_created

            # §2.9: job output is pushed to the registry (ORAS-style).
            artifact = f"study-seed{self.config.seed}"
            if scn is not None:
                artifact += f"-{scn.scenario_id}"
            name, payload = self.store.to_artifact(artifact)
            self.registry.push_artifact(name, payload)

            return StudyReport(
                store=self.store,
                incidents=self.incidents,
                spend_by_cloud=merged.spend_by_cloud,
                containers_built=self.builder.built,
                containers_failed=self.builder.failed,
                clusters_created=self.clusters_created,
                cache_hits=merged.cache_hits,
                cache_misses=merged.cache_misses,
                cache_invalid=merged.cache_invalid,
                cache_invalid_reasons=merged.cache_invalid_reasons,
                transport=merged.transport,
                faults=executor.faults,
            )

"""Portability scoring: which environments can run what, and where to run.

Implements two of the paper's discussion insights:

* **"Portability is a new dimension of performance"** — the
  :func:`portability_index` of a component is the fraction of study
  environments that can host it; raising it directly enlarges the
  resource pool the user can draw on.
* **"Extended cost and scheduling models are needed"** — the
  :class:`PortabilityScorer` folds feasibility, fabric fit, elasticity
  fit, hourly cost, and expected acquisition wait into a single ranked
  recommendation, and plans a whole workflow's placement with an egress
  penalty for splitting chatty components across environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.reservations import QueueEstimator
from repro.envs.environment import Environment, EnvironmentKind
from repro.envs.registry import ENVIRONMENTS
from repro.units import HOUR
from repro.workflows.dag import Component, ComponentKind, Workflow

#: fabric latency (us) under which "tightly coupled" components are happy
LOW_LATENCY_THRESHOLD_US = 5.0
#: egress + WAN penalty for splitting one GB/cycle across environments
SPLIT_PENALTY_PER_GB = 0.35


@dataclass(frozen=True)
class EnvironmentFit:
    """How well one environment hosts one component."""

    env_id: str
    component: str
    feasible: bool
    reasons: tuple[str, ...]
    #: 0..1 quality of fit when feasible
    fit_score: float
    #: dollars per hour to hold the component's nodes
    hourly_cost: float
    #: expected acquisition wait, seconds
    acquisition_wait: float


class PortabilityScorer:
    """Scores environments for components and plans workflow placement."""

    def __init__(self, environments: dict[str, Environment] | None = None, *, seed: int = 0):
        self.environments = environments or ENVIRONMENTS
        self.estimator = QueueEstimator(seed=seed)

    # -- single component ---------------------------------------------------------

    def assess(self, component: Component, env: Environment) -> EnvironmentFit:
        reasons: list[str] = []
        if not env.deployable:
            reasons.append("environment not deployable")
        if component.needs_gpu and not env.is_gpu:
            reasons.append("no GPUs")
        if not component.needs_gpu and env.is_gpu:
            reasons.append("GPU environment wasted on CPU component")
        if component.needs_containers and env.container_runtime is None:
            reasons.append("no container runtime")
        fabric = env.base_fabric()
        if component.needs_low_latency and fabric.latency_us > LOW_LATENCY_THRESHOLD_US:
            reasons.append(
                f"fabric latency {fabric.latency_us:.0f}us exceeds "
                f"{LOW_LATENCY_THRESHOLD_US:.0f}us"
            )
        if component.needs_elasticity and env.kind is EnvironmentKind.ONPREM:
            reasons.append("no elasticity on a fixed on-prem allocation")

        feasible = not reasons
        fit = 0.0
        if feasible:
            fit = 1.0
            # Soft preferences: elasticity loves Kubernetes; tightly
            # coupled codes love bare metal; services prefer cheap nodes.
            if component.needs_elasticity and env.kind is EnvironmentKind.K8S:
                fit += 0.2
            if component.kind is ComponentKind.SIMULATION and env.cloud == "p":
                fit += 0.2
            fit -= (fabric.latency_us / 100.0) * (
                1.0 if component.needs_low_latency else 0.2
            )
            fit = max(0.05, min(fit, 1.5)) / 1.5

        itype = env.instance()
        cost = component.min_nodes * itype.cost_per_hour
        if env.cloud == "p":
            wait = 15 * 60.0 * component.min_nodes / 64.0
        else:
            est = self.estimator.estimate(env.cloud, itype.name, component.min_nodes)
            wait = est.estimated_wait
        return EnvironmentFit(
            env_id=env.env_id,
            component=component.name,
            feasible=feasible,
            reasons=tuple(reasons),
            fit_score=fit,
            hourly_cost=cost,
            acquisition_wait=wait,
        )

    def rank(self, component: Component) -> list[EnvironmentFit]:
        """Feasible environments best-first (fit, then cost, then wait)."""
        fits = [
            self.assess(component, env) for env in self.environments.values()
        ]
        feasible = [f for f in fits if f.feasible]
        feasible.sort(
            key=lambda f: (-f.fit_score, f.hourly_cost, f.acquisition_wait)
        )
        return feasible

    # -- whole workflow -------------------------------------------------------------

    def place(self, workflow: Workflow) -> dict[str, EnvironmentFit]:
        """Greedy placement of every component, colocating chatty pairs.

        Components are placed in topological order; each candidate
        environment's score is reduced by the egress penalty for every
        already-placed neighbour living elsewhere.
        """
        placement: dict[str, EnvironmentFit] = {}
        for component in workflow.components():
            candidates = self.rank(component)
            if not candidates:
                raise LookupError(
                    f"no environment can host component {component.name!r}"
                )
            best = None
            best_score = -1e18
            for cand in candidates:
                score = cand.fit_score - cand.hourly_cost / 2000.0
                for other, fit in placement.items():
                    traffic_gb = workflow.traffic_between(component.name, other) / (1 << 30)
                    if traffic_gb and fit.env_id != cand.env_id:
                        score -= SPLIT_PENALTY_PER_GB * traffic_gb
                if score > best_score:
                    best, best_score = cand, score
            placement[component.name] = best
        return placement

    def plan_cost_per_hour(self, placement: dict[str, EnvironmentFit]) -> float:
        return sum(fit.hourly_cost for fit in placement.values())


def portability_index(
    component: Component, environments: dict[str, Environment] | None = None
) -> float:
    """Fraction of study environments that can host the component.

    The paper's portability argument in one number: optimizing a code
    for a single platform keeps this near 1/13; building portably (per
    §4.2, containers + flexible configuration) pushes it toward 1.0.
    """
    scorer = PortabilityScorer(environments)
    envs = scorer.environments
    feasible = sum(
        1 for env in envs.values() if scorer.assess(component, env).feasible
    )
    return feasible / len(envs)

"""Workflow graphs: components, requirements, data flow.

A :class:`Workflow` is a DAG (networkx) of :class:`Component` nodes.
Edges carry the bytes exchanged per workflow cycle, which the
portability scorer uses to penalise splitting chatty component pairs
across environments (cloud egress + WAN latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigurationError


class ComponentKind(enum.Enum):
    SIMULATION = "simulation"  # tightly coupled MPI
    AI = "ai"  # training/inference services
    DATABASE = "database"
    SERVICE = "service"  # messaging, dashboards, coordination


@dataclass(frozen=True)
class Component:
    """One workflow component and its resource requirements."""

    name: str
    kind: ComponentKind
    min_nodes: int = 1
    needs_gpu: bool = False
    #: tightly coupled: requires a low-latency fabric (< ~5 us)
    needs_low_latency: bool = False
    #: needs to scale up/down during the run (favors Kubernetes)
    needs_elasticity: bool = False
    #: must run containerized (cloud-native component)
    needs_containers: bool = False

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ConfigurationError("min_nodes must be >= 1")


class Workflow:
    """A DAG of components with data-flow edges."""

    def __init__(self, name: str):
        self.name = name
        self._graph = nx.DiGraph()

    # -- construction -----------------------------------------------------------

    def add(self, component: Component) -> Component:
        if component.name in self._graph:
            raise ConfigurationError(f"duplicate component {component.name!r}")
        self._graph.add_node(component.name, component=component)
        return component

    def connect(self, src: str, dst: str, *, bytes_per_cycle: int) -> None:
        for name in (src, dst):
            if name not in self._graph:
                raise ConfigurationError(f"unknown component {name!r}")
        if bytes_per_cycle < 0:
            raise ConfigurationError("bytes_per_cycle must be non-negative")
        self._graph.add_edge(src, dst, bytes_per_cycle=bytes_per_cycle)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise ConfigurationError(
                f"edge {src}->{dst} would create a cycle"
            )

    # -- queries ----------------------------------------------------------------

    def components(self) -> list[Component]:
        return [self._graph.nodes[n]["component"] for n in nx.topological_sort(self._graph)]

    def component(self, name: str) -> Component:
        try:
            return self._graph.nodes[name]["component"]
        except KeyError:
            raise ConfigurationError(f"unknown component {name!r}") from None

    def edges(self) -> list[tuple[str, str, int]]:
        return [
            (u, v, data["bytes_per_cycle"])
            for u, v, data in self._graph.edges(data=True)
        ]

    def traffic_between(self, a: str, b: str) -> int:
        total = 0
        for u, v, nbytes in self.edges():
            if {u, v} == {a, b}:
                total += nbytes
        return total

    def total_nodes(self) -> int:
        return sum(c.min_nodes for c in self.components())

    def critical_path(self) -> list[str]:
        """Longest chain of components by node weight."""
        return nx.dag_longest_path(
            self._graph,
            weight=None,
        )


def mummi_style_workflow() -> Workflow:
    """A canonical composite workflow from the paper's motivation.

    Modeled on the multiscale simulation campaigns cited in §1.1
    (MuMMI-like): a tightly coupled MPI simulation feeding an AI model
    selector, backed by a database and a coordination service.
    """
    wf = Workflow("multiscale-campaign")
    wf.add(Component("macro-sim", ComponentKind.SIMULATION, min_nodes=64,
                     needs_low_latency=True))
    wf.add(Component("micro-sim", ComponentKind.SIMULATION, min_nodes=16,
                     needs_gpu=True, needs_low_latency=True))
    wf.add(Component("ml-selector", ComponentKind.AI, min_nodes=4,
                     needs_gpu=True, needs_elasticity=True, needs_containers=True))
    wf.add(Component("feature-db", ComponentKind.DATABASE, min_nodes=2,
                     needs_containers=True))
    wf.add(Component("orchestrator", ComponentKind.SERVICE, min_nodes=1,
                     needs_elasticity=True, needs_containers=True))
    wf.connect("macro-sim", "ml-selector", bytes_per_cycle=2 << 30)
    wf.connect("macro-sim", "feature-db", bytes_per_cycle=256 << 20)
    wf.connect("ml-selector", "micro-sim", bytes_per_cycle=64 << 20)
    wf.connect("micro-sim", "feature-db", bytes_per_cycle=512 << 20)
    wf.connect("orchestrator", "macro-sim", bytes_per_cycle=1 << 20)
    return wf

"""Composite scientific workflows and portability scoring.

The paper's introduction motivates converged computing with composite
workflows — "a tightly coupled scientific simulation and database along
with AI services" — and its discussion elevates portability to "a new
dimension of performance": a larger pool of suitable resources lets the
user decide when, how, and where to run.

This package makes that computable:

* :mod:`repro.workflows.dag` — workflow graphs (networkx DiGraphs) of
  components with resource requirements and data-flow edges;
* :mod:`repro.workflows.portability` — environment-fit scoring, the
  portability index, and where-to-run recommendations that weigh fit,
  cost, and expected acquisition wait.
"""

from repro.workflows.dag import Component, ComponentKind, Workflow
from repro.workflows.portability import (
    EnvironmentFit,
    PortabilityScorer,
    portability_index,
)

__all__ = [
    "Component",
    "ComponentKind",
    "EnvironmentFit",
    "PortabilityScorer",
    "Workflow",
    "portability_index",
]

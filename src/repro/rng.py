"""Deterministic random-stream management.

Cloud studies are full of stochastic behaviour — provisioning failures,
run-to-run FOM variation, hookup jitter.  For reproducibility every
stochastic component draws from a :class:`numpy.random.Generator` derived
from a single study seed plus a *key path* naming the component, e.g.::

    rng = stream(seed, "aws", "eks", "lammps", 128, 3)

Identical key paths always yield identical streams, independent of the
order in which components are simulated, which keeps results stable when
experiments are run individually or as a full study.

The batched layer
-----------------

Constructing ``Generator(PCG64(SeedSequence(...)))`` costs tens of
microseconds — twice per simulated run on the hot path, which dominated
the batched pipeline.  :func:`stream_block` removes that cost for the
iteration axis of a group: it reproduces NumPy's seeding pipeline with
vectorized integer arithmetic (the :class:`~numpy.random.SeedSequence`
entropy-pool hash over all iterations at once, then the PCG64 seeding
LCG steps as 128-bit Python-int math) and *injects* each iteration's
post-seeding state into one reused bit generator.  Every iteration's
draw sequence is unchanged — the same PCG64 state produces the same
bits — so block draws are bit-identical to per-iteration
:func:`stream` calls (``tests/test_rng_block.py`` pins this), at about
a tenth of the construction cost.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

import numpy as np
from numpy.random import PCG64, Generator, SeedSequence

_blake2b = hashlib.blake2b
_from_bytes = int.from_bytes


def _key_to_int(parts: tuple[Any, ...]) -> int:
    """Hash a heterogeneous key path to a 64-bit integer."""
    text = "\x1f".join(map(str, parts))
    return _from_bytes(_blake2b(text.encode("utf-8"), digest_size=8).digest(), "little")


def stream(seed: int, *key: Any) -> np.random.Generator:
    """Return a generator unique to ``(seed, *key)``.

    Parameters
    ----------
    seed:
        Study-level seed.
    *key:
        Any hashable path components (strings, ints, enum values).

    The generator is ``PCG64`` seeded by the two-word entropy
    ``(seed, hash(key))`` — constructed directly (the hot path builds
    two generators per simulated run) but bit-identical to
    ``default_rng(SeedSequence([...]))`` on the same entropy.
    """
    return Generator(PCG64(SeedSequence((seed & 0xFFFFFFFF, _key_to_int(key)))))


def jitter(rng: np.random.Generator, scale: float) -> float:
    """A multiplicative noise factor centred on 1.0.

    ``scale`` is the coefficient of variation; draws are clipped to stay
    positive so timings never go negative.  Cloud environments get larger
    scales than on-prem fabrics.
    """
    return float(max(0.05, rng.normal(1.0, scale)))


def lognormal_jitter(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative log-normal noise with median 1.0.

    Used for queueing/hookup times whose distributions are right-skewed.
    """
    return float(rng.lognormal(mean=0.0, sigma=sigma))


# -- the batched layer --------------------------------------------------------

#: SeedSequence entropy-pool hash constants (numpy/random/bit_generator).
_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_POOL_SIZE = 4
_M32 = 0xFFFFFFFF


def _hash_const_sequence(init: int, mult: int, count: int) -> tuple[np.uint32, ...]:
    """The data-independent hash-constant sequence of the pool hash.

    SeedSequence advances its hash constant once per hash *call*, never
    per data word — so the whole sequence is fixed and can be tabulated
    at import instead of recomputed (with overflowing scalar ops) per
    block.
    """
    out = []
    const = init
    for _ in range(count):
        const = (const * mult) & _M32
        out.append(np.uint32(const))
    return tuple(out)


#: mix_entropy performs 4 pool-fill hashes then 12 mixing hashes;
#: generate_state performs 8 output hashes (4 uint64 words)
_ENTROPY_CONSTS = _hash_const_sequence(_INIT_A, _MULT_A, 16)
_OUTPUT_CONSTS = _hash_const_sequence(_INIT_B, _MULT_B, 8)

#: the default PCG64 LCG multiplier (pcg64.h PCG_DEFAULT_MULTIPLIER_128)
#: as four 32-bit limbs, little-endian
_PCG_MULT = (2549297995355413924 << 64) + 4865540595714422341
_PCG_MULT_LIMBS = tuple((_PCG_MULT >> (32 * k)) & _M32 for k in range(4))
_MASK_128 = (1 << 128) - 1
_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _limbs128(lo64: np.ndarray, hi64: np.ndarray) -> list[np.ndarray]:
    """Split (lo, hi) uint64 halves into four uint64-held 32-bit limbs."""
    return [lo64 & _U32, lo64 >> _SHIFT32, hi64 & _U32, hi64 >> _SHIFT32]


def _mul_add_128(a: list[np.ndarray], b: tuple[int, ...], c: list[np.ndarray]) -> list[np.ndarray]:
    """``(a * b + c) mod 2**128`` over 32-bit limb arrays.

    ``a``/``c`` are four uint64-held 32-bit limb arrays, ``b`` four
    constant limbs.  Column sums never overflow uint64 (each term is
    < 2**64 split into 32-bit halves before accumulating), so the whole
    LCG step vectorizes over every stream at once.
    """
    cols = [c[0].copy(), c[1].copy(), c[2].copy(), c[3].copy(), ]
    for i in range(4):
        ai = a[i]
        for j in range(4 - i):
            p = ai * np.uint64(b[j])
            cols[i + j] += p & _U32
            if i + j + 1 < 4:
                cols[i + j + 1] += p >> _SHIFT32
    out = []
    carry = np.zeros_like(cols[0])
    for k in range(4):
        total = cols[k] + carry
        out.append(total & _U32)
        carry = total >> _SHIFT32
    return out


def _seed_states(seed: int, key_ints: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Post-seeding PCG64 states for ``(seed, key)`` streams, vectorized.

    Reproduces, over all keys at once, exactly what
    ``PCG64(SeedSequence((seed & 0xFFFFFFFF, key)))`` computes:

    1. the SeedSequence entropy-pool hash (three uint32 entropy words —
       the 32-bit seed plus the lo/hi halves of the 64-bit key — mixed
       into a 4-word pool, then 8 output words drawn from it);
    2. the PCG64 seeding procedure — ``inc = initseq << 1 | 1`` and
       ``state = (inc + initstate) * MULT + inc`` (the two LCG steps of
       ``pcg64_srandom`` folded together) — as 32-bit limb arithmetic.

    Returns ``(state_hi, state_lo, inc_hi, inc_lo)`` uint64 arrays; the
    128-bit Python ints the state-injection dict needs are assembled
    per stream only when a stream is actually entered.
    """
    n = len(key_ints)
    entropy = [
        np.full(n, np.uint32(seed & 0xFFFFFFFF)),
        (key_ints & _U32).astype(np.uint32),
        (key_ints >> _SHIFT32).astype(np.uint32),
    ]
    # hash(value): value ^= hash_const; hash_const *= MULT;
    # value *= hash_const — i.e. XOR with the *pre-advance* constant,
    # multiply by the post-advance one.  The fresh array each hash
    # returns is mutated in place afterwards (small-array ufunc-call
    # overhead dominates this path, so every saved temporary counts).
    pre = [np.uint32(_INIT_A)] + list(_ENTROPY_CONSTS[:-1])

    def _hash_at(value: np.ndarray, k: int) -> np.ndarray:
        value = value ^ pre[k]  # new array; in-place from here on
        value *= _ENTROPY_CONSTS[k]
        value ^= value >> _XSHIFT
        return value

    def _mix(x: np.ndarray, y_hashed: np.ndarray) -> np.ndarray:
        y_hashed *= _MIX_MULT_R  # consumes the hashed copy
        result = x * _MIX_MULT_L
        result -= y_hashed
        result ^= result >> _XSHIFT
        return result

    zero = np.zeros(n, np.uint32)
    pool = [
        _hash_at(entropy[k] if k < len(entropy) else zero, k)
        for k in range(_POOL_SIZE)
    ]
    k = _POOL_SIZE
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hash_at(pool[i_src], k))
                k += 1

    pre_out = [np.uint32(_INIT_B)] + list(_OUTPUT_CONSTS[:-1])
    words: list[np.ndarray] = []
    for i_dst in range(8):  # 4 uint64 seed words = 8 uint32 halves
        value = pool[i_dst % _POOL_SIZE] ^ pre_out[i_dst]
        value *= _OUTPUT_CONSTS[i_dst]
        value ^= value >> _XSHIFT
        words.append(value.astype(np.uint64))
    w64 = [words[2 * j] | (words[2 * j + 1] << _SHIFT32) for j in range(4)]

    # PCG64 seeding: inc = initseq << 1 | 1; state = (inc + s) * M + inc.
    one = np.uint64(1)
    inc_lo64 = (w64[3] << one) | one
    inc_hi64 = (w64[2] << one) | (w64[3] >> np.uint64(63))
    inc = _limbs128(inc_lo64, inc_hi64)
    s = _limbs128(w64[1], w64[0])
    acc = s
    # inc + s (mod 2**128), limbwise with carries
    carry = np.zeros(n, np.uint64)
    tot = []
    for limb_a, limb_b in zip(acc, inc):
        t = limb_a + limb_b + carry
        tot.append(t & _U32)
        carry = t >> _SHIFT32
    state = _mul_add_128(tot, _PCG_MULT_LIMBS, inc)
    state_lo = state[0] | (state[1] << _SHIFT32)
    state_hi = state[2] | (state[3] << _SHIFT32)
    return state_hi, state_lo, inc_hi64, inc_lo64


class StreamBlock:
    """The keyed per-iteration streams of one batched group.

    Stream ``j`` is exactly ``stream(seed, *key, iterations[j])``; the
    block seeds all of them in one vectorized pass (lazily, on first
    draw) and replays each stream through a single reused
    :class:`~numpy.random.PCG64` by state injection.  Draw-gathering
    methods return one value (or row) per iteration, bit-identical to
    scalar draws from the per-iteration generators.

    Each stream's draws must be gathered **in one call** (sequential
    gathers would need a state save/restore per stream — if an app
    needs several noise factors per iteration, ask for them as one
    ``normal(loc, [cv1, cv2, ...])`` row).  A second whole-block gather
    raises; :meth:`generator` (the per-iteration fallback path) is the
    escape hatch for arbitrary scalar draw sequences.
    """

    __slots__ = (
        "seed", "key", "iterations",
        "_state_hi", "_state_lo", "_inc_hi", "_inc_lo",
        "_bg", "_gen", "_dict", "_drawn",
    )

    def __init__(self, seed: int, key: tuple[Any, ...], iterations: Sequence[int] | np.ndarray):
        self.seed = seed
        self.key = key
        self.iterations = np.asarray(iterations, dtype=np.int64)
        self._bg: PCG64 | None = None
        self._gen: Generator | None = None
        self._drawn = False

    def __len__(self) -> int:
        return len(self.iterations)

    def _key_ints(self) -> np.ndarray:
        # Key text for iteration i is "\x1f".join((*key, i)) — with an
        # empty key path the iteration stands alone, no separator.
        prefix = (
            ("\x1f".join(map(str, self.key)) + "\x1f").encode("utf-8")
            if self.key
            else b""
        )
        return np.fromiter(
            (
                _from_bytes(
                    _blake2b(prefix + str(i).encode("utf-8"), digest_size=8).digest(),
                    "little",
                )
                for i in self.iterations
            ),
            dtype=np.uint64,
            count=len(self.iterations),
        )

    def _install(self, state_hi, state_lo, inc_hi, inc_lo) -> None:
        """Attach seeded per-stream states (from :func:`co_seed` or
        :meth:`_seed_all`) and the shared scratch generator."""
        self._state_hi, self._state_lo = state_hi, state_lo
        self._inc_hi, self._inc_lo = inc_hi, inc_lo
        self._bg, self._gen = _scratch_generator()
        # One reused state-injection dict; the setter copies the values
        # into the bit generator's C state, so mutating it is safe.
        self._dict = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }

    def _seed_all(self) -> None:
        if self._bg is not None:
            return
        self._install(*_seed_states(self.seed, self._key_ints()))

    def seeded_states(self):
        """The per-stream seeded states, for reuse by an identical block.

        The run/hookup key paths name no application, so every app of a
        study cell re-derives the *same* streams; the engine seeds them
        once and installs the states into each app's block
        (:meth:`install_states`).  The arrays are read-only shared state
        — blocks only ever inject copies into the scratch generator.
        """
        self._seed_all()
        return (self._state_hi, self._state_lo, self._inc_hi, self._inc_lo)

    def install_states(self, states) -> None:
        """Adopt previously seeded states (from :meth:`seeded_states`)."""
        self._install(*states)

    def _enter(self, j: int) -> Generator:
        """Point the shared generator at stream ``j``'s seeded state."""
        inner = self._dict["state"]
        inner["state"] = (int(self._state_hi[j]) << 64) | int(self._state_lo[j])
        inner["inc"] = (int(self._inc_hi[j]) << 64) | int(self._inc_lo[j])
        self._bg.state = self._dict
        return self._gen

    def generator(self, j: int) -> Generator:
        """Stream ``j`` from its seeded start (shared object — draw from
        it before asking for another stream)."""
        self._seed_all()
        return self._enter(j)

    def _begin(self) -> int:
        if self._drawn:
            raise RuntimeError(
                "StreamBlock gathers each stream's draws in one pass; "
                "request all per-iteration draws in a single call"
            )
        self._seed_all()
        self._drawn = True
        return len(self.iterations)

    def normal(self, loc: float, scale) -> np.ndarray:
        """One row of normal draws per iteration.

        ``scale`` may be a scalar (one draw per iteration → shape
        ``(n,)``) or a length-``k`` vector (``k`` sequential draws per
        iteration → shape ``(n, k)``, exactly the values ``k`` scalar
        ``rng.normal`` calls would produce in order).
        """
        n = self._begin()
        scale = np.asarray(scale, dtype=np.float64)
        gen, enter = self._gen, self._enter
        if scale.ndim == 0:
            scale = float(scale)
            out = np.empty(n, dtype=np.float64)
            for j in range(n):
                enter(j)
                out[j] = gen.normal(loc, scale)
            return out
        out = np.empty((n, len(scale)), dtype=np.float64)
        for j in range(n):
            enter(j)
            out[j] = gen.normal(loc, scale)
        return out

    def lognormal(self, mean: float, sigma: float) -> np.ndarray:
        """One log-normal draw per iteration."""
        n = self._begin()
        gen, enter = self._gen, self._enter
        out = np.empty(n, dtype=np.float64)
        for j in range(n):
            enter(j)
            out[j] = gen.lognormal(mean=mean, sigma=sigma)
        return out

    def random(self, k: int | None = None) -> np.ndarray:
        """Uniform [0, 1) draws: one per iteration, or ``k`` sequential
        draws per iteration (shape ``(n, k)``)."""
        n = self._begin()
        gen, enter = self._gen, self._enter
        if k is None:
            out = np.empty(n, dtype=np.float64)
            for j in range(n):
                enter(j)
                out[j] = gen.random()
            return out
        out = np.empty((n, k), dtype=np.float64)
        for j in range(n):
            enter(j)
            out[j] = gen.random(size=k)
        return out


#: one process-wide scratch bit generator for state injection — every
#: block *sets* the state before drawing, so sharing is safe for the
#: single-threaded simulation loop (each worker process gets its own)
_SCRATCH: tuple[PCG64, Generator] | None = None


def _scratch_generator() -> tuple[PCG64, Generator]:
    global _SCRATCH
    if _SCRATCH is None:
        bg = PCG64(SeedSequence(0))
        _SCRATCH = (bg, Generator(bg))
    return _SCRATCH


def co_seed(*blocks: StreamBlock) -> None:
    """Seed several same-seed blocks with one vectorized pass.

    The entropy-pool hash has a fixed per-call overhead that dwarfs the
    per-stream cost for study-sized groups; a group's run and hookup
    blocks seeded together pay it once.  Blocks already seeded (or with
    differing study seeds) fall back to their own pass.
    """
    pending = [b for b in blocks if b._bg is None and len(b)]
    if not pending:
        return
    seed = pending[0].seed
    joint = [b for b in pending if b.seed == seed]
    key_arrays = [b._key_ints() for b in joint]
    parts = _seed_states(seed, np.concatenate(key_arrays))
    start = 0
    for block, keys in zip(joint, key_arrays):
        stop = start + len(keys)
        block._install(*(p[start:stop] for p in parts))
        start = stop
    for block in pending:
        if block.seed != seed:
            block._seed_all()


def stream_block(seed: int, *key: Any, iterations: int | Sequence[int]) -> StreamBlock:
    """The batched form of :func:`stream` over a group's iteration axis.

    ``stream_block(seed, *key, iterations=n)`` covers iterations
    ``0..n-1``; passing a sequence covers exactly those iteration
    numbers (the engine's mixed cache-hit path simulates only the
    missing ones).  Stream ``j`` reproduces
    ``stream(seed, *key, iterations[j])`` bit for bit.
    """
    if isinstance(iterations, (int, np.integer)):
        iterations = range(int(iterations))
    return StreamBlock(seed, key, iterations)


def jitter_block(block: StreamBlock, scale: float) -> np.ndarray:
    """Vectorized :func:`jitter`: one clipped noise factor per iteration."""
    return np.maximum(0.05, block.normal(1.0, scale))


def lognormal_jitter_block(block: StreamBlock, sigma: float) -> np.ndarray:
    """Vectorized :func:`lognormal_jitter`: one factor per iteration."""
    return block.lognormal(0.0, sigma)

"""Deterministic random-stream management.

Cloud studies are full of stochastic behaviour — provisioning failures,
run-to-run FOM variation, hookup jitter.  For reproducibility every
stochastic component draws from a :class:`numpy.random.Generator` derived
from a single study seed plus a *key path* naming the component, e.g.::

    rng = stream(seed, "aws", "eks", "lammps", 128, 3)

Identical key paths always yield identical streams, independent of the
order in which components are simulated, which keeps results stable when
experiments are run individually or as a full study.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np
from numpy.random import PCG64, Generator, SeedSequence

_blake2b = hashlib.blake2b
_from_bytes = int.from_bytes


def _key_to_int(parts: tuple[Any, ...]) -> int:
    """Hash a heterogeneous key path to a 64-bit integer."""
    text = "\x1f".join(map(str, parts))
    return _from_bytes(_blake2b(text.encode("utf-8"), digest_size=8).digest(), "little")


def stream(seed: int, *key: Any) -> np.random.Generator:
    """Return a generator unique to ``(seed, *key)``.

    Parameters
    ----------
    seed:
        Study-level seed.
    *key:
        Any hashable path components (strings, ints, enum values).

    The generator is ``PCG64`` seeded by the two-word entropy
    ``(seed, hash(key))`` — constructed directly (the hot path builds
    two generators per simulated run) but bit-identical to
    ``default_rng(SeedSequence([...]))`` on the same entropy.
    """
    return Generator(PCG64(SeedSequence((seed & 0xFFFFFFFF, _key_to_int(key)))))


def jitter(rng: np.random.Generator, scale: float) -> float:
    """A multiplicative noise factor centred on 1.0.

    ``scale`` is the coefficient of variation; draws are clipped to stay
    positive so timings never go negative.  Cloud environments get larger
    scales than on-prem fabrics.
    """
    return float(max(0.05, rng.normal(1.0, scale)))


def lognormal_jitter(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative log-normal noise with median 1.0.

    Used for queueing/hookup times whose distributions are right-skewed.
    """
    return float(rng.lognormal(mean=0.0, sigma=sigma))

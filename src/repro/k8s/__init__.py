"""Kubernetes model: nodes, pods, daemonsets, CNI, and the Flux Operator.

Covers the study's three managed Kubernetes services (EKS, AKS, GKE)
with enough fidelity for their documented incidents: device-plugin and
InfiniBand-installer daemonsets, CNI prefix-delegation exhaustion at 256
nodes, and Flux Operator MiniCluster bring-up across pods.
"""

from repro.k8s.cluster import KubernetesCluster
from repro.k8s.cni import CniConfig, CniPlugin
from repro.k8s.daemonsets import (
    AKS_INFINIBAND_INSTALLER,
    EFA_DEVICE_PLUGIN,
    NVIDIA_DEVICE_PLUGIN,
    DaemonSetSpec,
)
from repro.k8s.flux_operator import FluxOperator, MiniCluster, MiniClusterSpec
from repro.k8s.objects import KubeNode, Pod, PodPhase, ResourceRequest
from repro.k8s.scheduler import KubeScheduler

__all__ = [
    "AKS_INFINIBAND_INSTALLER",
    "CniConfig",
    "CniPlugin",
    "DaemonSetSpec",
    "EFA_DEVICE_PLUGIN",
    "FluxOperator",
    "KubeNode",
    "KubeScheduler",
    "KubernetesCluster",
    "MiniCluster",
    "MiniClusterSpec",
    "NVIDIA_DEVICE_PLUGIN",
    "Pod",
    "PodPhase",
    "ResourceRequest",
]

"""Kubernetes object model: nodes, pods, resource requests.

A deliberately small subset of the real API — just what the Flux
Operator and the study's daemonsets exercise.  Resources follow the
Kubernetes convention: CPU in whole cores, memory in bytes, plus
extended resources for GPUs (``nvidia.com/gpu``) and fabric devices
(``vpc.amazonaws.com/efa``, ``rdma/ib``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PodPhase(enum.Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass(frozen=True)
class ResourceRequest:
    """Pod resource requirements."""

    cpu_cores: float = 1.0
    memory_bytes: int = 1 << 30
    extended: tuple[tuple[str, int], ...] = ()

    def extended_dict(self) -> dict[str, int]:
        return dict(self.extended)

    @staticmethod
    def of(cpu_cores: float, memory_bytes: int, **extended: int) -> "ResourceRequest":
        return ResourceRequest(
            cpu_cores=cpu_cores,
            memory_bytes=memory_bytes,
            extended=tuple(sorted(extended.items())),
        )


@dataclass
class Pod:
    """A pod: one container (the study runs one app container per pod)."""

    name: str
    image: str
    resources: ResourceRequest
    labels: dict[str, str] = field(default_factory=dict)
    host_network: bool = False
    phase: PodPhase = PodPhase.PENDING
    node_name: str | None = None
    #: seconds spent pulling the image on its node (set at bind time)
    pull_seconds: float = 0.0

    @property
    def is_bound(self) -> bool:
        return self.node_name is not None


@dataclass
class KubeNode:
    """A Kubernetes worker node backed by a cloud instance."""

    name: str
    cpu_cores: float
    memory_bytes: int
    extended_capacity: dict[str, int] = field(default_factory=dict)
    #: pod IP addresses available (CNI-dependent; see repro.k8s.cni)
    ip_capacity: int = 110
    labels: dict[str, str] = field(default_factory=dict)
    pods: list[Pod] = field(default_factory=list)
    #: images already present (second pull of an image is free)
    image_cache: set[str] = field(default_factory=set)
    ready: bool = True

    # -- accounting -----------------------------------------------------------

    def cpu_used(self) -> float:
        return sum(p.resources.cpu_cores for p in self.pods)

    def memory_used(self) -> int:
        return sum(p.resources.memory_bytes for p in self.pods)

    def extended_used(self, resource: str) -> int:
        return sum(p.resources.extended_dict().get(resource, 0) for p in self.pods)

    def ips_used(self) -> int:
        # Host-network pods do not consume a pod IP.
        return sum(1 for p in self.pods if not p.host_network)

    def fits(self, pod: Pod) -> bool:
        """Admission check for one more pod."""
        if not self.ready:
            return False
        if self.cpu_used() + pod.resources.cpu_cores > self.cpu_cores:
            return False
        if self.memory_used() + pod.resources.memory_bytes > self.memory_bytes:
            return False
        for res, count in pod.resources.extended_dict().items():
            if self.extended_used(res) + count > self.extended_capacity.get(res, 0):
                return False
        if not pod.host_network and self.ips_used() + 1 > self.ip_capacity:
            return False
        return True

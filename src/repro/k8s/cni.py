"""Container Networking Interface address budgeting.

§3.1 (Development, AWS EKS): "For the largest cluster size (256 nodes)
we ran out of network prefixes for the container networking interface
(CNI) and fixed the issue by patching the CNI daemonset to allow for
prefix delegation to increase the number of addresses available."

The AWS VPC CNI assigns pod IPs from the node's ENI secondary-IP slots;
an Hpc6a-class instance supports ~50 secondary IPs across its ENIs.
With *prefix delegation* each slot instead holds a /28 prefix (16
addresses), multiplying capacity.  At 256 nodes the cluster-wide
subnet also feels pressure: system daemonsets plus operator pods exceed
the per-node budget precisely at the largest size, which is the
behaviour this module reproduces.

GKE and AKS use different CNIs (VPC-native aliasing / Azure CNI) with
larger defaults; they are modelled with generous fixed budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CniConfig:
    """CNI tuning for a cluster."""

    plugin: str  # "aws-vpc-cni" | "azure-cni" | "gke-native"
    prefix_delegation: bool = False


@dataclass(frozen=True)
class CniPlugin:
    """Per-node pod-IP capacity calculator for one CNI plugin."""

    config: CniConfig

    #: ENI secondary-IP slots available on the study's AWS instance class.
    AWS_ENI_SLOTS = 49
    #: Addresses per delegated /28 prefix.
    PREFIX_SIZE = 16
    #: Kubernetes' own default pod cap per node.
    KUBELET_DEFAULT_MAX_PODS = 110

    def pod_ip_capacity(self, *, cluster_nodes: int) -> int:
        """Pod IPs available on each node of a ``cluster_nodes`` cluster.

        For the AWS VPC CNI without prefix delegation, the per-node VPC
        address pool is shared with cluster-scale overhead: beyond ~200
        nodes the subnet's usable space per node drops below the ENI
        slot count, reproducing the exhaustion incident.
        """
        if cluster_nodes < 1:
            raise ConfigurationError("cluster_nodes must be >= 1")
        if self.config.plugin == "aws-vpc-cni":
            if self.config.prefix_delegation:
                return min(
                    self.AWS_ENI_SLOTS * self.PREFIX_SIZE,
                    self.KUBELET_DEFAULT_MAX_PODS,
                )
            # Shared /21 subnet: 2048 addresses minus node/ELB/system
            # reservations, divided across nodes, capped by ENI slots.
            # At 256 nodes this drops below the Flux Operator's per-node
            # pod requirement — the §3.1 exhaustion incident.
            subnet_per_node = max(1, (2048 - 256) // cluster_nodes)
            return min(self.AWS_ENI_SLOTS, subnet_per_node)
        if self.config.plugin in ("azure-cni", "gke-native"):
            return self.KUBELET_DEFAULT_MAX_PODS
        raise ConfigurationError(f"unknown CNI plugin {self.config.plugin!r}")

    def sufficient_for(self, pods_per_node: int, *, cluster_nodes: int) -> bool:
        """Whether the per-node budget covers ``pods_per_node``."""
        return self.pod_ip_capacity(cluster_nodes=cluster_nodes) >= pods_per_node


def default_cni(cloud: str) -> CniConfig:
    """The CNI each managed service ships by default."""
    return {
        "aws": CniConfig("aws-vpc-cni", prefix_delegation=False),
        "az": CniConfig("azure-cni"),
        "g": CniConfig("gke-native"),
    }.get(cloud, CniConfig("gke-native"))

"""The Flux Operator: a Flux MiniCluster across Kubernetes pods.

The study unified all Kubernetes environments with the Flux Operator
(§2.3): a custom resource (``MiniCluster``) that stands up one pod per
node, bootstraps a Flux broker overlay across them, and exposes a batch
queue inside the pods.  This module models that lifecycle:

1. a :class:`MiniClusterSpec` names the container image, size, and
   per-pod resources;
2. :class:`FluxOperator.create` gang-schedules the pods (all-or-nothing,
   like the real operator's indexed Job), charges image-pull time on
   cache-miss, waits for broker bootstrap (a tree broadcast — log(n)
   rounds), and returns a :class:`MiniCluster` wrapping a
   :class:`~repro.scheduler.flux.FluxScheduler` sized to the pods.

The returned Flux instance is what the execution engine submits app
runs to, so Kubernetes and VM environments share scheduler code exactly
as the study shared Flux across environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.k8s.cluster import KubernetesCluster
from repro.k8s.objects import Pod, ResourceRequest
from repro.scheduler.flux import FluxScheduler


@dataclass(frozen=True)
class MiniClusterSpec:
    """The ``MiniCluster`` custom resource, abridged."""

    name: str
    image: str
    size: int
    tasks_per_node: int
    #: pod resources; defaults claim nearly the whole node, the
    #: operator's recommended layout for tightly coupled MPI apps
    cpu_fraction: float = 0.95
    gpu_per_pod: int = 0
    fabric_resource: str | None = None  # e.g. "vpc.amazonaws.com/efa", "rdma/ib"
    #: image pull time on a cold node, seconds (study containers were
    #: multi-GB application stacks)
    image_pull_seconds: float = 120.0


@dataclass
class MiniCluster:
    """A running MiniCluster."""

    spec: MiniClusterSpec
    pods: list[Pod]
    flux: FluxScheduler
    bringup_seconds: float

    @property
    def size(self) -> int:
        return len(self.pods)


@dataclass
class FluxOperator:
    """Creates and deletes MiniClusters on a Kubernetes cluster."""

    cluster: KubernetesCluster
    miniclusters: list[MiniCluster] = field(default_factory=list)

    def create(self, spec: MiniClusterSpec) -> MiniCluster:
        """Stand up a MiniCluster; raises if the gang cannot schedule."""
        if spec.size > self.cluster.size:
            raise SchedulingError(
                f"MiniCluster of {spec.size} exceeds cluster size {self.cluster.size}"
            )
        pods = []
        for i in range(spec.size):
            node_template = self.cluster.nodes[0]
            extended: dict[str, int] = {}
            if spec.gpu_per_pod:
                extended["nvidia.com/gpu"] = spec.gpu_per_pod
            if spec.fabric_resource:
                extended[spec.fabric_resource] = 1
            pods.append(
                Pod(
                    name=f"{spec.name}-{i}",
                    image=spec.image,
                    resources=ResourceRequest.of(
                        cpu_cores=node_template.cpu_cores * spec.cpu_fraction,
                        memory_bytes=int(node_template.memory_bytes * 0.9),
                        **extended,
                    ),
                    labels={"minicluster": spec.name, "nodeSelector": "workers"},
                    host_network=True,  # study pods used host networking for fabrics
                )
            )
        scheduler = self.cluster.scheduler()
        nodes = scheduler.bind_all(pods)

        # Image pulls: cold nodes pay the pull, warm nodes are free.
        pull_times = []
        for pod, node in zip(pods, nodes):
            if spec.image in node.image_cache:
                pod.pull_seconds = 0.0
            else:
                pod.pull_seconds = spec.image_pull_seconds
                node.image_cache.add(spec.image)
            pull_times.append(pod.pull_seconds)
        pull_wall = max(pull_times) if pull_times else 0.0

        # Flux broker bootstrap: tree overlay, log2(size) rounds of
        # attach + PMI exchange, ~1.5 s per round at study scales.
        rounds = max(1, math.ceil(math.log2(max(spec.size, 2))))
        bootstrap = 1.5 * rounds

        flux = FluxScheduler(nodes=spec.size)
        mc = MiniCluster(
            spec=spec,
            pods=pods,
            flux=flux,
            bringup_seconds=pull_wall + bootstrap,
        )
        self.miniclusters.append(mc)
        return mc

    def delete(self, mc: MiniCluster) -> None:
        """Tear down a MiniCluster, freeing its pods' nodes."""
        if mc not in self.miniclusters:
            raise SchedulingError("MiniCluster not managed by this operator")
        for pod in mc.pods:
            for node in self.cluster.nodes:
                if pod in node.pods:
                    node.pods.remove(pod)
            pod.node_name = None
        self.miniclusters.remove(mc)

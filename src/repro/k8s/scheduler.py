"""Kubernetes pod scheduler: filter + score, least-allocated strategy.

Implements the two-phase kube-scheduler pipeline: *filter* nodes that
can admit the pod (resource fit, readiness, IP budget — see
:meth:`~repro.k8s.objects.KubeNode.fits`), then *score* survivors and
bind to the best.  We score by least-allocated CPU, the default-profile
behaviour that matters for the Flux Operator's one-pod-per-node layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.k8s.objects import KubeNode, Pod, PodPhase


@dataclass
class KubeScheduler:
    """Binds pods to nodes."""

    nodes: list[KubeNode]
    #: bound pods in bind order, for inspection
    bound: list[Pod] = field(default_factory=list)

    def filter(self, pod: Pod) -> list[KubeNode]:
        """Feasible nodes for ``pod``, honouring label selectors."""
        feasible = []
        for node in self.nodes:
            selector = pod.labels.get("nodeSelector")
            if selector and node.labels.get("pool") != selector:
                continue
            if node.fits(pod):
                feasible.append(node)
        return feasible

    @staticmethod
    def score(node: KubeNode, pod: Pod) -> float:
        """Least-allocated scoring: prefer the emptiest node."""
        free_cpu = node.cpu_cores - node.cpu_used()
        free_frac = free_cpu / node.cpu_cores if node.cpu_cores else 0.0
        return free_frac

    def bind(self, pod: Pod) -> KubeNode:
        """Schedule one pod; raises :class:`SchedulingError` if unschedulable."""
        if pod.is_bound:
            raise SchedulingError(f"pod {pod.name} already bound to {pod.node_name}")
        feasible = self.filter(pod)
        if not feasible:
            raise SchedulingError(
                f"0/{len(self.nodes)} nodes available for pod {pod.name} "
                f"(insufficient resources or pod-IP budget)"
            )
        best = max(feasible, key=lambda n: (self.score(n, pod), n.name))
        pod.node_name = best.name
        pod.phase = PodPhase.RUNNING
        best.pods.append(pod)
        self.bound.append(pod)
        return best

    def bind_all(self, pods: list[Pod]) -> list[KubeNode]:
        """Bind a pod group; all-or-nothing (gang semantics).

        The Flux Operator needs its whole MiniCluster up before Flux
        brokers can bootstrap, so a partial binding is rolled back and
        reported — matching how a stuck pending pod manifests.
        """
        placed: list[tuple[Pod, KubeNode]] = []
        try:
            for pod in pods:
                node = self.bind(pod)
                placed.append((pod, node))
        except SchedulingError:
            for pod, node in placed:
                node.pods.remove(pod)
                pod.node_name = None
                pod.phase = PodPhase.PENDING
                self.bound.remove(pod)
            raise
        return [node for _, node in placed]

"""A managed Kubernetes cluster (EKS / AKS / GKE) over cloud instances.

:class:`KubernetesCluster` wraps a provisioned
:class:`~repro.cloud.provisioner.Cluster` with Kubernetes semantics:
worker-node objects sized from the instance type, the service's control
plane version, its default CNI, and daemonset rollouts.  The CNI budget
check happens at cluster construction: at 256 nodes on EKS without
prefix delegation the per-node pod-IP capacity falls below what the Flux
Operator needs, raising an error the environment layer resolves by
patching the daemonset (and recording the incident).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.provisioner import Cluster
from repro.errors import ConfigurationError
from repro.k8s.cni import CniConfig, CniPlugin, default_cni
from repro.k8s.daemonsets import DaemonSetRollout, DaemonSetSpec
from repro.k8s.objects import KubeNode
from repro.k8s.scheduler import KubeScheduler

#: Control-plane versions used in the study (§2.3).
SERVICE_VERSIONS = {"aws": "1.27", "az": "1.29.7", "g": "1.29.7"}
SERVICE_NAMES = {"aws": "EKS", "az": "AKS", "g": "GKE"}


@dataclass
class KubernetesCluster:
    """A running managed-Kubernetes cluster."""

    cloud_cluster: Cluster
    cni: CniConfig
    version: str
    service: str
    nodes: list[KubeNode] = field(default_factory=list)
    daemonsets: list[DaemonSetRollout] = field(default_factory=list)
    #: accumulated bring-up time beyond instance boot, seconds
    setup_seconds: float = 0.0

    @classmethod
    def create(
        cls,
        cloud_cluster: Cluster,
        *,
        cni: CniConfig | None = None,
        min_pods_per_node: int = 8,
    ) -> "KubernetesCluster":
        """Build Kubernetes over a provisioned instance cluster.

        ``min_pods_per_node`` is the operator's requirement: one app pod
        plus system daemonsets.  If the CNI budget cannot cover it the
        construction fails with a :class:`ConfigurationError` naming the
        fix (prefix delegation), which the environment layer applies.
        """
        cloud = cloud_cluster.cloud
        cni = cni or default_cni(cloud)
        plugin = CniPlugin(cni)
        n = cloud_cluster.size
        if not plugin.sufficient_for(min_pods_per_node, cluster_nodes=n):
            raise ConfigurationError(
                f"CNI {cni.plugin} provides "
                f"{plugin.pod_ip_capacity(cluster_nodes=n)} pod IPs/node at "
                f"{n} nodes; need {min_pods_per_node}. "
                "Patch the CNI daemonset to enable prefix delegation."
            )
        itype = cloud_cluster.instance_type
        ip_cap = plugin.pod_ip_capacity(cluster_nodes=n)
        nodes = []
        for inst in cloud_cluster.healthy_nodes:
            ext = {}
            if inst.usable_gpus:
                # Capacity appears only after the device-plugin daemonset.
                pass
            nodes.append(
                KubeNode(
                    name=inst.node_id,
                    cpu_cores=float(itype.cores),
                    memory_bytes=itype.memory_gb << 30,
                    extended_capacity=ext,
                    ip_capacity=ip_cap,
                    labels={"pool": "workers", "instance-type": itype.name},
                )
            )
        return cls(
            cloud_cluster=cloud_cluster,
            cni=cni,
            version=SERVICE_VERSIONS.get(cloud, "1.29"),
            service=SERVICE_NAMES.get(cloud, "k8s"),
            nodes=nodes,
            setup_seconds=90.0 + 0.4 * n,  # control plane + node registration
        )

    # -- operations -----------------------------------------------------------

    def deploy_daemonset(self, spec: DaemonSetSpec) -> DaemonSetRollout:
        rollout = DaemonSetRollout(spec)
        self.setup_seconds += rollout.deploy(self.nodes)
        self.daemonsets.append(rollout)
        return rollout

    def scheduler(self) -> KubeScheduler:
        return KubeScheduler(self.nodes)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def total_extended(self, resource: str) -> int:
        return sum(n.extended_capacity.get(resource, 0) for n in self.nodes)

"""DaemonSets used by the study environments.

Three daemonsets matter to the paper:

* the **NVIDIA device plugin** (all GPU clusters) exposing
  ``nvidia.com/gpu``;
* the **EFA device plugin** on EKS exposing ``vpc.amazonaws.com/efa``;
* the **AKS InfiniBand installer** the authors had to *write themselves*
  (§3.1 Development: "develop a custom daemonset to install InfiniBand
  drivers") — it compiles/loads the IB drivers on each AKS node and
  exposes ``rdma/ib``; without it, AKS pods fall back to kernel TCP.

A :class:`DaemonSetSpec` rolls one pod per node and contributes
per-node extended resources once ready.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.k8s.objects import KubeNode, Pod, PodPhase, ResourceRequest


@dataclass(frozen=True)
class DaemonSetSpec:
    """A daemonset definition."""

    name: str
    image: str
    #: extended resources each node advertises once the DS pod is ready
    provides: tuple[tuple[str, int], ...] = ()
    #: per-node rollout time, seconds (driver compile/install for AKS IB)
    rollout_seconds_per_node: float = 5.0
    host_network: bool = True
    #: whether this daemonset was developed in-house for the study
    custom_development: bool = False

    def pod_for(self, node: KubeNode) -> Pod:
        return Pod(
            name=f"{self.name}-{node.name}",
            image=self.image,
            resources=ResourceRequest(cpu_cores=0.1, memory_bytes=128 << 20),
            labels={"app": self.name, "kind": "daemonset"},
            host_network=self.host_network,
        )


NVIDIA_DEVICE_PLUGIN = DaemonSetSpec(
    name="nvidia-device-plugin",
    image="nvcr.io/nvidia/k8s-device-plugin:v0.14",
    provides=(("nvidia.com/gpu", 8),),
    rollout_seconds_per_node=8.0,
)

EFA_DEVICE_PLUGIN = DaemonSetSpec(
    name="aws-efa-k8s-device-plugin",
    image="aws/efa-device-plugin:v0.4",
    provides=(("vpc.amazonaws.com/efa", 1),),
    rollout_seconds_per_node=6.0,
)

#: The custom daemonset of §3.1 / converged-computing/aks-infiniband-install.
AKS_INFINIBAND_INSTALLER = DaemonSetSpec(
    name="aks-infiniband-install",
    image="ghcr.io/converged-computing/aks-infiniband-install:latest",
    provides=(("rdma/ib", 1),),
    rollout_seconds_per_node=45.0,  # driver build + modprobe per node
    custom_development=True,
)


@dataclass
class DaemonSetRollout:
    """Tracks a daemonset's rollout across a node set."""

    spec: DaemonSetSpec
    pods: list[Pod] = field(default_factory=list)

    def deploy(self, nodes: list[KubeNode]) -> float:
        """Place one pod per node; returns total rollout time.

        Rollout is parallel across nodes, so wall time is the per-node
        time (plus a small scheduling sweep proportional to node count).
        """
        for node in nodes:
            pod = self.spec.pod_for(node)
            pod.node_name = node.name
            pod.phase = PodPhase.RUNNING
            node.pods.append(pod)
            for resource, count in self.spec.provides:
                node.extended_capacity[resource] = count
            self.pods.append(pod)
        sweep = 0.02 * len(nodes)
        return self.spec.rollout_seconds_per_node + sweep

    @property
    def ready_count(self) -> int:
        return sum(1 for p in self.pods if p.phase is PodPhase.RUNNING)

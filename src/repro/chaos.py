"""Deterministic fault injection: prove the recovery invariants.

Fault tolerance that is merely *hoped for* rots; this module makes the
failure modes the resilient pool (:mod:`repro.parallel.pool`) and the
checkpoint journal (:mod:`repro.plan.journal`) recover from injectable
on demand, from the same keyed RNG discipline the simulation itself
uses (:func:`repro.rng.stream`).  A :class:`FaultPlan` names per-fault
probabilities; every injection decision is a pure function of
``(plan.seed, fault kind, cell coordinates)`` — never of call order,
worker count, or wall clock — so a chaos run is exactly reproducible
and the tests can assert byte-identical results *through* the faults.

Fault kinds:

* ``kill`` — the worker process SIGKILLs itself before executing the
  cell.  The pool sees ``BrokenProcessPool``, rebuilds, and requeues.
  Only fires in pool worker processes (:func:`mark_worker_process` is
  installed as the pool initializer); inline execution skips it, so
  ``workers=1`` runs complete and the parent never shoots itself.
* ``transient`` — raise :class:`~repro.errors.TransientShardError`
  before executing; the pool retries with deterministic backoff.
* ``corrupt`` — after the cell's summary is cached, overwrite the entry
  with undecodable bytes; the next probe must degrade through
  :meth:`~repro.sim.cache.RunCache.note_invalid` and re-execute.
* ``delay`` — sleep ``delay_seconds`` before executing; with a
  per-shard deadline configured this turns the cell into a straggler
  the pool must kill and re-dispatch.
* ``abort`` — raise :class:`~repro.errors.ChaosAbortError`, which the
  pool classifies as *fatal*: the run dies mid-flight (the model of the
  driver itself being killed), leaving the journal and caches behind
  for a ``--resume`` cycle to pick up.

Convergence: injection is gated on the shard's ``attempt`` number
(``attempt <= max_attempt``, default 0 — first attempts only), so a
retried or requeued shard executes clean and every recovery ladder
terminates deterministically.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, fields

from repro.errors import ChaosAbortError, ConfigurationError, TransientShardError
from repro.rng import stream
from repro.telemetry import span

#: set by the pool's worker initializer; gates the ``kill`` fault so
#: inline (parent-process) execution never SIGKILLs the driver
_IN_WORKER = False


def mark_worker_process() -> None:
    """Record that this process is a pool worker (pool initializer)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    return _IN_WORKER


_RATE_FIELDS = ("kill", "transient", "corrupt", "delay", "abort")


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault probabilities, keyed off one chaos seed.

    A pure value: it rides on :class:`~repro.parallel.shard.StudyShard`
    like the ``trace``/``transport`` flags do and never participates in
    cache keys or simulation — any plan yields byte-identical merged
    results to a fault-free run (that is the point).
    """

    kill: float = 0.0
    transient: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    abort: float = 0.0
    #: how long a ``delay`` fault stalls the cell
    delay_seconds: float = 0.05
    #: chaos RNG seed — independent of the study seed
    seed: int = 0
    #: inject only while ``shard.attempt <= max_attempt``; 0 means first
    #: attempts only, which guarantees retries converge
    max_attempt: int = 0

    def __post_init__(self):
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"chaos rate {name}={rate!r} must be within [0, 1]"
                )
        if self.delay_seconds < 0:
            raise ConfigurationError("chaos delay_seconds must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """A plan from a ``--chaos`` CLI spec: ``kill=0.1,transient=0.1,seed=7``.

        Keys are the dataclass fields; values parse as float (int for
        ``seed``/``max_attempt``).  Unknown keys and unparsable values
        raise :class:`~repro.errors.ConfigurationError` usage messages.
        """
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ConfigurationError(
                    f"bad chaos spec entry {part!r}: expected key=value with "
                    f"key one of {', '.join(sorted(known))}"
                )
            try:
                if key in ("seed", "max_attempt"):
                    kwargs[key] = int(value)
                else:
                    kwargs[key] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad chaos spec value {value!r} for {key}"
                ) from None
        return cls(**kwargs)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def digest(self) -> str:
        """A short content digest of the plan (for artifacts and logs)."""
        import hashlib
        import json

        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def _roll(self, kind: str, key: tuple) -> bool:
        """One keyed injection decision — pure in (seed, kind, key)."""
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return float(stream(self.seed, "chaos", kind, *key).random()) < rate


def _cell_key(shard) -> tuple:
    return (
        getattr(shard, "env_id", None),
        getattr(shard, "scale", None),
        getattr(shard, "world", 0),
    )


def _armed(shard) -> "FaultPlan | None":
    plan = getattr(shard, "chaos", None)
    if plan is None or not plan.any_faults:
        return None
    if getattr(shard, "attempt", 0) > plan.max_attempt:
        return None
    return plan


def inject_before_execute(shard) -> None:
    """Fire pre-execution faults for ``shard``, per its plan.

    Order: delay (stall), then kill (die), then abort (fatal), then
    transient (retryable) — a cell drawn for several kinds exhibits the
    most destructive one that applies in this process.
    """
    plan = _armed(shard)
    if plan is None:
        return
    key = _cell_key(shard)
    if plan._roll("delay", key):
        with span("chaos.inject", kind="delay", env=shard.env_id, scale=shard.scale):
            time.sleep(plan.delay_seconds)
    if _IN_WORKER and plan._roll("kill", key):
        # No span: the process is gone before it could close.  The pool
        # observes BrokenProcessPool, rebuilds, and requeues.
        os.kill(os.getpid(), signal.SIGKILL)
    if plan._roll("abort", key):
        raise ChaosAbortError(
            f"chaos: injected fatal abort in cell ({shard.env_id}, "
            f"{shard.scale}) of world {shard.world}"
        )
    if plan._roll("transient", key):
        with span("chaos.inject", kind="transient", env=shard.env_id, scale=shard.scale):
            raise TransientShardError(
                f"chaos: injected transient fault in cell ({shard.env_id}, "
                f"{shard.scale}) of world {shard.world}",
                injected=True,
            )


def corrupt_after_store(shard, cache, key: str) -> None:
    """Maybe poison the cell entry just written under ``key``.

    Runs after :func:`~repro.parallel.shard._finish_shard` stores the
    summary: the *returned* result is untouched (byte-identity holds);
    only the next probe of this entry degrades — through
    ``note_invalid`` — and re-executes.
    """
    plan = _armed(shard)
    if plan is None:
        return
    if plan._roll("corrupt", _cell_key(shard)):
        with span("chaos.inject", kind="corrupt", env=shard.env_id, scale=shard.scale):
            cache.poison(key)

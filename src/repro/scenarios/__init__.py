"""Declarative what-if scenarios over the baseline study.

The baseline reproduction replays exactly one world — the paper's:
Table 1 environments, on-demand pricing, the observed fault and quota
behaviour.  This package runs the *same campaign machinery* under
declarative counterfactual overlays and compares the outcomes:

* :mod:`~repro.scenarios.spec` — typed perturbations composed into a
  :class:`Scenario` (loadable from dicts/JSON);
* :mod:`~repro.scenarios.market` — the spot/preemptible instance market
  (discount curve, keyed preemption draws);
* :mod:`~repro.scenarios.presets` — the named registry
  (``spot-everything``, ``azure-price-spike``, ``quota-crunch``, …);
* :mod:`~repro.scenarios.apply` — pure overlays: nothing shared is ever
  mutated, each shard overlays its own provider/engine;
* :mod:`~repro.scenarios.sweep` — :class:`ScenarioSweep` fans N
  scenarios × the campaign's (environment, size) cells through
  :mod:`repro.parallel` and folds a per-scenario delta report.

Quickstart::

    from repro import StudyConfig
    from repro.scenarios import ScenarioSweep, scenario

    sweep = ScenarioSweep(StudyConfig.smoke(), [scenario("spot-everything")])
    result = sweep.run()
    print(result.render_deltas())
"""

from repro.scenarios.market import Preemption, SpotMarket, draw_preemption
from repro.scenarios.presets import BASELINE, SCENARIOS, register_scenario, scenario
from repro.scenarios.spec import (
    FabricDegradation,
    FaultScaling,
    PriceShock,
    QuotaSqueeze,
    ReportingShift,
    Scenario,
    active,
)

__all__ = [
    "BASELINE",
    "FabricDegradation",
    "FaultScaling",
    "Preemption",
    "PriceShock",
    "QuotaSqueeze",
    "ReportingShift",
    "SCENARIOS",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioSweep",
    "SpotMarket",
    "SweepResult",
    "active",
    "draw_preemption",
    "register_scenario",
    "scenario",
]

_SWEEP_EXPORTS = ("ScenarioSweep", "ScenarioOutcome", "SweepResult")


def __getattr__(name: str):
    # The sweep pulls in repro.core.study, which sits *above* the sim
    # layer that imports this package — so it loads lazily to keep the
    # import graph acyclic.
    if name in _SWEEP_EXPORTS:
        from repro.scenarios import sweep as _sweep

        return getattr(_sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The spot/preemptible instance market: discount curve + keyed preemptions.

None of the study's clouds were used with spot pricing — the paper ran
everything on-demand so a preempted cluster could never corrupt a
result.  §4.2's cost discussion is exactly why the counterfactual is
interesting: spot capacity trades a steep discount (historically 60–90%
off on-demand) for the risk of reclamation mid-run.  This module models
that trade as two curves:

* a **discount curve** — the spot discount shrinks as the requested
  pool grows (large contiguous pools are scarcer, so the market prices
  them closer to on-demand);
* a **preemption process** — reclamations arrive as a Poisson process
  per wall-clock hour of exposure; a reclaimed run dies partway through
  and its FOM is lost, but the consumed node-hours are still billed.

Every preemption draw comes from
``stream(seed, "scenario", scenario_id, "preempt", env, app, scale, it)``
— keyed on the run's own coordinates, never on call order — so a spot
scenario is byte-identical for any worker count, exactly like the
baseline study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import stream, stream_block
from repro.units import HOUR


@dataclass(frozen=True)
class SpotMarket:
    """A spot market replacing on-demand capacity on selected clouds."""

    #: the overlay hooks this perturbation activates (incremental diffing)
    hook = "price_overlay + keyed preemptions"

    #: cloud short names bought on the spot market ("p" is meaningless
    #: here: on-prem capacity has no market)
    clouds: tuple[str, ...] = ("aws", "az", "g")
    #: discount off on-demand for a single node (fraction in [0, 1))
    base_discount: float = 0.65
    #: pool size at which the discount has fallen to half of base
    discount_halving_nodes: float = 512.0
    #: mean reclamations per node-pool per wall-clock hour of exposure
    preemptions_per_hour: float = 0.12

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_discount < 1.0:
            raise ConfigurationError("spot base_discount must be in [0, 1)")
        if self.discount_halving_nodes <= 0:
            raise ConfigurationError("spot discount_halving_nodes must be positive")
        if self.preemptions_per_hour < 0:
            raise ConfigurationError("spot preemptions_per_hour must be non-negative")

    def touches(self, cloud: str) -> bool:
        """Whether the market can change a cell on ``cloud`` at all."""
        return cloud != "p" and cloud in self.clouds

    def discount_for(self, nodes: int) -> float:
        """Spot discount for a pool of ``nodes`` (shrinks with size)."""
        if nodes < 0:
            raise ValueError("pool size must be non-negative")
        return self.base_discount / (1.0 + nodes / self.discount_halving_nodes)

    def price_multiplier(self, nodes: int) -> float:
        """Hourly-rate multiplier vs on-demand for a pool of ``nodes``."""
        return 1.0 - self.discount_for(nodes)


@dataclass(frozen=True)
class Preemption:
    """A reclamation that killed a run partway through."""

    #: fraction of the run's wall time that elapsed before the reclaim
    at_fraction: float


def draw_preemption(
    spot: SpotMarket,
    seed: int,
    scenario_id: str,
    env_id: str,
    app: str,
    scale: int,
    iteration: int,
    duration_s: float,
) -> Preemption | None:
    """One keyed preemption draw for one run; ``None`` if it survives.

    The survival probability is ``exp(-rate × hours)`` — a Poisson
    arrival process over the run's wall-clock exposure.  The reclaim
    instant, when one arrives, is uniform over the run.
    """
    if spot.preemptions_per_hour <= 0:
        return None
    rng = stream(seed, "scenario", scenario_id, "preempt", env_id, app, scale, iteration)
    hit = 1.0 - math.exp(-spot.preemptions_per_hour * duration_s / HOUR)
    if rng.random() >= hit:
        return None
    return Preemption(at_fraction=float(rng.uniform(0.05, 0.95)))


def preemption_block(
    spot: SpotMarket,
    seed: int,
    scenario_id: str,
    env_id: str,
    app: str,
    scale: int,
    iterations,
    durations: np.ndarray,
) -> np.ndarray:
    """Keyed preemption draws for a whole batched group at once.

    Returns one ``at_fraction`` per iteration, NaN for survivors —
    entry ``j`` matches :func:`draw_preemption` for
    ``(iterations[j], durations[j])`` bit for bit.  The hit probability
    and the conditional reclaim-instant draw are evaluated per stream
    (the second draw only happens on a reclaim, exactly like the scalar
    path), but all streams are seeded in one vectorized pass.
    """
    iterations = np.asarray(iterations, dtype=np.int64)
    out = np.full(len(iterations), np.nan)
    if spot.preemptions_per_hour <= 0:
        return out
    block = stream_block(
        seed, "scenario", scenario_id, "preempt", env_id, app, scale,
        iterations=iterations,
    )
    for j in range(len(iterations)):
        rng = block.generator(j)
        hit = 1.0 - math.exp(-spot.preemptions_per_hour * float(durations[j]) / HOUR)
        if rng.random() < hit:
            out[j] = float(rng.uniform(0.05, 0.95))
    return out

"""Named scenario presets: the counterfactuals the paper begs for.

Each preset is one question §3–§4 of the paper leaves open.  The
registry is ordered (insertion order is display order) and extensible —
:func:`register_scenario` admits user-defined scenarios, and
:func:`scenario` resolves a name with a helpful error.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.market import SpotMarket
from repro.scenarios.spec import (
    FabricDegradation,
    FaultScaling,
    PriceShock,
    QuotaSqueeze,
    ReportingShift,
    Scenario,
)

#: The empty scenario: the study exactly as it ran.
BASELINE = Scenario(
    scenario_id="baseline",
    description="the study as it ran: on-demand pricing, observed faults",
)

_PRESETS = (
    BASELINE,
    Scenario(
        scenario_id="spot-everything",
        description="every cloud bought on the spot market (steep discount, "
        "Poisson preemptions)",
        spot=SpotMarket(
            clouds=("aws", "az", "g"),
            base_discount=0.62,
            discount_halving_nodes=512.0,
            preemptions_per_hour=0.35,
        ),
    ),
    Scenario(
        scenario_id="spot-aws",
        description="only AWS on spot: gentler discount, gentler reclaim rate",
        spot=SpotMarket(
            clouds=("aws",),
            base_discount=0.55,
            discount_halving_nodes=384.0,
            preemptions_per_hour=0.15,
        ),
    ),
    Scenario(
        scenario_id="azure-price-spike",
        description="Azure demand spike: every Azure hourly rate x2.5",
        price_shocks=(PriceShock(cloud="az", multiplier=2.5),),
    ),
    Scenario(
        scenario_id="price-war",
        description="a cloud price war: 20% off every on-demand rate",
        price_shocks=(
            PriceShock(cloud="aws", multiplier=0.8),
            PriceShock(cloud="az", multiplier=0.8),
            PriceShock(cloud="g", multiplier=0.8),
        ),
    ),
    Scenario(
        scenario_id="quota-crunch",
        description="a capacity crunch: grant odds x0.35, grant delays x3",
        quota=QuotaSqueeze(grant_probability_scale=0.35, delay_scale=3.0),
    ),
    Scenario(
        scenario_id="degraded-efa",
        description="a degraded EFA season on AWS: latency x3, bandwidth x0.6",
        fabric=FabricDegradation(
            latency_multiplier=3.0, bandwidth_multiplier=0.6, clouds=("aws",)
        ),
    ),
    Scenario(
        scenario_id="congested-fabrics",
        description="noisy-neighbour congestion on every cloud fabric: "
        "latency x1.5, bandwidth x0.8, jitter x2",
        fabric=FabricDegradation(
            latency_multiplier=1.5,
            bandwidth_multiplier=0.8,
            jitter_multiplier=2.0,
            clouds=("aws", "az", "g"),
        ),
    ),
    Scenario(
        scenario_id="laggy-bills",
        description="worst-case cost-reporting lag (2-3 days) on every cloud",
        reporting=ReportingShift(lag_hours=(("aws", 48.0), ("az", 72.0), ("g", 48.0))),
    ),
    Scenario(
        scenario_id="flaky-clouds",
        description="twice the documented fault rates during bring-up",
        faults=FaultScaling(scale=2.0),
    ),
    Scenario(
        scenario_id="calm-seas",
        description="a perfect week: no provisioning faults fire at all",
        faults=FaultScaling(scale=0.0),
    ),
)

#: Registered scenarios by id, in display order.
SCENARIOS: dict[str, Scenario] = {s.scenario_id: s for s in _PRESETS}


def scenario(scenario_id: str) -> Scenario:
    """Look up a registered scenario by id."""
    try:
        return SCENARIOS[scenario_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_id!r}; registered: {', '.join(SCENARIOS)}"
        ) from None


def register_scenario(scn: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (e.g. one loaded from JSON)."""
    if not replace and scn.scenario_id in SCENARIOS:
        raise ConfigurationError(f"scenario {scn.scenario_id!r} already registered")
    SCENARIOS[scn.scenario_id] = scn
    return scn


def scenario_grid(
    scenarios,
    *,
    include_baseline: bool = True,
) -> list[Scenario]:
    """Validate and order a list of worlds for a sweep or ensemble.

    Checks the two invariants every multi-world plan needs — unique ids,
    and the label ``"baseline"`` reserved for the empty scenario — and
    injects :data:`BASELINE` at the front when no world is a baseline
    (unless ``include_baseline`` is off).  Raises :class:`ValueError` so
    callers that validate user input surface a clean message.
    """
    worlds = list(scenarios)
    counts: dict[str, int] = {}
    for scn in worlds:
        counts[scn.scenario_id] = counts.get(scn.scenario_id, 0) + 1
        if scn.scenario_id == "baseline" and not scn.is_baseline:
            # The label "baseline" is reserved for the empty world; a
            # perturbed scenario wearing it would silently replace the
            # real baseline in the outcome map.
            raise ValueError(
                "scenario id 'baseline' is reserved for the empty scenario"
            )
    duplicates = [sid for sid, n in counts.items() if n > 1]
    if duplicates:
        # Name *every* offender (with multiplicity), not just the first:
        # a sweep generated from a config file may repeat several ids,
        # and the user should fix them all in one round trip.
        detail = ", ".join(f"{sid!r} x{counts[sid]}" for sid in duplicates)
        raise ValueError(
            f"duplicate scenario ids in sweep: {detail} "
            "(every world needs a unique id)"
        )
    if include_baseline and not any(s.is_baseline for s in worlds):
        worlds.insert(0, BASELINE)
    return worlds

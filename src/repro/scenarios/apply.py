"""Applying a scenario: pure overlays over the baseline substrate.

A scenario never mutates shared state — not the instance catalog, not
the fault registry, not the quota friction table, not a registered
fabric.  Instead each shard builds its *own* provider and engine (it
always did; that is what makes cells parallel), and this module layers
the scenario onto those per-shard instances:

* :func:`overlay_provider` — configures a freshly constructed
  :class:`~repro.cloud.providers.CloudProvider` with the scenario's
  price overlay, quota friction overrides, fault scaling, and
  reporting-lag shifts;
* :func:`overlay_fabric` — derives the degraded copy of a fabric the
  execution engine should hand to the app models;
* :func:`quota_friction_overrides` — the squeezed per-(cloud, class)
  friction table a ledger consults before the module-level defaults.

Because every overlay is either a derived value or a field on an object
the shard owns, running a scenario and running the baseline in the same
process can never contaminate each other.
"""

from __future__ import annotations

from repro.cloud.quota import QUOTA_FRICTION, QuotaFriction
from repro.network.fabric import Fabric
from repro.scenarios.spec import QuotaSqueeze, Scenario, active


def quota_friction_overrides(
    squeeze: QuotaSqueeze,
) -> dict[tuple[str, str], QuotaFriction]:
    """The squeezed friction table for a ledger's ``friction_overrides``.

    Grant probabilities scale down (clamped to [0, 1]), delays stretch,
    usage windows survive unchanged.  On-prem has no quota workflow, so
    ``p`` entries are never squeezed.
    """
    out: dict[tuple[str, str], QuotaFriction] = {}
    for (cloud, resource_class), friction in QUOTA_FRICTION.items():
        if cloud == "p":
            continue
        if squeeze.clouds is not None and cloud not in squeeze.clouds:
            continue
        lo, hi = friction.delay_days
        out[(cloud, resource_class)] = QuotaFriction(
            grant_probability=max(
                0.0, min(1.0, friction.grant_probability * squeeze.grant_probability_scale)
            ),
            delay_days=(lo * squeeze.delay_scale, hi * squeeze.delay_scale),
            window_hours=friction.window_hours,
        )
    return out


def overlay_provider(provider, scenario: Scenario | None):
    """Configure a shard-local provider for a scenario; returns it.

    A no-op for the baseline (``None`` or an empty scenario), so the
    overlaid path is byte-identical to the pre-scenario code path.

    The overlay applies the scenario's *footprint* for the provider's
    cloud (:meth:`~repro.scenarios.spec.Scenario.footprint`): a
    scenario whose perturbations cannot touch this cloud configures
    nothing at all, so an untouched cell is baseline by construction —
    the invariant the incremental planner's cache reuse stands on.
    """
    scn = active(scenario)
    if scn is None:
        return provider
    cloud = provider.short_name
    scn = scn.footprint(cloud)
    if scn is None:
        return provider
    if scn.reporting is not None:
        provider.meter.lag_overrides.update(dict(scn.reporting.lag_hours))
    if scn.quota is not None:
        provider.ledger.friction_overrides.update(quota_friction_overrides(scn.quota))
    if scn.faults is not None and (
        scn.faults.clouds is None or cloud in scn.faults.clouds
    ):
        provider.provisioner.fault_scale = scn.faults.scale
    provider.provisioner.price_overlay = (
        lambda itype, nodes: scn.price_multiplier(itype.cloud, nodes)
    )
    return provider


def overlay_fabric(fabric: Fabric, scenario: Scenario | None, cloud: str) -> Fabric:
    """The fabric an engine should use for ``cloud`` under a scenario."""
    scn = active(scenario)
    if scn is None or scn.fabric is None:
        return fabric
    deg = scn.fabric
    if deg.clouds is not None and cloud not in deg.clouds:
        return fabric
    return fabric.overlaid(
        latency_multiplier=deg.latency_multiplier,
        bandwidth_multiplier=deg.bandwidth_multiplier,
        overhead_multiplier=deg.overhead_multiplier,
        jitter_multiplier=deg.jitter_multiplier,
    )

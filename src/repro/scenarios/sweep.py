"""Scenario sweeps: N counterfactual worlds × the campaign's cells.

A :class:`ScenarioSweep` is the plan/execute layer of the scenario
engine.  It reuses the study's own parallel machinery — every scenario
is planned as the usual (environment, size) cells, all cells of all
worlds are flattened into *one* work list, and :func:`repro.parallel.pool.pmap`
fans that list across the worker pool.  A 4-scenario sweep over a
14-cell campaign is simply 56 shards; worlds make progress concurrently
instead of queueing behind each other.

Container builds are scenario-independent (no perturbation touches the
build matrix), so the sweep builds the matrix once and seeds every
world's incident log with a fresh copy of the build incidents — exactly
what :class:`~repro.core.study.StudyRunner` does per campaign.

Determinism carries over unchanged: each shard is pure, each scenario's
randomness is keyed (never drawn from call order), so any worker count
produces byte-identical per-scenario datasets, and the baseline world of
a sweep is byte-identical to a plain :class:`StudyRunner` campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.study import StudyConfig, StudyReport, StudyRunner
from repro.reporting.deltas import delta_table, scenario_deltas
from repro.reporting.tables import render_table
from repro.scenarios.presets import scenario_grid
from repro.scenarios.spec import Scenario


@dataclass(frozen=True)
class ScenarioOutcome:
    """One world's campaign: the scenario and everything it produced."""

    scenario: Scenario
    report: StudyReport


@dataclass
class SweepResult:
    """Every world of a sweep, baseline first (insertion order)."""

    outcomes: dict[str, ScenarioOutcome]

    @property
    def baseline(self) -> StudyReport:
        for outcome in self.outcomes.values():
            if outcome.scenario.is_baseline:
                return outcome.report
        raise ValueError(
            "this sweep has no baseline world to compare against (it ran "
            "with include_baseline=False); re-run with a baseline to build "
            "a delta report"
        )

    @property
    def reports(self) -> dict[str, StudyReport]:
        """Scenario id → study report, baseline included."""
        return {sid: outcome.report for sid, outcome in self.outcomes.items()}

    def _counterfactuals(self) -> dict[str, StudyReport]:
        return {
            sid: outcome.report
            for sid, outcome in self.outcomes.items()
            if not outcome.scenario.is_baseline
        }

    def deltas(self):
        """Per-scenario :class:`~repro.reporting.deltas.ScenarioDelta` rows."""
        return scenario_deltas(self.baseline, self._counterfactuals())

    def delta_table(self):
        """The what-if comparison as a :class:`~repro.reporting.tables.Table`."""
        return delta_table(self.baseline, self._counterfactuals())

    def render_deltas(self) -> str:
        """The delta report as fixed-width text."""
        return render_table(self.delta_table())


class ScenarioSweep:
    """Runs a study under N scenarios and compares them to the baseline.

    ``workers`` and ``cache_dir`` behave exactly as on
    :class:`~repro.core.study.StudyRunner`; the cache keys embed each
    scenario's digest, so worlds never share entries but each world
    replays its own on a repeat sweep.
    """

    def __init__(
        self,
        config: StudyConfig,
        scenarios: Iterable[Scenario] | Sequence[Scenario],
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        include_baseline: bool = True,
    ):
        self.config = config
        self.scenarios = list(scenarios)
        self.workers = workers
        self.cache_dir = cache_dir
        self.include_baseline = include_baseline
        # Fail fast on duplicate/reserved ids — before any world runs.
        scenario_grid(self.scenarios, include_baseline=include_baseline)

    def _worlds(self) -> list[Scenario]:
        return scenario_grid(self.scenarios, include_baseline=self.include_baseline)

    def run(self) -> SweepResult:
        """Execute every world; returns per-scenario reports."""
        # Imported lazily: repro.parallel sits below this module in the
        # import graph (its shards import repro.scenarios.spec).
        from repro.parallel.merge import merge_shard_results
        from repro.parallel.pool import pmap
        from repro.parallel.shard import execute_shard, plan_shards

        builder_runner = StudyRunner(self.config)
        builder_runner.build_containers()
        build_incidents = builder_runner.incidents

        worlds = self._worlds()
        plans = [
            plan_shards(self.config, cache_dir=self.cache_dir, scenario=scn)
            for scn in worlds
        ]
        flat = [shard for shards in plans for shard in shards]
        results = pmap(execute_shard, flat, workers=self.workers)

        outcomes: dict[str, ScenarioOutcome] = {}
        position = 0
        for scn, shards in zip(worlds, plans):
            chunk = results[position:position + len(shards)]
            position += len(shards)
            merged = merge_shard_results(
                chunk,
                incidents={env: list(incs) for env, incs in build_incidents.items()},
            )
            # Worlds keep their own ids (the injected BASELINE's id is
            # "baseline"), so no two worlds can ever share a label.
            outcomes[scn.scenario_id] = ScenarioOutcome(
                scenario=scn,
                report=StudyReport(
                    store=merged.store,
                    incidents=merged.incidents,
                    spend_by_cloud=merged.spend_by_cloud,
                    containers_built=builder_runner.builder.built,
                    containers_failed=builder_runner.builder.failed,
                    clusters_created=merged.clusters_created,
                    cache_hits=merged.cache_hits,
                    cache_misses=merged.cache_misses,
                ),
            )
        return SweepResult(outcomes=outcomes)

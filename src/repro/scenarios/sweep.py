"""Scenario sweeps: N counterfactual worlds × the campaign's cells.

A :class:`ScenarioSweep` is a thin front-end over the shared execution
planner (:mod:`repro.plan`): the scenario list *compiles* to one
:class:`~repro.plan.ir.RunPlan` — one world per scenario, the usual
(environment, size) cells world-major in one flat shard list — and the
single :class:`~repro.plan.executor.PlanExecutor` fans it across the
worker pool.  A 4-scenario sweep over a 14-cell campaign is simply 56
shards; worlds make progress concurrently instead of queueing behind
each other.

Container builds are scenario-independent (no perturbation touches the
build matrix), so the sweep builds the matrix once and seeds every
world's incident log with a fresh copy of the build incidents — exactly
what :class:`~repro.core.study.StudyRunner` does per campaign.

Determinism carries over unchanged: each shard is pure, each scenario's
randomness is keyed (never drawn from call order), so any worker count
produces byte-identical per-scenario datasets, and the baseline world of
a sweep is byte-identical to a plain :class:`StudyRunner` campaign.

**Incremental sweeps** (``incremental=True``, requires ``cache_dir``)
exploit cell-granular reuse: the baseline campaign executes first, then
every scenario world runs through the executor's incremental mode
(:mod:`repro.plan.diff`) — cells a scenario cannot touch attach their
folded summaries from the cache the baseline just wrote, and only the
touched cells simulate.  A 50-scenario sweep where each scenario
perturbs one environment re-simulates ~one cell per world instead of
all of them, with byte-identical per-scenario datasets
(``benchmarks/test_bench_incremental.py`` keeps the receipt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.study import StudyConfig, StudyReport, StudyRunner
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # repro.plan sits below this module in the import graph
    from repro.parallel.pool import FaultStats
    from repro.plan.executor import ReuseStats
from repro.reporting.deltas import delta_table, scenario_deltas
from repro.reporting.tables import render_table
from repro.scenarios.presets import scenario_grid
from repro.scenarios.spec import Scenario
from repro.telemetry import span


@dataclass(frozen=True)
class ScenarioOutcome:
    """One world's campaign: the scenario and everything it produced."""

    scenario: Scenario
    report: StudyReport


@dataclass
class SweepResult:
    """Every world of a sweep, baseline first (insertion order).

    ``reuse`` carries the incremental run's cell accounting
    (:class:`~repro.plan.executor.ReuseStats`): how many cells the diff
    classified reusable/dirty, how many actually attached from cache,
    how many executed, and how many cache entries were malformed on the
    reuse path (each of those re-executed and left a warning trace —
    degradation is surfaced, never silent).  ``None`` for from-scratch
    sweeps.
    """

    outcomes: dict[str, ScenarioOutcome]
    reuse: "ReuseStats | None" = None
    #: recovery accounting summed over every executor the sweep ran
    #: (``None`` when fault tolerance saw no action)
    faults: "FaultStats | None" = None

    @property
    def baseline(self) -> StudyReport:
        for outcome in self.outcomes.values():
            if outcome.scenario.is_baseline:
                return outcome.report
        raise ValueError(
            "this sweep has no baseline world to compare against (it ran "
            "with include_baseline=False); re-run with a baseline to build "
            "a delta report"
        )

    @property
    def reports(self) -> dict[str, StudyReport]:
        """Scenario id → study report, baseline included."""
        return {sid: outcome.report for sid, outcome in self.outcomes.items()}

    def _counterfactuals(self) -> dict[str, StudyReport]:
        return {
            sid: outcome.report
            for sid, outcome in self.outcomes.items()
            if not outcome.scenario.is_baseline
        }

    def deltas(self):
        """Per-scenario :class:`~repro.reporting.deltas.ScenarioDelta` rows."""
        return scenario_deltas(self.baseline, self._counterfactuals())

    def delta_table(self):
        """The what-if comparison as a :class:`~repro.reporting.tables.Table`."""
        return delta_table(self.baseline, self._counterfactuals())

    def render_deltas(self) -> str:
        """The delta report as fixed-width text."""
        return render_table(self.delta_table())

    def to_json_dict(self) -> dict:
        """A JSON-safe snapshot: per-world summaries plus delta rows.

        Delta rows need a baseline world to diff against; a sweep run
        with ``include_baseline=False`` exports summaries only.
        """
        from dataclasses import asdict

        out: dict = {
            "scenarios": list(self.outcomes),
            "reports": {
                sid: outcome.report.to_json_dict()["summary"]
                for sid, outcome in self.outcomes.items()
            },
        }
        if any(o.scenario.is_baseline for o in self.outcomes.values()):
            out["deltas"] = [asdict(delta) for delta in self.deltas()]
        if self.reuse is not None:
            out["cell_reuse"] = self.reuse.to_dict()
        if self.faults is not None and self.faults.activity:
            out["faults"] = self.faults.to_dict()
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        import json

        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)


class ScenarioSweep:
    """Runs a study under N scenarios and compares them to the baseline.

    ``workers`` and ``cache_dir`` behave exactly as on
    :class:`~repro.core.study.StudyRunner`; the cache keys embed each
    scenario's digest, so worlds never share entries but each world
    replays its own on a repeat sweep.
    """

    def __init__(
        self,
        config: StudyConfig,
        scenarios: Iterable[Scenario] | Sequence[Scenario],
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        include_baseline: bool = True,
        incremental: bool = False,
        transport: str = "auto",
        retry=None,
        chaos=None,
        resume: bool = False,
    ):
        if incremental and cache_dir is None:
            raise ConfigurationError(
                "an incremental sweep needs a cache directory: untouched "
                "cells attach from the cell-level cache the baseline "
                "campaign writes (pass cache_dir=...)"
            )
        if resume and cache_dir is None:
            raise ConfigurationError(
                "resume needs a cache directory: completed cells re-attach "
                "through the journal and caches the interrupted run wrote "
                "(pass cache_dir=...)"
            )
        self.config = config
        self.scenarios = list(scenarios)
        self.workers = workers
        self.transport = transport
        self.cache_dir = cache_dir
        self.include_baseline = include_baseline
        self.incremental = incremental
        self.retry = retry
        self.chaos = chaos
        self.resume = resume
        # Fail fast on duplicate/reserved ids — before any world runs.
        scenario_grid(self.scenarios, include_baseline=include_baseline)

    def _worlds(self) -> list[Scenario]:
        return scenario_grid(self.scenarios, include_baseline=self.include_baseline)

    def compile(self):
        """The whole sweep as one :class:`~repro.plan.ir.RunPlan`."""
        # Imported lazily: repro.plan sits below this module in the
        # import graph (its shards import repro.scenarios.spec).
        from repro.plan import compile_scenarios

        return compile_scenarios(
            self.config,
            self.scenarios,
            cache_dir=self.cache_dir,
            include_baseline=self.include_baseline,
        )

    def run(self) -> SweepResult:
        """Execute every world; returns per-scenario reports.

        An incremental sweep runs in two phases: the baseline campaign
        first (warming the cell-level cache), then every scenario world
        through the executor's diff-aware mode, which attaches untouched
        cells from that cache.  Per-scenario datasets are byte-identical
        to a from-scratch sweep either way; only the cache/reuse
        counters differ.
        """
        from repro.parallel.pool import FaultStats
        from repro.plan import PlanExecutor, compile_study

        builder_runner = StudyRunner(self.config)
        builder_runner.build_containers()
        build_incidents = builder_runner.incidents

        outcomes: dict[str, ScenarioOutcome] = {}

        def fold(world, merged) -> None:
            # Worlds keep their own ids (the injected BASELINE's id is
            # "baseline"), so no two worlds can ever share a label.
            scn = world.scenario
            outcomes[scn.scenario_id] = ScenarioOutcome(
                scenario=scn,
                report=StudyReport(
                    store=merged.store,
                    incidents=merged.incidents,
                    spend_by_cloud=merged.spend_by_cloud,
                    containers_built=builder_runner.builder.built,
                    containers_failed=builder_runner.builder.failed,
                    clusters_created=merged.clusters_created,
                    cache_hits=merged.cache_hits,
                    cache_misses=merged.cache_misses,
                    cache_invalid=merged.cache_invalid,
                    cache_invalid_reasons=merged.cache_invalid_reasons,
                ),
            )

        with span(
            "sweep.run",
            worlds=len(self._worlds()),
            workers=self.workers,
            incremental=self.incremental,
        ):
            if not self.incremental:
                executor = PlanExecutor(
                    self.compile(),
                    workers=self.workers,
                    transport=self.transport,
                    retry=self.retry,
                    chaos=self.chaos,
                    resume=self.resume,
                )
                for world, merged in executor.merged_worlds(seed_incidents=build_incidents):
                    fold(world, merged)
                faults = executor.faults if executor.faults.activity else None
                return SweepResult(outcomes=outcomes, faults=faults)

            # Phase 1: the baseline campaign (the reference every scenario
            # world diffs against).  With include_baseline=False the sweep
            # still executes it — its cells are what the variants reuse —
            # but keeps it out of the reported outcomes.
            plan = self.compile()
            base_plan, rest_plan = plan.split_baseline()
            emit_baseline = base_plan.n_shards > 0
            if not emit_baseline:
                base_plan = compile_study(self.config, cache_dir=self.cache_dir)
            base_executor = PlanExecutor(
                base_plan,
                workers=self.workers,
                transport=self.transport,
                retry=self.retry,
                chaos=self.chaos,
                resume=self.resume,
            )
            for world, merged in base_executor.merged_worlds(seed_incidents=build_incidents):
                if emit_baseline:
                    fold(world, merged)

            # Phase 2: every scenario world, diff-aware.  Untouched cells
            # attach from the cell cache phase 1 just wrote; only touched
            # cells dispatch to shards.
            inc_executor = PlanExecutor(
                rest_plan,
                workers=self.workers,
                incremental=True,
                baseline=base_plan,
                transport=self.transport,
                retry=self.retry,
                chaos=self.chaos,
                resume=self.resume,
            )
            for world, merged in inc_executor.merged_worlds(seed_incidents=build_incidents):
                fold(world, merged)
            faults = FaultStats()
            faults.add(base_executor.faults)
            faults.add(inc_executor.faults)
            return SweepResult(
                outcomes=outcomes,
                reuse=inc_executor.reuse,
                faults=faults if faults.activity else None,
            )

"""Scenario specs: typed, declarative counterfactual overlays.

A :class:`Scenario` is a pure value describing how a what-if world
differs from the study's baseline: which clouds run on the spot market,
whose prices spiked, how much tighter quotas got, how degraded the
fabrics are, how late the bills arrive, and how flaky provisioning is.
Scenarios never *do* anything — :mod:`repro.scenarios.apply` turns them
into per-shard overlays, and :mod:`repro.scenarios.sweep` fans them
across the existing parallel campaign machinery.

Scenarios load from plain dicts (and therefore JSON) via
:meth:`Scenario.from_dict`, round-trip through :meth:`Scenario.to_dict`,
and hash to a stable :meth:`Scenario.digest` that the run cache embeds
in its keys so two worlds never share an entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.scenarios.market import SpotMarket


@dataclass(frozen=True)
class PriceShock:
    """A per-cloud multiplier on every hourly rate (demand spike, sale)."""

    #: the overlay hook this perturbation activates (incremental diffing)
    hook = "effective_rate"

    cloud: str
    multiplier: float

    def __post_init__(self) -> None:
        if self.multiplier < 0:
            raise ConfigurationError("price shock multiplier must be non-negative")

    def touches(self, cloud: str) -> bool:
        """Whether this shock can change a cell on ``cloud`` at all."""
        return self.cloud == cloud


@dataclass(frozen=True)
class QuotaSqueeze:
    """Tighter quota friction: scaled grant odds, stretched delays."""

    hook = "friction_overrides/probability_scale"

    #: multiplies each cloud's grant probability (values < 1 tighten)
    grant_probability_scale: float = 1.0
    #: multiplies the uniform grant-delay bounds
    delay_scale: float = 1.0
    #: clouds affected; ``None`` means every cloud with a quota workflow
    clouds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.grant_probability_scale < 0 or self.delay_scale < 0:
            raise ConfigurationError("quota squeeze scales must be non-negative")

    def touches(self, cloud: str) -> bool:
        # On-prem has no quota workflow (quota_friction_overrides skips
        # "p"), so a squeeze can never reach an on-prem cell.
        return cloud != "p" and (self.clouds is None or cloud in self.clouds)


@dataclass(frozen=True)
class FabricDegradation:
    """Multipliers on the LogGP parameters of affected fabrics."""

    hook = "Fabric.overlaid"

    latency_multiplier: float = 1.0
    bandwidth_multiplier: float = 1.0
    overhead_multiplier: float = 1.0
    jitter_multiplier: float = 1.0
    #: clouds affected; ``None`` means everywhere (including on-prem)
    clouds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if (
            min(
                self.latency_multiplier,
                self.bandwidth_multiplier,
                self.overhead_multiplier,
            )
            <= 0
        ):
            raise ConfigurationError("fabric degradation multipliers must be positive")
        if self.jitter_multiplier < 0:
            raise ConfigurationError("fabric jitter multiplier must be non-negative")

    def touches(self, cloud: str) -> bool:
        # ``None`` really is everywhere — degraded fabrics include the
        # on-prem interconnect (overlay_fabric has no "p" carve-out).
        return self.clouds is None or cloud in self.clouds


@dataclass(frozen=True)
class ReportingShift:
    """Different cost-reporting lags per cloud, in hours."""

    hook = "lag_overrides"

    lag_hours: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if any(hours < 0 for _, hours in self.lag_hours):
            raise ConfigurationError("reporting lag hours must be non-negative")

    def touches(self, cloud: str) -> bool:
        # Lags shift the billing meter, and only clouds have one.
        return cloud != "p" and any(c == cloud for c, _ in self.lag_hours)


@dataclass(frozen=True)
class FaultScaling:
    """Scales every registered fault's firing probability."""

    hook = "fault_scale"

    scale: float = 1.0
    #: clouds affected; ``None`` means all
    clouds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ConfigurationError("fault scale must be non-negative")

    def touches(self, cloud: str) -> bool:
        # Faults fire in the provisioner; on-prem cells never provision.
        return cloud != "p" and (self.clouds is None or cloud in self.clouds)


@dataclass(frozen=True)
class Scenario:
    """One declarative counterfactual world."""

    scenario_id: str
    description: str = ""
    price_shocks: tuple[PriceShock, ...] = ()
    spot: SpotMarket | None = None
    quota: QuotaSqueeze | None = None
    fabric: FabricDegradation | None = None
    reporting: ReportingShift | None = None
    faults: FaultScaling | None = None

    # -- classification -----------------------------------------------------

    @property
    def is_baseline(self) -> bool:
        """True when no perturbation is attached — the study as it ran."""
        return (
            not self.price_shocks
            and self.spot is None
            and self.quota is None
            and self.fabric is None
            and self.reporting is None
            and self.faults is None
        )

    # -- per-cell overlay footprint ------------------------------------------

    def footprint(self, cloud: str) -> "Scenario | None":
        """The scenario restricted to what can touch a cell on ``cloud``.

        Every perturbation type declares, via its ``touches``/``hook``
        members, which cell coordinates its overlay hook can reach — a
        fabric degradation touches the clouds it names (``None`` means
        everywhere, on-prem included), quota/fault/reporting/spot
        overlays never reach on-prem, price shocks name one cloud.  The
        footprint keeps exactly the perturbations that touch ``cloud``
        (cloud lists canonicalized to just ``cloud``) and drops the
        rest, returning ``None`` when *nothing* touches the cell — so a
        cell with an empty footprint simulates, and caches, exactly
        like the baseline.

        The incremental planner (:mod:`repro.plan.diff`) and every
        run/cell cache key (:mod:`repro.sim.cache` v3) are built on
        this: two worlds share a cell entry iff their footprints for
        that cell digest identically.
        """
        only_here = (cloud,)
        price = tuple(s for s in self.price_shocks if s.touches(cloud))
        spot = self.spot
        if spot is not None:
            spot = (
                dataclasses.replace(spot, clouds=only_here)
                if spot.touches(cloud)
                else None
            )
        quota = self.quota
        if quota is not None:
            quota = (
                dataclasses.replace(quota, clouds=only_here)
                if quota.touches(cloud)
                else None
            )
        fabric = self.fabric
        if fabric is not None:
            fabric = (
                dataclasses.replace(fabric, clouds=only_here)
                if fabric.touches(cloud)
                else None
            )
        reporting = self.reporting
        if reporting is not None:
            reporting = (
                ReportingShift(
                    lag_hours=tuple(
                        (c, h) for c, h in reporting.lag_hours if c == cloud
                    )
                )
                if reporting.touches(cloud)
                else None
            )
        faults = self.faults
        if faults is not None:
            faults = (
                dataclasses.replace(faults, clouds=only_here)
                if faults.touches(cloud)
                else None
            )
        restricted = Scenario(
            # The id stays: spot preemption draws are keyed on it, and
            # every incident a touched cell records carries it.
            scenario_id=self.scenario_id,
            price_shocks=price,
            spot=spot,
            quota=quota,
            fabric=fabric,
            reporting=reporting,
            faults=faults,
        )
        return active(restricted)

    def footprint_digest(self, cloud: str) -> str | None:
        """The cache-key digest of :meth:`footprint`; ``None`` = baseline."""
        fp = self.footprint(cloud)
        return fp.digest() if fp is not None else None

    def touched_hooks(self, cloud: str) -> tuple[str, ...]:
        """The overlay hooks this scenario activates for cells on ``cloud``."""
        hooks: list[str] = []
        for shock in self.price_shocks:
            if shock.touches(cloud) and shock.hook not in hooks:
                hooks.append(shock.hook)
        for pert in (self.spot, self.quota, self.fabric, self.reporting, self.faults):
            if pert is not None and pert.touches(cloud):
                hooks.append(pert.hook)
        return tuple(hooks)

    # -- derived parameters --------------------------------------------------

    def price_multiplier(self, cloud: str, nodes: int) -> float:
        """Combined hourly-rate multiplier for ``nodes`` on ``cloud``."""
        mult = 1.0
        for shock in self.price_shocks:
            if shock.cloud == cloud:
                mult *= shock.multiplier
        if self.spot is not None and cloud != "p" and cloud in self.spot.clouds:
            mult *= self.spot.price_multiplier(nodes)
        return mult

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`."""
        out: dict = {"scenario_id": self.scenario_id}
        if self.description:
            out["description"] = self.description
        if self.price_shocks:
            out["price_shocks"] = [
                {"cloud": s.cloud, "multiplier": s.multiplier} for s in self.price_shocks
            ]
        if self.spot is not None:
            out["spot"] = {
                "clouds": list(self.spot.clouds),
                "base_discount": self.spot.base_discount,
                "discount_halving_nodes": self.spot.discount_halving_nodes,
                "preemptions_per_hour": self.spot.preemptions_per_hour,
            }
        if self.quota is not None:
            out["quota"] = {
                "grant_probability_scale": self.quota.grant_probability_scale,
                "delay_scale": self.quota.delay_scale,
                "clouds": None if self.quota.clouds is None else list(self.quota.clouds),
            }
        if self.fabric is not None:
            out["fabric"] = {
                "latency_multiplier": self.fabric.latency_multiplier,
                "bandwidth_multiplier": self.fabric.bandwidth_multiplier,
                "overhead_multiplier": self.fabric.overhead_multiplier,
                "jitter_multiplier": self.fabric.jitter_multiplier,
                "clouds": None if self.fabric.clouds is None else list(self.fabric.clouds),
            }
        if self.reporting is not None:
            out["reporting"] = {"lag_hours": {c: h for c, h in self.reporting.lag_hours}}
        if self.faults is not None:
            out["faults"] = {
                "scale": self.faults.scale,
                "clouds": None if self.faults.clouds is None else list(self.faults.clouds),
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build a scenario from a plain dict (e.g. parsed JSON)."""
        if "scenario_id" not in data:
            raise ConfigurationError("scenario dict needs a 'scenario_id'")
        def _check_keys(section: str, payload: dict, allowed: tuple[str, ...]):
            unknown = set(payload) - set(allowed)
            if unknown:
                raise ConfigurationError(
                    f"unknown {section} fields: {sorted(unknown)} "
                    f"(known: {sorted(allowed)})"
                )

        _check_keys(
            "scenario",
            data,
            ("scenario_id", "description", "price_shocks", "spot",
             "quota", "fabric", "reporting", "faults"),
        )

        def _clouds(value):
            return None if value is None else tuple(value)

        spot = data.get("spot")
        quota = data.get("quota")
        fabric = data.get("fabric")
        reporting = data.get("reporting")
        faults = data.get("faults")
        spot_keys = (
            "clouds", "base_discount", "discount_halving_nodes",
            "preemptions_per_hour",
        )
        if spot is not None:
            _check_keys("spot", spot, spot_keys)
        if quota is not None:
            _check_keys(
                "quota", quota, ("grant_probability_scale", "delay_scale", "clouds")
            )
        if fabric is not None:
            _check_keys(
                "fabric", fabric,
                ("latency_multiplier", "bandwidth_multiplier",
                 "overhead_multiplier", "jitter_multiplier", "clouds"),
            )
        if reporting is not None:
            _check_keys("reporting", reporting, ("lag_hours",))
        if faults is not None:
            _check_keys("faults", faults, ("scale", "clouds"))
        for shock in data.get("price_shocks", ()):
            _check_keys("price_shock", shock, ("cloud", "multiplier"))
            if "cloud" not in shock or "multiplier" not in shock:
                raise ConfigurationError(
                    "each price_shock needs both 'cloud' and 'multiplier'"
                )
        return cls(
            scenario_id=str(data["scenario_id"]),
            description=str(data.get("description", "")),
            price_shocks=tuple(
                PriceShock(cloud=s["cloud"], multiplier=float(s["multiplier"]))
                for s in data.get("price_shocks", ())
            ),
            spot=None if spot is None else SpotMarket(
                # Only keys with a value are passed, so the dataclass
                # supplies its own defaults for the rest — including
                # ``"clouds": null``, which means "the default clouds".
                **{
                    key: tuple(spot[key]) if key == "clouds" else float(spot[key])
                    for key in spot_keys
                    if spot.get(key) is not None
                }
            ),
            quota=None if quota is None else QuotaSqueeze(
                grant_probability_scale=float(quota.get("grant_probability_scale", 1.0)),
                delay_scale=float(quota.get("delay_scale", 1.0)),
                clouds=_clouds(quota.get("clouds")),
            ),
            fabric=None if fabric is None else FabricDegradation(
                latency_multiplier=float(fabric.get("latency_multiplier", 1.0)),
                bandwidth_multiplier=float(fabric.get("bandwidth_multiplier", 1.0)),
                overhead_multiplier=float(fabric.get("overhead_multiplier", 1.0)),
                jitter_multiplier=float(fabric.get("jitter_multiplier", 1.0)),
                clouds=_clouds(fabric.get("clouds")),
            ),
            reporting=None if reporting is None else ReportingShift(
                lag_hours=tuple(
                    sorted((str(c), float(h)) for c, h in reporting["lag_hours"].items())
                ),
            ),
            faults=None if faults is None else FaultScaling(
                scale=float(faults.get("scale", 1.0)),
                clouds=_clouds(faults.get("clouds")),
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the scenario's semantics.

        The id participates (spot preemption draws are keyed on it), the
        free-text description does not.  The run cache embeds this in
        run- and cell-level keys so two worlds never share entries.
        """
        payload = self.to_dict()
        payload.pop("description", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def active(scenario: Scenario | None) -> Scenario | None:
    """Normalize a scenario: ``None`` for the baseline world.

    Everything downstream (engine, shards, cache keys) branches on
    ``active(...) is None`` so an *empty* scenario is indistinguishable
    from no scenario at all — same simulation path, same cache keys,
    byte-identical results.
    """
    if scenario is None or scenario.is_baseline:
        return None
    return scenario


def footprint_digest(scenario: Scenario | None, cloud: str) -> str | None:
    """The per-cell overlay-footprint digest every cache key embeds.

    ``None`` both for the baseline world and for a scenario that cannot
    touch cells on ``cloud`` — which is exactly what lets an untouched
    cell of a what-if world share its run/cell cache entries with the
    baseline (:mod:`repro.plan.diff` proves the reuse sound).
    """
    scn = active(scenario)
    return scn.footprint_digest(cloud) if scn is not None else None

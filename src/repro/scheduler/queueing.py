"""On-premises queue-wait model.

Cloud clusters in the study were dedicated; on-prem jobs "needed to wait
in the queue" (§2.9) behind the center's production workload.  Rather
than simulate 1,544 nodes of background load, :class:`OnPremQueueModel`
draws queue waits from a size-dependent log-normal: bigger allocations
wait disproportionately longer, matching the shared-center experience
that motivates the paper's elasticity argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rng import stream
from repro.units import HOUR, MINUTE


@dataclass(frozen=True)
class OnPremQueueModel:
    """Queue-wait sampler for a shared on-prem cluster.

    ``cluster_nodes`` is the machine's total size; a request for a large
    fraction of the machine waits much longer (draining effect).
    """

    cluster_nodes: int
    seed: int = 0
    base_wait_s: float = 5 * MINUTE
    max_fraction_penalty: float = 20.0  # multiplier when asking for the whole machine

    def sample_wait(self, nodes: int, *, iteration: int = 0) -> float:
        """Queue wait in seconds for an allocation of ``nodes``."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if nodes > self.cluster_nodes:
            raise ValueError(
                f"request of {nodes} exceeds cluster size {self.cluster_nodes}"
            )
        fraction = nodes / self.cluster_nodes
        # Superlinear penalty as the request approaches machine scale.
        penalty = 1.0 + self.max_fraction_penalty * fraction**1.5
        rng = stream(self.seed, "onprem-queue", nodes, iteration)
        return float(self.base_wait_s * penalty * rng.lognormal(0.0, 0.8))

    def expected_wait(self, nodes: int, samples: int = 64) -> float:
        """Monte-Carlo mean wait, for planning tools."""
        total = 0.0
        for i in range(samples):
            total += self.sample_wait(nodes, iteration=10_000 + i)
        return total / samples

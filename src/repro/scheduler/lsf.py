"""LSF: the workload manager of on-prem cluster B.

IBM Spectrum LSF schedules in periodic *dispatch cycles* rather than
event-driven like our Slurm/Flux models: ``bsub`` places the job in a
queue and the ``mbatchd`` daemon dispatches every ``MBD_SLEEP_TIME``
(default 10 s on large systems, we use 5).  This gives LSF noticeably
higher launch latency — visible in the on-prem GPU hookup numbers — and
coarser backfill behaviour.
"""

from __future__ import annotations

from repro.scheduler.base import Scheduler


class LsfScheduler(Scheduler):
    """Cycle-based FIFO dispatch."""

    name = "lsf"
    submit_overhead = 4.0  # bsub -> mbatchd -> sbatchd -> res chain
    dispatch_interval = 5.0

    def __init__(self, nodes, events=None):
        super().__init__(nodes, events)
        self._cycle_scheduled = False

    def _try_schedule(self) -> None:
        # Defer all decisions to the next dispatch cycle.
        if self._cycle_scheduled or not self.queue:
            return
        self._cycle_scheduled = True
        self.events.schedule(self.dispatch_interval, self._dispatch_cycle)

    def _dispatch_cycle(self) -> None:
        self._cycle_scheduled = False
        # Strict FIFO within a cycle; no backfill past the head job.
        while self.queue and self.pool.free_count >= self.queue[0].nodes:
            job = self.queue.pop(0)
            self._start_job(job)
        if self.queue:
            self._cycle_scheduled = True
            self.events.schedule(self.dispatch_interval, self._dispatch_cycle)

"""Discrete-event simulation core.

A minimal event engine: a priority queue of ``(time, seq, callback)``
entries and a clock.  Schedulers and the Kubernetes model are written
against this so that queueing, backfill, and pod scheduling all advance
on one timeline.  The sequence number makes ordering of simultaneous
events deterministic (FIFO among equal timestamps).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class SimClock:
    """Monotonic simulation clock in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Priority queue of timed callbacks driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._heap: list[_Event] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        ev = _Event(self.clock.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.clock.now, callback)

    def cancel(self, event: _Event) -> None:
        event.cancelled = True

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            ev.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains or ``until`` is reached.

        Returns the number of events executed.  ``max_events`` guards
        against runaway feedback loops in scheduler logic.
        """
        executed = 0
        while executed < max_events:
            # Peek for the until-bound without popping cancelled entries.
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0].time > until:
                self.clock.advance_to(until)
                break
            if not self.step():
                break
            executed += 1
        else:
            raise RuntimeError(f"event loop exceeded {max_events} events")
        return executed

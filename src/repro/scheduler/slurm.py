"""Slurm: FIFO with conservative backfill.

Slurm (ParallelCluster, CycleCloud, on-prem A) processes the queue in
priority order; a job that cannot start reserves its nodes at the
earliest feasible time, and later jobs may *backfill* into the gap only
if they cannot delay the reservation.  We implement conservative
backfill using each job's walltime limit as its expected duration —
the same information real backfill uses.
"""

from __future__ import annotations

from repro.scheduler.base import Job, JobState, Scheduler


class SlurmScheduler(Scheduler):
    """FIFO + conservative backfill."""

    name = "slurm"
    submit_overhead = 2.0  # sbatch -> prolog -> srun wire-up

    def _running_end_times(self) -> list[tuple[float, int]]:
        """(end_time, nodes) for currently running jobs, soonest first."""
        out = []
        for job_id, node_ids in self.pool.allocated.items():
            job = self._jobs[job_id]
            assert job.start_time is not None
            end = job.start_time + min(job.runtime, job.walltime_limit)
            out.append((end, len(node_ids)))
        out.sort()
        return out

    def _earliest_start_for(self, nodes_needed: int) -> float:
        """When ``nodes_needed`` nodes will be free, by simulated drain."""
        free = self.pool.free_count
        if free >= nodes_needed:
            return self.events.clock.now
        for end, released in self._running_end_times():
            free += released
            if free >= nodes_needed:
                return end
        return float("inf")

    def _try_schedule(self) -> None:
        if not self.queue:
            return
        started: list[Job] = []
        # Head-of-line job defines the backfill shadow.
        head = self.queue[0]
        if self.pool.free_count >= head.nodes:
            self._start_job(head)
            started.append(head)
            self.queue.remove(head)
            # Pool changed; re-enter to re-evaluate from the new head.
            self._try_schedule()
            return

        shadow_start = self._earliest_start_for(head.nodes)
        now = self.events.clock.now
        for job in list(self.queue[1:]):
            if self.pool.free_count < job.nodes:
                continue
            # Conservative backfill: job must finish before the shadow,
            # or use nodes the head job will not need.
            job_end = now + self.submit_overhead + min(job.runtime, job.walltime_limit)
            spare_after_head = self.pool.free_count - job.nodes >= 0 and (
                self.pool.free_count - job.nodes
            ) + sum(
                n for e, n in self._running_end_times() if e <= shadow_start
            ) >= head.nodes
            if job_end <= shadow_start or spare_after_head:
                self._start_job(job)
                self.queue.remove(job)

"""Flux: hierarchical, graph-based scheduling.

Flux (used in every Kubernetes environment via the Flux Operator, and in
the custom Compute Engine deployments) differs from Slurm in two ways
that matter here:

* **Low submission overhead.** Flux instances run inside the allocation,
  so ``flux run`` wire-up is fast (no prolog round trip to a central
  daemon).
* **Hierarchical queues.** A Flux instance can split its brokers into
  child instances; jobs submitted to a child only compete for the
  child's resources.  We model one level of hierarchy, which is how the
  Flux Operator lays a MiniCluster over Kubernetes pods.

Scheduling policy within an instance is first-fit over the queue (Flux's
``fcfs`` plugin), which unlike strict FIFO lets small jobs flow around a
blocked large job — meaning it can starve the head job; Flux ships
``easy`` backfill for that reason, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduler.base import Job, Scheduler
from repro.scheduler.events import EventQueue


class FluxScheduler(Scheduler):
    """Flux instance with EASY backfill (reservation for head job only)."""

    name = "flux"
    submit_overhead = 0.5  # broker-local launch

    def __init__(self, nodes: int, events: EventQueue | None = None, *, level: int = 0):
        super().__init__(nodes, events)
        #: nesting depth (0 = system instance)
        self.level = level
        self.children: list[FluxScheduler] = []

    # -- hierarchy ------------------------------------------------------------

    def spawn_child(self, nodes: int) -> "FluxScheduler":
        """Carve a child instance out of this instance's free nodes.

        The child shares the parent's event queue so both advance on one
        timeline.  Nodes are dedicated to the child until it is torn
        down — Flux's usage model for ensemble workloads.
        """
        if nodes > self.pool.free_count:
            raise SchedulingError(
                f"cannot nest {nodes}-node instance; only {self.pool.free_count} free"
            )
        child_id = f"_child-{len(self.children)}-{id(self) & 0xFFFF:x}"
        self.pool.allocate(child_id, nodes)
        child = FluxScheduler(nodes, self.events, level=self.level + 1)
        child._parent_handle = (self, child_id)  # type: ignore[attr-defined]
        self.children.append(child)
        return child

    def teardown_child(self, child: "FluxScheduler") -> None:
        parent, handle = child._parent_handle  # type: ignore[attr-defined]
        if parent is not self:
            raise SchedulingError("child belongs to a different instance")
        busy = [j for j in child._jobs.values() if not j.state.terminal]
        if busy:
            raise SchedulingError("cannot tear down child with active jobs")
        self.pool.release(handle)
        self.children.remove(child)
        self._try_schedule()

    # -- policy ---------------------------------------------------------------

    def _head_reservation(self) -> float:
        head = self.queue[0]
        free = self.pool.free_count
        if free >= head.nodes:
            return self.events.clock.now
        ends = []
        for job_id, node_ids in self.pool.allocated.items():
            job = self._jobs.get(job_id)
            if job is None:  # child-instance handle, never releases on its own
                continue
            assert job.start_time is not None
            ends.append((job.start_time + min(job.runtime, job.walltime_limit), len(node_ids)))
        ends.sort()
        for end, released in ends:
            free += released
            if free >= head.nodes:
                return end
        return float("inf")

    def _try_schedule(self) -> None:
        while self.queue:
            head = self.queue[0]
            if self.pool.free_count >= head.nodes:
                self._start_job(head)
                self.queue.pop(0)
                continue
            # EASY backfill: anything that finishes before the head's
            # reservation may jump the queue.
            shadow = self._head_reservation()
            now = self.events.clock.now
            progressed = False
            for job in list(self.queue[1:]):
                if self.pool.free_count < job.nodes:
                    continue
                job_end = now + self.submit_overhead + min(job.runtime, job.walltime_limit)
                if job_end <= shadow:
                    self._start_job(job)
                    self.queue.remove(job)
                    progressed = True
            if not progressed:
                break

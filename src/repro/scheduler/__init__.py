"""Workload managers: Slurm, Flux, and LSF over a discrete-event core.

The paper submits jobs through Slurm (ParallelCluster, CycleCloud,
on-prem A), Flux (all Kubernetes environments via the Flux Operator, and
Compute Engine), and LSF (on-prem B).  Each manager here implements the
same :class:`~repro.scheduler.base.Scheduler` interface over the shared
event engine, differing in queueing policy and submission semantics —
which is exactly the "similar but subtly different interfaces" friction
§4.3 calls out.
"""

from repro.scheduler.base import (
    Allocation,
    Job,
    JobState,
    NodePool,
    Scheduler,
    SchedulerStats,
)
from repro.scheduler.events import EventQueue, SimClock
from repro.scheduler.flux import FluxScheduler
from repro.scheduler.lsf import LsfScheduler
from repro.scheduler.queueing import OnPremQueueModel
from repro.scheduler.slurm import SlurmScheduler

__all__ = [
    "Allocation",
    "EventQueue",
    "FluxScheduler",
    "Job",
    "JobState",
    "LsfScheduler",
    "NodePool",
    "OnPremQueueModel",
    "Scheduler",
    "SchedulerStats",
    "SimClock",
    "SlurmScheduler",
]

"""Scheduler interface shared by Slurm, Flux, and LSF.

A :class:`Scheduler` owns a :class:`NodePool`, accepts :class:`Job`
submissions, and decides when each job gets an :class:`Allocation`.
Jobs carry a ``runtime`` (what the application will take, supplied by
the execution engine) and a ``walltime_limit``; jobs whose runtime
exceeds the limit end ``TIMEOUT`` — this is how Laghos runs beyond 64
cloud nodes die in the reproduction, mirroring §3.3 ("increasing
slowdown that prevented runs from completing in under 15-20 minutes").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.scheduler.events import EventQueue


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.TIMEOUT,
            JobState.CANCELLED,
        )


@dataclass
class Job:
    """A batch job."""

    job_id: str
    nodes: int
    runtime: float  # true runtime if allowed to finish, seconds
    walltime_limit: float = 1800.0
    tasks_per_node: int = 1
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    #: set True by the execution engine when the app itself fails
    app_failure: bool = False

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def will_timeout(self) -> bool:
        return self.runtime > self.walltime_limit


@dataclass
class NodePool:
    """A set of identical nodes tracked by id."""

    total: int
    free: set[int] = field(default_factory=set)
    allocated: dict[str, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.free and not self.allocated:
            self.free = set(range(self.total))

    @property
    def free_count(self) -> int:
        return len(self.free)

    def allocate(self, job_id: str, count: int) -> frozenset[int]:
        if count > len(self.free):
            raise SchedulingError(
                f"cannot allocate {count} nodes; only {len(self.free)} free"
            )
        if job_id in self.allocated:
            raise SchedulingError(f"job {job_id} already holds an allocation")
        picked = frozenset(sorted(self.free)[:count])
        self.free -= picked
        self.allocated[job_id] = picked
        return picked

    def release(self, job_id: str) -> None:
        nodes = self.allocated.pop(job_id, None)
        if nodes is None:
            raise SchedulingError(f"job {job_id} holds no allocation")
        self.free |= nodes


@dataclass(frozen=True)
class Allocation:
    """Nodes granted to a job."""

    job: Job
    node_ids: frozenset[int]
    granted_at: float


@dataclass
class SchedulerStats:
    """Aggregate behaviour over a scheduler's lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timeout: int = 0
    total_wait: float = 0.0

    @property
    def mean_wait(self) -> float:
        done = self.completed + self.failed + self.timeout
        return self.total_wait / done if done else 0.0


class Scheduler:
    """Abstract workload manager.

    Subclasses implement :meth:`_try_schedule`, invoked whenever the
    pool state changes.  ``submit_overhead`` models the manager's
    job-launch latency (prolog, PMI wire-up), which differs per manager.
    """

    name = "abstract"
    submit_overhead = 1.0  # seconds between allocation and job start

    def __init__(self, nodes: int, events: EventQueue | None = None):
        self.pool = NodePool(total=nodes)
        self.events = events or EventQueue()
        self.queue: list[Job] = []
        self.stats = SchedulerStats()
        self._jobs: dict[str, Job] = {}

    # -- public API -----------------------------------------------------------

    def submit(self, job: Job) -> Job:
        if job.nodes < 1:
            raise SchedulingError("job must request at least one node")
        if job.nodes > self.pool.total:
            raise SchedulingError(
                f"job requests {job.nodes} nodes; pool has {self.pool.total}"
            )
        if job.job_id in self._jobs:
            raise SchedulingError(f"duplicate job id {job.job_id}")
        job.submit_time = self.events.clock.now
        self._jobs[job.job_id] = job
        self.queue.append(job)
        self.stats.submitted += 1
        self._try_schedule()
        return job

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drive the event loop until all submitted jobs are terminal."""
        self.events.run(max_events=max_events)
        stuck = [j for j in self._jobs.values() if not j.state.terminal]
        if stuck:
            raise SchedulingError(
                f"{len(stuck)} job(s) never reached a terminal state: "
                + ", ".join(j.job_id for j in stuck[:5])
            )

    def job(self, job_id: str) -> Job:
        return self._jobs[job_id]

    # -- machinery ------------------------------------------------------------

    def _start_job(self, job: Job) -> None:
        node_ids = self.pool.allocate(job.job_id, job.nodes)
        job.state = JobState.RUNNING
        job.start_time = self.events.clock.now + self.submit_overhead
        self.stats.total_wait += job.start_time - job.submit_time
        duration = min(job.runtime, job.walltime_limit)

        def finish() -> None:
            self._finish_job(job)

        self.events.schedule(self.submit_overhead + duration, finish)

    def _finish_job(self, job: Job) -> None:
        job.end_time = self.events.clock.now
        if job.will_timeout:
            job.state = JobState.TIMEOUT
            self.stats.timeout += 1
        elif job.app_failure:
            job.state = JobState.FAILED
            self.stats.failed += 1
        else:
            job.state = JobState.COMPLETED
            self.stats.completed += 1
        self.pool.release(job.job_id)
        self._try_schedule()

    def _try_schedule(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

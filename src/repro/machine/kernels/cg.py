"""Conjugate gradient: MiniFE's numerical core.

MiniFE assembles an unstructured finite-element system and solves it
with CG; its FOM is CG Mflops (§2.8).  We provide a textbook CG over
scipy sparse matrices plus a 2-D Poisson assembly helper, counting
flops the way MiniFE's FOM does (2*nnz per matvec + 10n vector work
per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


def poisson_2d(n: int) -> sp.csr_matrix:
    """The 5-point Laplacian on an n×n grid (SPD, CSR)."""
    if n < 2:
        raise ValueError("n must be >= 2")
    main = 4.0 * np.ones(n * n)
    side = -1.0 * np.ones(n * n - 1)
    # Zero the couplings that would wrap across grid rows.
    side[np.arange(1, n * n) % n == 0] = 0.0
    updown = -1.0 * np.ones(n * n - n)
    A = sp.diags(
        [main, side, side, updown, updown],
        [0, -1, 1, -n, n],
        format="csr",
    )
    return A


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    flops: float
    converged: bool

    def mflops(self, seconds: float) -> float:
        """MiniFE-style Total CG Mflops for a measured solve time."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.flops / seconds / 1e6


def conjugate_gradient(
    A: sp.spmatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> CGResult:
    """Unpreconditioned CG for SPD ``A``; counts flops like MiniFE."""
    A = A.tocsr()
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    if b.shape != (n,):
        raise ValueError("b has the wrong shape")
    nnz = A.nnz
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    flops = 0.0
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        Ap = A @ p
        alpha = rs_old / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        # 2 flops/nnz matvec + dot/axpy vector traffic ~ 10n.
        flops += 2.0 * nnz + 10.0 * n
        if np.sqrt(rs_new) / b_norm < tol:
            converged = True
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return CGResult(
        x=x,
        iterations=it,
        residual_norm=float(np.linalg.norm(b - A @ x)),
        flops=flops,
        converged=converged,
    )


def conjugate_gradient_block(
    A: sp.spmatrix,
    B: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> list[CGResult]:
    """CG over a block of right-hand sides, one sparse matmat per step.

    ``B`` is (n, k): every iteration advances all unconverged systems
    with a single ``A @ P`` product and column-wise vector work, so
    ``k`` solves cost one traversal of sparse products instead of
    ``k``.  Converged columns freeze (their iterate stops updating and
    stops accruing flops), matching the early exit of the single-RHS
    loop; numerically the iterates agree with per-column
    :func:`conjugate_gradient` to reduction-order rounding.
    """
    A = A.tocsr()
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    if B.ndim != 2 or B.shape[0] != n:
        raise ValueError("B must be (n, k)")
    k = B.shape[1]
    nnz = A.nnz
    X = np.zeros((n, k))
    R = B.copy()
    P = R.copy()
    rs_old = np.einsum("ij,ij->j", R, R)
    b_norm = np.linalg.norm(B, axis=0)
    b_norm[b_norm == 0.0] = 1.0
    flops = np.zeros(k)
    iterations = np.zeros(k, dtype=int)
    active = np.ones(k, dtype=bool)
    for _ in range(max_iter):
        if not active.any():
            break
        AP = A @ P
        pap = np.einsum("ij,ij->j", P, AP)
        with np.errstate(divide="ignore", invalid="ignore"):
            alpha = np.where(active & (pap != 0.0), rs_old / np.where(pap == 0, 1.0, pap), 0.0)
        X += alpha * P
        R -= alpha * AP
        rs_new = np.einsum("ij,ij->j", R, R)
        flops[active] += 2.0 * nnz + 10.0 * n
        iterations[active] += 1
        done = active & (np.sqrt(rs_new) / b_norm < tol)
        active &= ~done
        beta = np.where(active, rs_new / np.where(rs_old == 0, 1.0, rs_old), 0.0)
        P = np.where(active, R + beta * P, P)
        rs_old = rs_new
    residuals = np.linalg.norm(B - A @ X, axis=0)
    return [
        CGResult(
            x=X[:, j].copy(),
            iterations=int(iterations[j]),
            residual_norm=float(residuals[j]),
            flops=float(flops[j]),
            converged=not active[j],
        )
        for j in range(k)
    ]

"""Conjugate gradient: MiniFE's numerical core.

MiniFE assembles an unstructured finite-element system and solves it
with CG; its FOM is CG Mflops (§2.8).  We provide a textbook CG over
scipy sparse matrices plus a 2-D Poisson assembly helper, counting
flops the way MiniFE's FOM does (2*nnz per matvec + 10n vector work
per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


def poisson_2d(n: int) -> sp.csr_matrix:
    """The 5-point Laplacian on an n×n grid (SPD, CSR)."""
    if n < 2:
        raise ValueError("n must be >= 2")
    main = 4.0 * np.ones(n * n)
    side = -1.0 * np.ones(n * n - 1)
    # Zero the couplings that would wrap across grid rows.
    side[np.arange(1, n * n) % n == 0] = 0.0
    updown = -1.0 * np.ones(n * n - n)
    A = sp.diags(
        [main, side, side, updown, updown],
        [0, -1, 1, -n, n],
        format="csr",
    )
    return A


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    flops: float
    converged: bool

    def mflops(self, seconds: float) -> float:
        """MiniFE-style Total CG Mflops for a measured solve time."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.flops / seconds / 1e6


def conjugate_gradient(
    A: sp.spmatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> CGResult:
    """Unpreconditioned CG for SPD ``A``; counts flops like MiniFE."""
    A = A.tocsr()
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    if b.shape != (n,):
        raise ValueError("b has the wrong shape")
    nnz = A.nnz
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    flops = 0.0
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        Ap = A @ p
        alpha = rs_old / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        # 2 flops/nnz matvec + dot/axpy vector traffic ~ 10n.
        flops += 2.0 * nnz + 10.0 * n
        if np.sqrt(rs_new) / b_norm < tol:
            converged = True
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return CGResult(
        x=x,
        iterations=it,
        residual_norm=float(np.linalg.norm(b - A @ x)),
        flops=flops,
        converged=converged,
    )

"""Monte Carlo particle transport: Quicksilver's numerical core.

Quicksilver tracks particles through segments between collision,
facet-crossing, and census events; its FOM is segments per second of
cycle tracking time (§2.8, Figure 8).  This kernel implements a
vectorised 1-group slab-geometry analogue: particles stream through a
1-D mesh with absorption/scattering, and we count segments exactly the
way Quicksilver tallies them (every event ends a segment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MCTransportResult:
    """Tallies from one tracking cycle."""

    segments: int
    absorbed: int
    escaped: int
    scattered: int
    census: int

    @property
    def total_terminated(self) -> int:
        return self.absorbed + self.escaped + self.census


def mc_transport(
    n_particles: int = 10_000,
    *,
    slab_length: float = 10.0,
    n_cells: int = 100,
    sigma_t: float = 1.0,
    scatter_ratio: float = 0.7,
    time_boundary: float = 8.0,
    seed: int = 0,
    max_events: int = 10_000,
) -> MCTransportResult:
    """Track ``n_particles`` through one cycle; returns tallies.

    Particle state is held in flat arrays and every event type is
    processed with boolean masks — the vectorisation idiom from the
    optimisation guide applied to a branchy transport loop.
    """
    if n_particles < 1:
        raise ValueError("need at least one particle")
    if not 0.0 <= scatter_ratio <= 1.0:
        raise ValueError("scatter_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)

    x = rng.uniform(0.0, slab_length, n_particles)
    mu = rng.uniform(-1.0, 1.0, n_particles)  # direction cosine
    t = np.zeros(n_particles)  # particle clock
    alive = np.ones(n_particles, dtype=bool)

    segments = 0
    absorbed = escaped = scattered = census = 0
    speed = 1.0
    cell_width = slab_length / n_cells

    for _ in range(max_events):
        if not alive.any():
            break
        idx = np.flatnonzero(alive)
        n = idx.size
        # Distance to collision (exponential), to cell facet, to census.
        d_coll = rng.exponential(1.0 / sigma_t, n)
        cell_edge = np.where(
            mu[idx] > 0,
            (np.floor(x[idx] / cell_width) + 1) * cell_width,
            np.floor(x[idx] / cell_width) * cell_width,
        )
        with np.errstate(divide="ignore"):
            d_facet = np.where(
                mu[idx] != 0.0,
                np.abs((cell_edge - x[idx]) / np.where(mu[idx] == 0, 1.0, mu[idx])),
                np.inf,
            )
        d_facet = np.maximum(d_facet, 1e-12)  # avoid zero-length hops
        d_census = (time_boundary - t[idx]) * speed

        d = np.minimum(np.minimum(d_coll, d_facet), d_census)
        event = np.where(
            d == d_census, 2, np.where(d == d_coll, 0, 1)
        )  # 0 collide, 1 facet, 2 census

        x[idx] += mu[idx] * d
        t[idx] += d / speed
        segments += n

        # Census: particle survives to next cycle.
        cen = idx[event == 2]
        census += cen.size
        alive[cen] = False

        # Escape through either slab face.
        esc = idx[(x[idx] < 0.0) | (x[idx] > slab_length)]
        esc = np.setdiff1d(esc, cen, assume_unique=False)
        escaped += esc.size
        alive[esc] = False

        # Collisions among still-alive particles.
        coll = idx[event == 0]
        coll = coll[alive[coll]]
        u = rng.random(coll.size)
        absorbed_mask = u >= scatter_ratio
        abs_idx = coll[absorbed_mask]
        absorbed += abs_idx.size
        alive[abs_idx] = False
        scat_idx = coll[~absorbed_mask]
        scattered += scat_idx.size
        mu[scat_idx] = rng.uniform(-1.0, 1.0, scat_idx.size)
        # Facet crossings just continue in the next loop iteration.

    return MCTransportResult(
        segments=segments,
        absorbed=absorbed,
        escaped=escaped,
        scattered=scattered,
        census=census,
    )


def mc_transport_block(
    n_particles: int = 10_000,
    *,
    replicas: int = 1,
    slab_length: float = 10.0,
    n_cells: int = 100,
    sigma_t: float = 1.0,
    scatter_ratio: float = 0.7,
    time_boundary: float = 8.0,
    seed: int = 0,
    max_events: int = 10_000,
) -> list[MCTransportResult]:
    """Track ``replicas`` independent cycles through one flat state set.

    All ``replicas × n_particles`` particles stream through the same
    masked event loop — one array program instead of ``replicas`` —
    with per-replica tallies recovered by ``bincount`` over a replica
    label column.  One shared stream drives the whole block, so
    ``replicas=1`` reproduces ``mc_transport(seed=seed)`` exactly;
    larger blocks are their own (equally valid) batched experiment, not
    a draw-for-draw replay of looped single-replica calls.
    """
    if n_particles < 1:
        raise ValueError("need at least one particle")
    if replicas < 1:
        raise ValueError("need at least one replica")
    if not 0.0 <= scatter_ratio <= 1.0:
        raise ValueError("scatter_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)

    total = replicas * n_particles
    replica = np.repeat(np.arange(replicas), n_particles)
    x = rng.uniform(0.0, slab_length, total)
    mu = rng.uniform(-1.0, 1.0, total)
    t = np.zeros(total)
    alive = np.ones(total, dtype=bool)

    segments = np.zeros(replicas, dtype=np.int64)
    absorbed = np.zeros(replicas, dtype=np.int64)
    escaped = np.zeros(replicas, dtype=np.int64)
    scattered = np.zeros(replicas, dtype=np.int64)
    census = np.zeros(replicas, dtype=np.int64)

    def _tally(counter: np.ndarray, indices: np.ndarray) -> None:
        counter += np.bincount(replica[indices], minlength=replicas)

    speed = 1.0
    cell_width = slab_length / n_cells
    for _ in range(max_events):
        if not alive.any():
            break
        idx = np.flatnonzero(alive)
        n = idx.size
        d_coll = rng.exponential(1.0 / sigma_t, n)
        cell_edge = np.where(
            mu[idx] > 0,
            (np.floor(x[idx] / cell_width) + 1) * cell_width,
            np.floor(x[idx] / cell_width) * cell_width,
        )
        with np.errstate(divide="ignore"):
            d_facet = np.where(
                mu[idx] != 0.0,
                np.abs((cell_edge - x[idx]) / np.where(mu[idx] == 0, 1.0, mu[idx])),
                np.inf,
            )
        d_facet = np.maximum(d_facet, 1e-12)
        d_census = (time_boundary - t[idx]) * speed

        d = np.minimum(np.minimum(d_coll, d_facet), d_census)
        event = np.where(d == d_census, 2, np.where(d == d_coll, 0, 1))

        x[idx] += mu[idx] * d
        t[idx] += d / speed
        _tally(segments, idx)

        cen = idx[event == 2]
        _tally(census, cen)
        alive[cen] = False

        esc = idx[(x[idx] < 0.0) | (x[idx] > slab_length)]
        esc = np.setdiff1d(esc, cen, assume_unique=False)
        _tally(escaped, esc)
        alive[esc] = False

        coll = idx[event == 0]
        coll = coll[alive[coll]]
        u = rng.random(coll.size)
        absorbed_mask = u >= scatter_ratio
        abs_idx = coll[absorbed_mask]
        _tally(absorbed, abs_idx)
        alive[abs_idx] = False
        scat_idx = coll[~absorbed_mask]
        _tally(scattered, scat_idx)
        mu[scat_idx] = rng.uniform(-1.0, 1.0, scat_idx.size)

    return [
        MCTransportResult(
            segments=int(segments[r]),
            absorbed=int(absorbed[r]),
            escaped=int(escaped[r]),
            scattered=int(scattered[r]),
            census=int(census[r]),
        )
        for r in range(replicas)
    ]

"""KBA-style wavefront sweep: Kripke's numerical core.

Kripke performs discrete-ordinates transport sweeps; the KBA algorithm
processes a structured grid in wavefronts so each diagonal depends only
on the previous one.  ``kba_sweep`` implements the 2-D analogue: a
lower-triangular solve structured as anti-diagonal wavefronts, which is
both a real computation (it solves (I - L) ψ = q) and the exact data
dependency pattern whose pipeline fill cost the Kripke app model charges.
"""

from __future__ import annotations

import numpy as np


def kba_sweep(q: np.ndarray, sigma: float = 0.3) -> np.ndarray:
    """Sweep the grid from the (0,0) corner: ψ[i,j] depends on west+south.

    Solves ψ[i,j] = q[i,j] + sigma/2 * (ψ[i-1,j] + ψ[i,j-1]) by
    wavefronts; ``sigma < 1`` keeps the recursion contractive.  Each
    anti-diagonal is computed as one vector operation.
    """
    if q.ndim != 2:
        raise ValueError("q must be 2-D")
    if not 0.0 <= sigma < 2.0:
        raise ValueError("sigma must be in [0, 2) for stability")
    nx, ny = q.shape
    psi = np.zeros_like(q, dtype=float)
    half = sigma / 2.0
    for d in range(nx + ny - 1):
        i0 = max(0, d - ny + 1)
        i1 = min(nx - 1, d)
        i = np.arange(i0, i1 + 1)
        j = d - i
        west = np.where(i > 0, psi[np.maximum(i - 1, 0), j], 0.0)
        south = np.where(j > 0, psi[i, np.maximum(j - 1, 0)], 0.0)
        psi[i, j] = q[i, j] + half * (west + south)
    return psi


def kba_sweep_block(q: np.ndarray, sigma: float = 0.3) -> np.ndarray:
    """Sweep a whole batch of grids at once: ``q`` is (batch, nx, ny).

    The wavefront schedule is grid-shape-driven, so every batch member
    shares it — each anti-diagonal update runs as one vector operation
    over ``batch × wavefront`` and slice ``r`` is bit-identical to
    ``kba_sweep(q[r], sigma)`` (same elementwise operations in the same
    order; ``tests/test_kernels_block.py`` pins it).
    """
    if q.ndim != 3:
        raise ValueError("q must be (batch, nx, ny)")
    if not 0.0 <= sigma < 2.0:
        raise ValueError("sigma must be in [0, 2) for stability")
    _, nx, ny = q.shape
    psi = np.zeros_like(q, dtype=float)
    half = sigma / 2.0
    for d in range(nx + ny - 1):
        i0 = max(0, d - ny + 1)
        i1 = min(nx - 1, d)
        i = np.arange(i0, i1 + 1)
        j = d - i
        west = np.where(i > 0, psi[:, np.maximum(i - 1, 0), j], 0.0)
        south = np.where(j > 0, psi[:, i, np.maximum(j - 1, 0)], 0.0)
        psi[:, i, j] = q[:, i, j] + half * (west + south)
    return psi

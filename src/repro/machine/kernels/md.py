"""Lennard-Jones molecular dynamics: LAMMPS's numerical core.

LAMMPS/ReaxFF computes interatomic forces, then integrates; its FOM is
million atom-steps per second (§2.8).  We implement a vectorised LJ
force kernel with minimum-image periodic boundaries and a velocity-
Verlet step — the structural skeleton of the MD loop (ReaxFF's
charge-equilibration solve is represented in the app model's
communication pattern instead).
"""

from __future__ import annotations

import numpy as np


def lj_forces(
    pos: np.ndarray, box: float, *, epsilon: float = 1.0, sigma: float = 1.0,
    cutoff: float = 2.5,
) -> tuple[np.ndarray, float]:
    """Forces and potential energy for an all-pairs LJ system.

    ``pos`` is (n, 3) in a cubic periodic box of side ``box``.  O(n^2)
    with full vectorisation — appropriate for the few-hundred-atom
    validation problems the tests use.
    """
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("pos must be (n, 3)")
    n = pos.shape[0]
    rij = pos[:, None, :] - pos[None, :, :]
    rij -= box * np.round(rij / box)  # minimum image
    r2 = np.einsum("ijk,ijk->ij", rij, rij)
    np.fill_diagonal(r2, np.inf)
    mask = r2 < cutoff * cutoff
    inv_r2 = np.where(mask, 1.0 / np.where(r2 == 0, np.inf, r2), 0.0)
    s2 = sigma * sigma * inv_r2
    s6 = s2 * s2 * s2
    s12 = s6 * s6
    # F = 24 eps (2 s12 - s6) / r^2 * rij
    fac = 24.0 * epsilon * (2.0 * s12 - s6) * inv_r2
    forces = np.einsum("ij,ijk->ik", fac, rij)
    energy = float(2.0 * epsilon * np.sum(np.where(mask, s12 - s6, 0.0)))
    return forces, energy


def lj_forces_block(
    pos: np.ndarray, box: float, *, epsilon: float = 1.0, sigma: float = 1.0,
    cutoff: float = 2.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Forces and energies for a batch of configurations at once.

    ``pos`` is (batch, n, 3); one einsum program covers the whole batch
    — (forces (batch, n, 3), energies (batch,)).  Per-configuration
    values agree with :func:`lj_forces` to reduction-order rounding
    (the pair sums accumulate in a different association).
    """
    if pos.ndim != 3 or pos.shape[2] != 3:
        raise ValueError("pos must be (batch, n, 3)")
    n = pos.shape[1]
    rij = pos[:, :, None, :] - pos[:, None, :, :]
    rij -= box * np.round(rij / box)  # minimum image
    r2 = np.einsum("bijk,bijk->bij", rij, rij)
    r2[:, np.arange(n), np.arange(n)] = np.inf
    mask = r2 < cutoff * cutoff
    inv_r2 = np.where(mask, 1.0 / np.where(r2 == 0, np.inf, r2), 0.0)
    s2 = sigma * sigma * inv_r2
    s6 = s2 * s2 * s2
    s12 = s6 * s6
    fac = 24.0 * epsilon * (2.0 * s12 - s6) * inv_r2
    forces = np.einsum("bij,bijk->bik", fac, rij)
    energies = 2.0 * epsilon * np.sum(np.where(mask, s12 - s6, 0.0), axis=(1, 2))
    return forces, energies


def md_step(
    pos: np.ndarray,
    vel: np.ndarray,
    box: float,
    dt: float = 0.005,
    **lj_kwargs,
) -> tuple[np.ndarray, np.ndarray, float]:
    """One velocity-Verlet step; returns (pos, vel, potential_energy)."""
    f0, _ = lj_forces(pos, box, **lj_kwargs)
    pos = (pos + vel * dt + 0.5 * f0 * dt * dt) % box
    f1, energy = lj_forces(pos, box, **lj_kwargs)
    vel = vel + 0.5 * (f0 + f1) * dt
    return pos, vel, energy

"""Dense matrix multiplication: MT-GEMM's numerical core.

MT-GEMM measures GFLOPs of C = A·B (§2.8).  ``blocked_gemm`` is a
cache-blocked implementation over NumPy tiles — the loop structure of
the real kernel with BLAS doing the innermost tile product.
"""

from __future__ import annotations

import time

import numpy as np


def blocked_gemm(A: np.ndarray, B: np.ndarray, block: int = 128) -> np.ndarray:
    """Cache-blocked C = A @ B."""
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError("incompatible GEMM shapes")
    if block < 1:
        raise ValueError("block must be positive")
    m, k = A.shape
    _, n = B.shape
    C = np.zeros((m, n), dtype=np.result_type(A, B))
    for i0 in range(0, m, block):
        for j0 in range(0, n, block):
            acc = C[i0 : i0 + block, j0 : j0 + block]
            for k0 in range(0, k, block):
                acc += A[i0 : i0 + block, k0 : k0 + block] @ B[k0 : k0 + block, j0 : j0 + block]
    return C


def gemm_gflops(n: int = 512, repeats: int = 3, block: int = 128) -> float:
    """Measured GFLOP/s of the blocked GEMM at size n (best of repeats)."""
    rng = np.random.default_rng(0)
    A = rng.random((n, n))
    B = rng.random((n, n))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        blocked_gemm(A, B, block=block)
        best = min(best, time.perf_counter() - t0)
    return 2.0 * n**3 / best / 1e9

"""Geometric multigrid V-cycle: AMG2023's numerical core, simplified.

AMG2023 is an algebraic multigrid solver (hypre's BoomerAMG); we
implement the geometric analogue on a structured 2-D Poisson problem —
the same V-cycle control flow (smooth, restrict, coarse solve,
prolong, smooth) with the same setup/solve phase split the AMG FOM
uses.  Vectorised Jacobi smoothing, full-weighting restriction, and
bilinear prolongation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _residual(u: np.ndarray, f: np.ndarray, h2: float) -> np.ndarray:
    """Residual of the 5-point Poisson stencil with Dirichlet borders.

    Grid axes are the trailing two; any leading axes are batch, so the
    same code serves one solve and a whole block of solves.
    """
    r = np.zeros_like(u)
    r[..., 1:-1, 1:-1] = f[..., 1:-1, 1:-1] - (
        4.0 * u[..., 1:-1, 1:-1]
        - u[..., :-2, 1:-1]
        - u[..., 2:, 1:-1]
        - u[..., 1:-1, :-2]
        - u[..., 1:-1, 2:]
    ) / h2
    return r


def _jacobi(u: np.ndarray, f: np.ndarray, h2: float, sweeps: int, omega: float = 0.8) -> np.ndarray:
    for _ in range(sweeps):
        unew = u.copy()
        unew[..., 1:-1, 1:-1] = (1 - omega) * u[..., 1:-1, 1:-1] + omega * 0.25 * (
            u[..., :-2, 1:-1]
            + u[..., 2:, 1:-1]
            + u[..., 1:-1, :-2]
            + u[..., 1:-1, 2:]
            + h2 * f[..., 1:-1, 1:-1]
        )
        u = unew
    return u


def _restrict(r: np.ndarray) -> np.ndarray:
    """Full weighting onto the coarse grid (size (n//2)+1 per dim)."""
    nc = (r.shape[-1] - 1) // 2 + 1
    coarse = np.zeros(r.shape[:-2] + (nc, nc))
    coarse[..., 1:-1, 1:-1] = (
        4.0 * r[..., 2:-2:2, 2:-2:2]
        + 2.0 * (
            r[..., 1:-3:2, 2:-2:2]
            + r[..., 3:-1:2, 2:-2:2]
            + r[..., 2:-2:2, 1:-3:2]
            + r[..., 2:-2:2, 3:-1:2]
        )
        + (
            r[..., 1:-3:2, 1:-3:2]
            + r[..., 1:-3:2, 3:-1:2]
            + r[..., 3:-1:2, 1:-3:2]
            + r[..., 3:-1:2, 3:-1:2]
        )
    ) / 16.0
    return coarse


def _prolong(e: np.ndarray, fine_shape: tuple[int, ...]) -> np.ndarray:
    """Bilinear interpolation to the fine grid."""
    fine = np.zeros(fine_shape)
    fine[..., ::2, ::2] = e
    fine[..., 1::2, ::2] = 0.5 * (e[..., :-1, :] + e[..., 1:, :])
    fine[..., ::2, 1::2] = 0.5 * (fine[..., ::2, :-2:2] + fine[..., ::2, 2::2])
    fine[..., 1::2, 1::2] = 0.25 * (
        e[..., :-1, :-1] + e[..., 1:, :-1] + e[..., :-1, 1:] + e[..., 1:, 1:]
    )
    return fine


def _v_cycle(u: np.ndarray, f: np.ndarray, h: float, pre: int, post: int) -> np.ndarray:
    n = u.shape[-1]
    h2 = h * h
    if n <= 5:
        # Coarse solve: heavy smoothing is exact enough at 5x5.
        return _jacobi(u, f, h2, sweeps=50)
    u = _jacobi(u, f, h2, pre)
    r = _residual(u, f, h2)
    rc = _restrict(r)
    ec = np.zeros_like(rc)
    ec = _v_cycle(ec, rc, 2 * h, pre, post)
    u = u + _prolong(ec, u.shape)
    u = _jacobi(u, f, h2, post)
    return u


@dataclass(frozen=True)
class MGResult:
    """Outcome of a multigrid solve, phase-split like the AMG FOM."""

    u: np.ndarray
    cycles: int
    residual_history: tuple[float, ...]
    #: grid nonzeros summed over the hierarchy (the FOM's nnz_AP analogue)
    nnz_hierarchy: int

    @property
    def contraction_factor(self) -> float:
        """Mean per-cycle residual reduction."""
        h = self.residual_history
        if len(h) < 2 or h[0] == 0:
            return 0.0
        return float((h[-1] / h[0]) ** (1.0 / (len(h) - 1)))


def v_cycle_solve(
    n: int = 65,
    *,
    cycles: int = 10,
    pre_smooth: int = 2,
    post_smooth: int = 2,
    rhs: np.ndarray | None = None,
) -> MGResult:
    """Solve -Δu = f on the unit square with ``cycles`` V-cycles.

    ``n`` must be 2**k + 1 so the hierarchy coarsens cleanly.
    """
    if n < 5 or bin(n - 1).count("1") != 1:
        raise ValueError("n must be 2**k + 1 and >= 5")
    h = 1.0 / (n - 1)
    xs = np.linspace(0, 1, n)
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    f = rhs if rhs is not None else np.sin(np.pi * X) * np.sin(np.pi * Y)
    u = np.zeros((n, n))
    history = [float(np.linalg.norm(_residual(u, f, h * h)))]
    for _ in range(cycles):
        u = _v_cycle(u, f, h, pre_smooth, post_smooth)
        history.append(float(np.linalg.norm(_residual(u, f, h * h))))
    # 5-point stencil: ~5 nnz per fine point, hierarchy sums to ~4/3 fine.
    nnz = int(5 * n * n * 4 / 3)
    return MGResult(
        u=u,
        cycles=cycles,
        residual_history=tuple(history),
        nnz_hierarchy=nnz,
    )


def v_cycle_solve_block(
    rhs_block: np.ndarray,
    *,
    cycles: int = 10,
    pre_smooth: int = 2,
    post_smooth: int = 2,
) -> list[MGResult]:
    """Solve a batch of right-hand sides with shared V-cycles.

    ``rhs_block`` is (batch, n, n); the whole hierarchy — smoothing,
    restriction, coarse solves, prolongation — runs once over the batch
    axis, so ``batch`` solves cost one traversal of array operations
    instead of ``batch``.  Solve ``r`` is bit-identical to
    ``v_cycle_solve(n, rhs=rhs_block[r], ...)`` — the stencils are
    elementwise over the trailing grid axes.
    """
    if rhs_block.ndim != 3 or rhs_block.shape[1] != rhs_block.shape[2]:
        raise ValueError("rhs_block must be (batch, n, n)")
    n = rhs_block.shape[-1]
    if n < 5 or bin(n - 1).count("1") != 1:
        raise ValueError("n must be 2**k + 1 and >= 5")
    h = 1.0 / (n - 1)
    u = np.zeros_like(rhs_block, dtype=float)
    histories = [
        [float(np.linalg.norm(r))] for r in _residual(u, rhs_block, h * h)
    ]
    for _ in range(cycles):
        u = _v_cycle(u, rhs_block, h, pre_smooth, post_smooth)
        for k, r in enumerate(_residual(u, rhs_block, h * h)):
            histories[k].append(float(np.linalg.norm(r)))
    nnz = int(5 * n * n * 4 / 3)
    return [
        MGResult(
            u=u[k],
            cycles=cycles,
            residual_history=tuple(histories[k]),
            nnz_hierarchy=nnz,
        )
        for k in range(len(rhs_block))
    ]

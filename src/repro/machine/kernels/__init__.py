"""Real NumPy implementations of each proxy application's numerical core.

These are genuine, tested numerics — not models: a conjugate-gradient
solver (MiniFE), a geometric-multigrid V-cycle (AMG2023), Stream Triad,
blocked GEMM (MT-GEMM), Monte Carlo particle transport (Quicksilver), a
Lennard-Jones MD force loop (LAMMPS), and a KBA-style transport sweep
(Kripke).  The examples and benchmark harness run them for real; tests
validate their mathematical properties (CG converges on SPD systems, MG
contracts the residual, MC conserves particles, ...).
"""

from repro.machine.kernels.cg import CGResult, conjugate_gradient, poisson_2d
from repro.machine.kernels.gemm import blocked_gemm, gemm_gflops
from repro.machine.kernels.mc import MCTransportResult, mc_transport
from repro.machine.kernels.md import lj_forces, md_step
from repro.machine.kernels.multigrid import MGResult, v_cycle_solve
from repro.machine.kernels.sweep import kba_sweep
from repro.machine.kernels.triad import measure_triad_bandwidth, triad

__all__ = [
    "CGResult",
    "MCTransportResult",
    "MGResult",
    "blocked_gemm",
    "conjugate_gradient",
    "gemm_gflops",
    "kba_sweep",
    "lj_forces",
    "mc_transport",
    "md_step",
    "measure_triad_bandwidth",
    "poisson_2d",
    "triad",
    "v_cycle_solve",
]

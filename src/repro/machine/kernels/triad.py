"""Stream Triad kernel: ``a = b + scalar * c``.

The paper uses the Triad kernel to measure memory bandwidth (§2.8,
Stream).  Triad moves 24 bytes and performs 2 flops per element, so
bandwidth = 24 * n / time.
"""

from __future__ import annotations

import time

import numpy as np

#: bytes moved per element: load b, load c, store a (8 B doubles)
TRIAD_BYTES_PER_ELEMENT = 24


def triad(b: np.ndarray, c: np.ndarray, scalar: float, out: np.ndarray | None = None) -> np.ndarray:
    """One Triad sweep; writes into ``out`` if given (no allocation)."""
    if b.shape != c.shape:
        raise ValueError("b and c must have the same shape")
    if out is None:
        out = np.empty_like(b)
    # In-place composition avoids a temporary (guide: in-place ops).
    np.multiply(c, scalar, out=out)
    out += b
    return out


def measure_triad_bandwidth(n: int = 2_000_000, repeats: int = 5) -> float:
    """Measured host Triad bandwidth in GB/s (best of ``repeats``).

    Arrays are sized to spill the last-level cache so the figure reflects
    DRAM bandwidth, matching how STREAM is run.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(0)
    b = rng.random(n)
    c = rng.random(n)
    a = np.empty_like(b)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        triad(b, c, 3.0, out=a)
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return (TRIAD_BYTES_PER_ELEMENT * n) / best / 1e9

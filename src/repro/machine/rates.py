"""Sustained per-core compute rates by architecture and kernel class.

App performance models need "how fast does one core of arch X run
kernel class Y".  We classify kernels the standard way:

* ``COMPUTE`` — dense flops (GEMM-like); scales with vector width/freq.
* ``MEMORY`` — streaming, memory-bandwidth-bound (Stream, SpMV, CG).
* ``LATENCY`` — irregular access / branchy (Monte Carlo, graph walks).
* ``BANDWIDTH`` — structured sweeps, bound by cache+memory bandwidth
  with some reuse (Kripke, stencils).

Values are sustained GFLOP/s *per core* (COMPUTE/BANDWIDTH/LATENCY) or
per-node GB/s (``mem_bw_gbs``), calibrated to public STREAM and HPL
figures for each Table 2 processor.  Absolute accuracy is not the goal;
ratios between architectures drive the reproduced orderings (e.g. the
Xeon 8480+ node on-prem beats a 96-core EPYC Milan cloud node on AMG,
matching Figure 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CatalogError


class KernelClass(enum.Enum):
    COMPUTE = "compute"
    MEMORY = "memory"
    LATENCY = "latency"
    BANDWIDTH = "bandwidth"


@dataclass(frozen=True)
class ArchRates:
    """Sustained rates for one CPU architecture."""

    #: dense flops, GFLOP/s per core
    compute_gflops: float
    #: node memory bandwidth, GB/s (not per core — shared resource)
    mem_bw_gbs: float
    #: irregular-kernel rate, GFLOP/s-equivalent per core
    latency_gflops: float
    #: structured-sweep rate, GFLOP/s per core
    bandwidth_gflops: float


ARCH_RATES: dict[str, ArchRates] = {
    # Intel Sapphire Rapids (on-prem A): wide AVX-512, DDR5-4800 x8ch.
    "sapphire_rapids": ArchRates(38.0, 307.0, 3.2, 11.0),
    # AMD Milan (Hpc6a / c2d / HB96rs_v3): Zen3, DDR4-3200 x8ch.
    "milan": ArchRates(26.0, 190.0, 2.6, 8.0),
    # IBM POWER9 (on-prem B): strong memory subsystem, modest flops.
    "power9": ArchRates(17.0, 230.0, 2.2, 6.5),
    # Intel Skylake-SP (p3dn, ND40rs_v2 hosts).
    "skylake": ArchRates(24.0, 110.0, 2.4, 7.0),
    # Intel Haswell (n1-standard-32 hosts): oldest in the study.
    "haswell": ArchRates(14.0, 60.0, 1.8, 4.5),
}


def arch_rates(arch: str) -> ArchRates:
    try:
        return ARCH_RATES[arch]
    except KeyError:
        raise CatalogError(f"unknown architecture {arch!r}") from None


def node_rate(arch: str, cores: int, kernel_class: KernelClass) -> float:
    """Node-level sustained rate in GFLOP/s for a kernel class.

    Memory-bound kernels saturate the node's bandwidth regardless of
    core count (we convert GB/s to GFLOP/s at the Stream Triad intensity
    of 2 flops per 24 bytes); other classes scale with cores.
    """
    r = arch_rates(arch)
    if kernel_class is KernelClass.MEMORY:
        return r.mem_bw_gbs * (2.0 / 24.0)
    if kernel_class is KernelClass.COMPUTE:
        return r.compute_gflops * cores
    if kernel_class is KernelClass.LATENCY:
        return r.latency_gflops * cores
    if kernel_class is KernelClass.BANDWIDTH:
        # Sweep kernels scale with cores until they hit memory bandwidth.
        return min(r.bandwidth_gflops * cores, r.mem_bw_gbs * 0.5)
    raise CatalogError(f"unknown kernel class {kernel_class}")

"""Machine models: per-architecture compute rates, GPUs, real kernels.

``rates`` holds calibrated sustained rates per processor architecture
and kernel class; ``node``/``gpu`` assemble them into node-level
capability objects; ``kernels`` contains genuine NumPy implementations
of each proxy app's numerical core, used by the examples and
benchmarks and to validate the analytic models.
"""

from repro.machine.gpu import GpuModel, V100
from repro.machine.node import NodeModel
from repro.machine.rates import ARCH_RATES, KernelClass, node_rate

__all__ = [
    "ARCH_RATES",
    "GpuModel",
    "KernelClass",
    "NodeModel",
    "V100",
    "node_rate",
]

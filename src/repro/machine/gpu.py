"""GPU model: the NVIDIA V100 in its study configurations.

The V100 was "the only way to do a comparison with the same hardware
across clouds at our desired scale" (§2.2).  Three variants appear:
16 GB (Google Cloud, on-prem B) and 32 GB (AWS p3dn, Azure ND40rs_v2).

ECC: §3.3 (Mixbench) found every cloud defaults ECC **on** except
Azure, whose fleet was mixed (12.5–25% off per cluster); ECC costs up
to 15% of memory bandwidth.  :class:`GpuModel.effective_mem_bw` applies
the penalty, and :func:`sample_ecc_settings` reproduces the fleet
survey that discovered the inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import stream

#: Bandwidth penalty when ECC is enabled (paper cites "up to 15%").
ECC_BANDWIDTH_PENALTY = 0.15


@dataclass(frozen=True)
class GpuModel:
    """Sustained-rate model for one GPU."""

    name: str
    memory_gb: int
    #: sustained FP64 GFLOP/s (dense)
    fp64_gflops: float
    #: sustained memory bandwidth, GB/s (ECC off)
    mem_bw_gbs: float
    ecc_on: bool = True

    def effective_mem_bw(self) -> float:
        """Memory bandwidth after the ECC penalty."""
        return self.mem_bw_gbs * (1.0 - ECC_BANDWIDTH_PENALTY if self.ecc_on else 1.0)

    def with_ecc(self, on: bool) -> "GpuModel":
        return GpuModel(self.name, self.memory_gb, self.fp64_gflops, self.mem_bw_gbs, on)


#: V100 SXM2: 7.8 TF FP64 peak, ~900 GB/s HBM2; sustained figures below.
V100 = GpuModel("NVIDIA V100", memory_gb=16, fp64_gflops=6400.0, mem_bw_gbs=920.0)
V100_32GB = GpuModel("NVIDIA V100 32GB", memory_gb=32, fp64_gflops=6400.0, mem_bw_gbs=920.0)


#: Fraction of nodes with ECC *off* per cloud fleet (§3.3 Mixbench).
ECC_OFF_FRACTION: dict[str, float] = {
    "aws": 0.0,
    "g": 0.0,
    "p": 0.0,
    "az": 0.1875,  # midpoint of the observed 12.5–25% range
}


def sample_ecc_settings(cloud: str, nodes: int, *, seed: int = 0) -> np.ndarray:
    """Per-node ECC state for a freshly provisioned GPU cluster.

    Returns a boolean array (True = ECC on).  Azure draws a mixed fleet;
    all other clouds (and on-prem) come up uniformly on.
    """
    if nodes < 0:
        raise ValueError("nodes must be non-negative")
    frac_off = ECC_OFF_FRACTION.get(cloud, 0.0)
    if frac_off == 0.0:
        return np.ones(nodes, dtype=bool)
    rng = stream(seed, "ecc", cloud, nodes)
    return rng.random(nodes) >= frac_off

"""Node-level capability model assembled from catalog + rates + GPUs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import InstanceType
from repro.machine.gpu import V100, V100_32GB, GpuModel
from repro.machine.rates import KernelClass, arch_rates, node_rate
from repro.units import GFLOP


@dataclass(frozen=True)
class NodeModel:
    """Compute capability of one node of an instance type."""

    instance_type: InstanceType
    gpu_model: GpuModel | None

    @classmethod
    def for_instance(cls, itype: InstanceType, *, ecc_on: bool = True) -> "NodeModel":
        gpu = None
        if itype.gpu is not None:
            base = V100_32GB if itype.gpu.memory_gb >= 32 else V100
            gpu = base.with_ecc(ecc_on)
        return cls(instance_type=itype, gpu_model=gpu)

    # -- CPU ------------------------------------------------------------------

    def cpu_rate_gflops(self, kernel_class: KernelClass) -> float:
        """Node-level sustained CPU rate for a kernel class (GFLOP/s)."""
        return node_rate(
            self.instance_type.processor.arch, self.instance_type.cores, kernel_class
        )

    def cpu_time(self, gflops_of_work: float, kernel_class: KernelClass) -> float:
        """Seconds for this node to do ``gflops_of_work`` of one class."""
        if gflops_of_work < 0:
            raise ValueError("work must be non-negative")
        return gflops_of_work / self.cpu_rate_gflops(kernel_class)

    @property
    def mem_bw_gbs(self) -> float:
        return arch_rates(self.instance_type.processor.arch).mem_bw_gbs

    # -- GPU ------------------------------------------------------------------

    def gpu_rate_gflops(self, kernel_class: KernelClass) -> float:
        """Node-level sustained GPU rate (all usable GPUs)."""
        if self.gpu_model is None or self.instance_type.gpu is None:
            raise ValueError(f"{self.instance_type.name} has no GPUs")
        count = self.instance_type.gpu.count
        if kernel_class is KernelClass.MEMORY:
            # Bandwidth-bound: Triad intensity on HBM.
            return count * self.gpu_model.effective_mem_bw() * (2.0 / 24.0)
        if kernel_class is KernelClass.COMPUTE:
            return count * self.gpu_model.fp64_gflops
        if kernel_class is KernelClass.LATENCY:
            return count * self.gpu_model.fp64_gflops * 0.08
        if kernel_class is KernelClass.BANDWIDTH:
            return count * self.gpu_model.effective_mem_bw() * 0.25
        raise ValueError(f"unknown kernel class {kernel_class}")

    def gpu_time(self, gflops_of_work: float, kernel_class: KernelClass) -> float:
        if gflops_of_work < 0:
            raise ValueError("work must be non-negative")
        return gflops_of_work / self.gpu_rate_gflops(kernel_class)

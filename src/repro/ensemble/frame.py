"""Columnar result frames: NumPy structured-array views of run records.

A :class:`~repro.core.results.ResultStore` is a list of dataclasses —
ideal for building the dataset, slow for folding one.  An ensemble folds
*worlds × runs* records, so the fold's hot path converts each store to a
:class:`ResultFrame` once (one pass over the records) and aggregates on
typed columns from then on: the conversion also factorizes each
record's (env, app, scale) into an integer cell label, so every
aggregation is a handful of ``np.bincount`` passes over int64 labels —
no string comparisons on the hot path.  Over a paper-scale store (25k+
records) the vectorized cell aggregation is more than an order of
magnitude faster than the per-record Python loop it replaces
(``benchmarks/test_bench_ensemble.py`` keeps the receipt).

Float semantics are preserved exactly: ``np.bincount`` accumulates in
original record order, so every cell sum — and therefore every cell
mean — is bit-identical to the per-record loop, and matches ``np.mean``
of :meth:`ResultStore.foms` at study cell sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.sim.run_result import RunRecord, RunState

#: column order of the ``state`` code; index into this tuple to decode
STATE_ORDER: tuple[RunState, ...] = tuple(RunState)
_STATE_CODE = {state: code for code, state in enumerate(STATE_ORDER)}

#: the frame's schema: one typed column per dataset CSV field that
#: aggregations touch (string payloads like ``failure_kind`` stay in the
#: store; the frame is a fold structure, not an archive)
FRAME_DTYPE = np.dtype(
    [
        ("env", "U32"),
        ("app", "U24"),
        ("scale", "i8"),
        ("nodes", "i8"),
        ("iteration", "i8"),
        ("state", "i1"),
        ("fom", "f8"),
        ("wall_seconds", "f8"),
        ("hookup_seconds", "f8"),
        ("cost_usd", "f8"),
    ]
)

@dataclass(frozen=True)
class CellAggregates:
    """Struct-of-arrays: one entry per (env, app, scale) cell.

    Cells are sorted by (env, app, scale); every array is parallel.
    ``fom_mean`` / ``wall_mean`` average *completed* runs and are NaN
    for cells with none; ``cost_total`` sums every record (skips cost
    nothing, failures bill what they consumed).
    """

    env: np.ndarray
    app: np.ndarray
    scale: np.ndarray
    records: np.ndarray
    completed: np.ndarray
    fom_mean: np.ndarray
    wall_mean: np.ndarray
    cost_total: np.ndarray
    state_counts: dict[RunState, np.ndarray]

    def __len__(self) -> int:
        return len(self.env)

    def rows(self) -> list[dict]:
        """Per-cell dicts (JSON-safe: NaN means become ``None``)."""
        out = []
        for i in range(len(self)):
            fom = float(self.fom_mean[i])
            wall = float(self.wall_mean[i])
            out.append(
                {
                    "env": str(self.env[i]),
                    "app": str(self.app[i]),
                    "scale": int(self.scale[i]),
                    "records": int(self.records[i]),
                    "completed": int(self.completed[i]),
                    "fom_mean": None if np.isnan(fom) else fom,
                    "wall_mean": None if np.isnan(wall) else wall,
                    "cost_total": float(self.cost_total[i]),
                }
            )
        return out


class ResultFrame:
    """A columnar view of run records, built once per store."""

    def __init__(
        self,
        data: np.ndarray,
        *,
        cells: list[tuple[str, str, int]] | None = None,
        labels: np.ndarray | None = None,
    ):
        if data.dtype != FRAME_DTYPE:
            raise ValueError(f"frame data must have dtype {FRAME_DTYPE}")
        self.data = data
        # The cell factorization: ``cells`` lists the sorted unique
        # (env, app, scale) keys, ``labels`` maps each record to its
        # cell index.  from_records computes it during conversion; a
        # frame built from a raw array derives it lazily.
        self._cells = cells
        self._labels = labels
        # Contiguous copies of the numeric hot columns (field views into
        # a structured array are strided; reductions over them pay for
        # every cache miss).  Materialized once, on first aggregation.
        self._hot: tuple[np.ndarray, ...] | None = None

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "ResultFrame":
        """One conversion pass: dataclass list → typed columns + labels."""
        records = list(records)
        envs = [r.env_id for r in records]
        apps = [r.app for r in records]
        # Fixed-width columns truncate silently on assignment, which
        # would merge distinct cells; refuse over-long ids instead.
        for values, width, what in ((envs, 32, "env id"), (apps, 24, "app name")):
            too_long = next((v for v in values if len(v) > width), None)
            if too_long is not None:
                raise ValueError(
                    f"{what} {too_long!r} exceeds the frame's {width}-char column"
                )
        arr = np.empty(len(records), dtype=FRAME_DTYPE)
        arr["env"] = envs
        arr["app"] = apps
        arr["scale"] = [r.scale for r in records]
        arr["nodes"] = [r.nodes for r in records]
        arr["iteration"] = [r.iteration for r in records]
        arr["state"] = [_STATE_CODE[r.state] for r in records]
        arr["fom"] = [np.nan if r.fom is None else r.fom for r in records]
        arr["wall_seconds"] = [r.wall_seconds for r in records]
        arr["hookup_seconds"] = [r.hookup_seconds for r in records]
        arr["cost_usd"] = [r.cost_usd for r in records]
        keys = [(r.env_id, r.app, r.scale) for r in records]
        cells = sorted(set(keys))
        index = {cell: i for i, cell in enumerate(cells)}
        labels = np.fromiter(
            (index[key] for key in keys), dtype=np.int64, count=len(keys)
        )
        return cls(arr, cells=cells, labels=labels)

    @classmethod
    def from_store(cls, store) -> "ResultFrame":
        """Convert a :class:`~repro.core.results.ResultStore`."""
        return cls.from_records(store.records)

    def __len__(self) -> int:
        return len(self.data)

    def column(self, name: str) -> np.ndarray:
        """One typed column (a view, not a copy)."""
        return self.data[name]

    def states(self) -> list[RunState]:
        """Decoded run states, record order."""
        return [STATE_ORDER[code] for code in self.data["state"]]

    def _hot_columns(self) -> tuple[np.ndarray, ...]:
        """(state_codes, fom, wall, cost, completed), all contiguous."""
        if self._hot is None:
            state = np.ascontiguousarray(self.data["state"]).astype(np.int64)
            fom = np.ascontiguousarray(self.data["fom"])
            wall = np.ascontiguousarray(self.data["wall_seconds"])
            cost = np.ascontiguousarray(self.data["cost_usd"])
            completed = (state == _STATE_CODE[RunState.COMPLETED]) & ~np.isnan(fom)
            self._hot = (state, fom, wall, cost, completed)
        return self._hot

    def completed_mask(self) -> np.ndarray:
        """Completed runs carrying a figure of merit."""
        return self._hot_columns()[4]

    # -- vectorized group-by ------------------------------------------------

    def cell_index(self) -> tuple[list[tuple[str, str, int]], np.ndarray]:
        """(sorted unique cells, per-record int64 cell labels).

        Computed during conversion for frames built via
        :meth:`from_records`; derived vectorized (a factorize per key
        column, then one dense composite code) for frames handed a raw
        array.  Either way the cell order is sorted (env, app, scale).
        """
        if self._labels is None:
            env_codes, env_inv = np.unique(self.data["env"], return_inverse=True)
            app_codes, app_inv = np.unique(self.data["app"], return_inverse=True)
            sc_codes, sc_inv = np.unique(self.data["scale"], return_inverse=True)
            dense = (env_inv * len(app_codes) + app_inv) * len(sc_codes) + sc_inv
            present, labels = np.unique(dense, return_inverse=True)
            span = len(app_codes) * len(sc_codes)
            self._cells = [
                (
                    str(env_codes[code // span]),
                    str(app_codes[(code % span) // len(sc_codes)]),
                    int(sc_codes[code % len(sc_codes)]),
                )
                for code in present
            ]
            self._labels = labels.astype(np.int64)
        return self._cells, self._labels

    def cell_aggregates(self) -> CellAggregates:
        """Fold every (env, app, scale) cell in a few bincount passes.

        Group sums accumulate via ``np.bincount`` over the per-record
        labels, which adds in original record order — so every cell sum
        (and mean) is bit-identical to the per-record Python loop it
        replaces, and to ``np.mean`` of ``store.foms`` at study cell
        sizes.
        """
        cells, labels = self.cell_index()
        n_cells = len(cells)
        state, fom, wall, cost, completed = self._hot_columns()

        def _sums(values: np.ndarray) -> np.ndarray:
            return np.bincount(labels, weights=values, minlength=n_cells)

        records = np.bincount(labels, minlength=n_cells)
        n_completed = _sums(completed.astype(np.float64)).astype(np.int64)
        fom_sum = _sums(np.where(completed, fom, 0.0))
        wall_sum = _sums(np.where(completed, wall, 0.0))
        cost_total = _sums(cost)

        with np.errstate(invalid="ignore", divide="ignore"):
            fom_mean = np.where(n_completed > 0, fom_sum / n_completed, np.nan)
            wall_mean = np.where(n_completed > 0, wall_sum / n_completed, np.nan)

        # One pass for all states: a composite (cell, state) code.
        n_states = len(STATE_ORDER)
        per_state = np.bincount(
            labels * n_states + state,
            minlength=n_cells * n_states,
        ).reshape(n_cells, n_states)
        state_counts = {
            state: per_state[:, code] for code, state in enumerate(STATE_ORDER)
        }
        return CellAggregates(
            env=np.array([c[0] for c in cells], dtype="U32"),
            app=np.array([c[1] for c in cells], dtype="U24"),
            scale=np.array([c[2] for c in cells], dtype=np.int64),
            records=records,
            completed=n_completed,
            fom_mean=fom_mean,
            wall_mean=wall_mean,
            cost_total=cost_total,
            state_counts=state_counts,
        )

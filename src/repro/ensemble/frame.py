"""Columnar result frames: typed NumPy column views of run records.

A :class:`~repro.core.results.ResultStore` keeps the dataset in growing
typed column buffers; a :class:`ResultFrame` is the aggregation view
over those columns.  ``store.to_frame()`` hands the frame *views* of the
store's buffers — zero copies — so the fold's hot path starts at the
aggregation itself: each record's (env, app, scale) is factorized into
an integer cell label, and every aggregation is a handful of
``np.bincount`` passes over int64 labels — no string comparisons on the
hot path.  Over a paper-scale store (25k+ records) the vectorized cell
aggregation is more than an order of magnitude faster than the
per-record Python loop it replaces (``benchmarks/test_bench_ensemble.py``
keeps the receipt), and the zero-copy conversion beats the seed's
row-based ``from_records`` pass by far more
(``benchmarks/test_bench_plan.py``).

Frames can still be built from a list of :class:`RunRecord` dataclasses
(:meth:`ResultFrame.from_records` — the row-based path shard results
take) or from a raw structured array; either way the column storage and
the aggregation semantics are identical.

Float semantics are preserved exactly: ``np.bincount`` accumulates in
original record order, so every cell sum — and therefore every cell
mean — is bit-identical to the per-record loop, and matches ``np.mean``
of :meth:`ResultStore.foms` at study cell sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.sim.run_result import (
    APP_NAME_WIDTH,
    ENV_ID_WIDTH,
    STATE_CODE,
    STATE_ORDER,
    RunRecord,
    RunState,
)

_STATE_CODE = STATE_CODE  # the shared coding (repro.sim.run_result)

#: fixed string-column widths (shared with the store's buffers via
#: :mod:`repro.sim.run_result`); assignment beyond them would truncate
#: silently and merge distinct cells, so conversions refuse instead
ENV_WIDTH = ENV_ID_WIDTH
APP_WIDTH = APP_NAME_WIDTH

#: the frame's schema: one typed column per dataset CSV field that
#: aggregations touch (string payloads like ``failure_kind`` stay in the
#: store; the frame is a fold structure, not an archive)
FRAME_DTYPE = np.dtype(
    [
        ("env", f"U{ENV_WIDTH}"),
        ("app", f"U{APP_WIDTH}"),
        ("scale", "i8"),
        ("nodes", "i8"),
        ("iteration", "i8"),
        ("state", "i1"),
        ("fom", "f8"),
        ("wall_seconds", "f8"),
        ("hookup_seconds", "f8"),
        ("cost_usd", "f8"),
    ]
)

#: column names in schema order
FRAME_COLUMNS: tuple[str, ...] = tuple(FRAME_DTYPE.names)


def check_id_widths(envs: Iterable[str], apps: Iterable[str]) -> None:
    """Refuse env ids / app names wider than the frame's string columns."""
    for values, width, what in ((envs, ENV_WIDTH, "env id"), (apps, APP_WIDTH, "app name")):
        too_long = next((v for v in values if len(v) > width), None)
        if too_long is not None:
            raise ValueError(
                f"{what} {too_long!r} exceeds the frame's {width}-char column"
            )


@dataclass(frozen=True)
class CellAggregates:
    """Struct-of-arrays: one entry per (env, app, scale) cell.

    Cells are sorted by (env, app, scale); every array is parallel.
    ``fom_mean`` / ``wall_mean`` average *completed* runs and are NaN
    for cells with none; ``cost_total`` sums every record (skips cost
    nothing, failures bill what they consumed).
    """

    env: np.ndarray
    app: np.ndarray
    scale: np.ndarray
    records: np.ndarray
    completed: np.ndarray
    fom_mean: np.ndarray
    wall_mean: np.ndarray
    cost_total: np.ndarray
    state_counts: dict[RunState, np.ndarray]

    def __len__(self) -> int:
        return len(self.env)

    def rows(self) -> list[dict]:
        """Per-cell dicts (JSON-safe: NaN means become ``None``)."""
        out = []
        for i in range(len(self)):
            fom = float(self.fom_mean[i])
            wall = float(self.wall_mean[i])
            out.append(
                {
                    "env": str(self.env[i]),
                    "app": str(self.app[i]),
                    "scale": int(self.scale[i]),
                    "records": int(self.records[i]),
                    "completed": int(self.completed[i]),
                    "fom_mean": None if np.isnan(fom) else fom,
                    "wall_mean": None if np.isnan(wall) else wall,
                    "cost_total": float(self.cost_total[i]),
                }
            )
        return out


class ResultFrame:
    """A columnar view of run records.

    Internally the frame is a mapping of named typed columns — either
    views borrowed zero-copy from a columnar store, columns converted
    once from a record list, or the fields of a raw structured array.
    The structured-array form (:attr:`data`) is assembled lazily for
    callers that want one record-per-row value.
    """

    def __init__(
        self,
        data: np.ndarray | None = None,
        *,
        columns: Mapping[str, np.ndarray] | None = None,
        cells: list[tuple[str, str, int]] | None = None,
        labels: np.ndarray | None = None,
    ):
        if columns is None:
            if data is None:
                raise ValueError("a frame needs either data or columns")
            if data.dtype != FRAME_DTYPE:
                raise ValueError(f"frame data must have dtype {FRAME_DTYPE}")
            columns = {name: data[name] for name in FRAME_COLUMNS}
            self._data: np.ndarray | None = data
        else:
            missing = set(FRAME_COLUMNS) - set(columns)
            if missing:
                raise ValueError(f"frame columns missing {sorted(missing)}")
            lengths = {len(columns[name]) for name in FRAME_COLUMNS}
            if len(lengths) > 1:
                raise ValueError("frame columns must be parallel (equal lengths)")
            self._data = None
        self._columns = {name: columns[name] for name in FRAME_COLUMNS}
        # The cell factorization: ``cells`` lists the sorted unique
        # (env, app, scale) keys, ``labels`` maps each record to its
        # cell index.  from_records computes it during conversion; a
        # frame built from raw columns derives it lazily.
        self._cells = cells
        self._labels = labels
        # Contiguous copies of the numeric hot columns (field views into
        # a structured array are strided; reductions over them pay for
        # every cache miss).  Materialized once, on first aggregation.
        self._hot: tuple[np.ndarray, ...] | None = None

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        *,
        cells: list[tuple[str, str, int]] | None = None,
        labels: np.ndarray | None = None,
    ) -> "ResultFrame":
        """Wrap already-typed parallel columns; no copies are made."""
        return cls(columns=columns, cells=cells, labels=labels)

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "ResultFrame":
        """One conversion pass: dataclass list → typed columns + labels."""
        records = list(records)
        envs = [r.env_id for r in records]
        apps = [r.app for r in records]
        check_id_widths(envs, apps)
        n = len(records)
        columns = {
            "env": np.array(envs, dtype="U32") if n else np.empty(0, dtype="U32"),
            "app": np.array(apps, dtype="U24") if n else np.empty(0, dtype="U24"),
            "scale": np.fromiter((r.scale for r in records), dtype=np.int64, count=n),
            "nodes": np.fromiter((r.nodes for r in records), dtype=np.int64, count=n),
            "iteration": np.fromiter(
                (r.iteration for r in records), dtype=np.int64, count=n
            ),
            "state": np.fromiter(
                (_STATE_CODE[r.state] for r in records), dtype=np.int8, count=n
            ),
            "fom": np.fromiter(
                (np.nan if r.fom is None else r.fom for r in records),
                dtype=np.float64,
                count=n,
            ),
            "wall_seconds": np.fromiter(
                (r.wall_seconds for r in records), dtype=np.float64, count=n
            ),
            "hookup_seconds": np.fromiter(
                (r.hookup_seconds for r in records), dtype=np.float64, count=n
            ),
            "cost_usd": np.fromiter(
                (r.cost_usd for r in records), dtype=np.float64, count=n
            ),
        }
        keys = [(r.env_id, r.app, r.scale) for r in records]
        cells = sorted(set(keys))
        index = {cell: i for i, cell in enumerate(cells)}
        labels = np.fromiter(
            (index[key] for key in keys), dtype=np.int64, count=len(keys)
        )
        return cls(columns=columns, cells=cells, labels=labels)

    @classmethod
    def from_store(cls, store) -> "ResultFrame":
        """Convert a :class:`~repro.core.results.ResultStore`.

        Columnar stores hand over buffer views (zero-copy); anything
        else falls back to the record-list conversion pass.
        """
        frame_columns = getattr(store, "frame_columns", None)
        if frame_columns is not None:
            return cls.from_columns(frame_columns())
        return cls.from_records(store.records)

    def __len__(self) -> int:
        return len(self._columns["state"])

    @property
    def data(self) -> np.ndarray:
        """The one-row-per-record structured array (assembled lazily)."""
        if self._data is None:
            arr = np.empty(len(self), dtype=FRAME_DTYPE)
            for name in FRAME_COLUMNS:
                arr[name] = self._columns[name]
            self._data = arr
        return self._data

    def column(self, name: str) -> np.ndarray:
        """One typed column (a view, not a copy)."""
        return self._columns[name]

    def states(self) -> list[RunState]:
        """Decoded run states, record order."""
        return [STATE_ORDER[code] for code in self._columns["state"]]

    def _hot_columns(self) -> tuple[np.ndarray, ...]:
        """(state_codes, fom, wall, cost, completed), all contiguous."""
        if self._hot is None:
            state = np.ascontiguousarray(self._columns["state"]).astype(np.int64)
            fom = np.ascontiguousarray(self._columns["fom"])
            wall = np.ascontiguousarray(self._columns["wall_seconds"])
            cost = np.ascontiguousarray(self._columns["cost_usd"])
            completed = (state == _STATE_CODE[RunState.COMPLETED]) & ~np.isnan(fom)
            self._hot = (state, fom, wall, cost, completed)
        return self._hot

    def completed_mask(self) -> np.ndarray:
        """Completed runs carrying a figure of merit."""
        return self._hot_columns()[4]

    # -- vectorized group-by ------------------------------------------------

    def cell_index(self) -> tuple[list[tuple[str, str, int]], np.ndarray]:
        """(sorted unique cells, per-record int64 cell labels).

        Computed during conversion for frames built via
        :meth:`from_records`; derived vectorized (a factorize per key
        column, then one dense composite code) for frames handed raw
        columns.  Either way the cell order is sorted (env, app, scale).
        """
        if self._labels is None:
            env_codes, env_inv = np.unique(self._columns["env"], return_inverse=True)
            app_codes, app_inv = np.unique(self._columns["app"], return_inverse=True)
            sc_codes, sc_inv = np.unique(self._columns["scale"], return_inverse=True)
            dense = (env_inv * len(app_codes) + app_inv) * len(sc_codes) + sc_inv
            present, labels = np.unique(dense, return_inverse=True)
            span = len(app_codes) * len(sc_codes)
            self._cells = [
                (
                    str(env_codes[code // span]),
                    str(app_codes[(code % span) // len(sc_codes)]),
                    int(sc_codes[code % len(sc_codes)]),
                )
                for code in present
            ]
            self._labels = labels.astype(np.int64)
        return self._cells, self._labels

    def cell_aggregates(self) -> CellAggregates:
        """Fold every (env, app, scale) cell in a few bincount passes.

        Group sums accumulate via ``np.bincount`` over the per-record
        labels, which adds in original record order — so every cell sum
        (and mean) is bit-identical to the per-record Python loop it
        replaces, and to ``np.mean`` of ``store.foms`` at study cell
        sizes.
        """
        cells, labels = self.cell_index()
        n_cells = len(cells)
        state, fom, wall, cost, completed = self._hot_columns()

        def _sums(values: np.ndarray) -> np.ndarray:
            return np.bincount(labels, weights=values, minlength=n_cells)

        records = np.bincount(labels, minlength=n_cells)
        n_completed = _sums(completed.astype(np.float64)).astype(np.int64)
        fom_sum = _sums(np.where(completed, fom, 0.0))
        wall_sum = _sums(np.where(completed, wall, 0.0))
        cost_total = _sums(cost)

        with np.errstate(invalid="ignore", divide="ignore"):
            fom_mean = np.where(n_completed > 0, fom_sum / n_completed, np.nan)
            wall_mean = np.where(n_completed > 0, wall_sum / n_completed, np.nan)

        # One pass for all states: a composite (cell, state) code.
        n_states = len(STATE_ORDER)
        per_state = np.bincount(
            labels * n_states + state,
            minlength=n_cells * n_states,
        ).reshape(n_cells, n_states)
        state_counts = {
            state: per_state[:, code] for code, state in enumerate(STATE_ORDER)
        }
        return CellAggregates(
            env=np.array([c[0] for c in cells], dtype="U32"),
            app=np.array([c[1] for c in cells], dtype="U24"),
            scale=np.array([c[2] for c in cells], dtype=np.int64),
            records=records,
            completed=n_completed,
            fom_mean=fom_mean,
            wall_mean=wall_mean,
            cost_total=cost_total,
            state_counts=state_counts,
        )

"""Ensemble specs: a declarative seed-grid × scenario-grid of campaigns.

An :class:`EnsembleSpec` names a Monte-Carlo replication of the study:
how many replicas (independent seeds), which counterfactual worlds
(:mod:`repro.scenarios`), and which slice of the campaign matrix each
world runs.  Like a :class:`~repro.scenarios.spec.Scenario` it is a pure
value — dict/JSON loadable, round-trippable, with a stable
:meth:`digest` — and it never *does* anything;
:class:`~repro.ensemble.runner.EnsembleRunner` executes it.

Replica ``r`` runs at seed ``base_seed + r``, so replica 0 of the
baseline scenario *is* the seed study: an ensemble with
``n_replicas=1`` and no scenarios reproduces the paper's point
estimates exactly, and every additional replica widens the sample the
distribution report draws from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scenarios.presets import scenario as scenario_lookup
from repro.scenarios.spec import Scenario


@dataclass(frozen=True)
class EnsembleSpec:
    """One declarative replication plan: seeds × scenarios × cells."""

    #: independent replicas per scenario; replica ``r`` runs at seed
    #: ``base_seed + r``
    n_replicas: int = 3
    base_seed: int = 0
    #: counterfactual worlds to replicate alongside the baseline (the
    #: baseline itself is always included — it anchors the thresholds)
    scenarios: tuple[Scenario, ...] = ()
    #: campaign slice; ``None`` selects every registered environment/app
    #: and each environment's own study sizes
    env_ids: tuple[str, ...] | None = None
    apps: tuple[str, ...] | None = None
    sizes: tuple[int, ...] | None = None
    iterations: int = 2

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigurationError("an ensemble needs n_replicas >= 1")
        if self.iterations < 1:
            raise ConfigurationError("an ensemble needs iterations >= 1")
        # Same grid invariants as a sweep (unique ids, 'baseline'
        # reserved) — validated by the one shared implementation.
        from repro.scenarios.presets import scenario_grid

        try:
            scenario_grid(self.scenarios, include_baseline=False)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None

    # -- derived ------------------------------------------------------------

    def replica_seed(self, replica: int) -> int:
        """The study seed replica ``replica`` runs at."""
        return self.base_seed + replica

    def scenario_grid(self) -> tuple[Scenario, ...]:
        """Every world of the grid, baseline first."""
        from repro.scenarios.presets import scenario_grid

        return tuple(scenario_grid(self.scenarios))

    def worlds(self) -> list[tuple[Scenario, int]]:
        """The full (scenario, replica) grid in deterministic fold order.

        Scenario-major, replicas ascending — so world 0 is always
        (baseline, replica 0): the seed study, whose per-cell point
        estimates anchor the exceedance thresholds.
        """
        return [
            (scn, replica)
            for scn in self.scenario_grid()
            for replica in range(self.n_replicas)
        ]

    def study_config(self, replica: int):
        """The :class:`~repro.core.study.StudyConfig` for one replica."""
        from repro.apps.registry import APPS
        from repro.core.study import StudyConfig
        from repro.envs.registry import ENVIRONMENTS

        return StudyConfig(
            env_ids=self.env_ids or tuple(ENVIRONMENTS),
            apps=self.apps or tuple(APPS),
            sizes=self.sizes,
            iterations=self.iterations,
            seed=self.replica_seed(replica),
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`."""
        out: dict = {
            "n_replicas": self.n_replicas,
            "base_seed": self.base_seed,
            "iterations": self.iterations,
        }
        if self.scenarios:
            out["scenarios"] = [scn.to_dict() for scn in self.scenarios]
        if self.env_ids is not None:
            out["env_ids"] = list(self.env_ids)
        if self.apps is not None:
            out["apps"] = list(self.apps)
        if self.sizes is not None:
            out["sizes"] = list(self.sizes)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "EnsembleSpec":
        """Build a spec from a plain dict (e.g. parsed JSON).

        ``scenarios`` entries may be scenario dicts
        (:meth:`~repro.scenarios.spec.Scenario.from_dict`) or registered
        preset names (``"spot-everything"``).
        """
        allowed = (
            "n_replicas", "base_seed", "scenarios",
            "env_ids", "apps", "sizes", "iterations",
        )
        unknown = set(data) - set(allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown ensemble fields: {sorted(unknown)} "
                f"(known: {sorted(allowed)})"
            )

        def _scenario(entry) -> Scenario:
            if isinstance(entry, str):
                return scenario_lookup(entry)
            return Scenario.from_dict(entry)

        def _ids(value):
            return None if value is None else tuple(value)

        return cls(
            n_replicas=int(data.get("n_replicas", 3)),
            base_seed=int(data.get("base_seed", 0)),
            scenarios=tuple(_scenario(s) for s in data.get("scenarios", ())),
            env_ids=_ids(data.get("env_ids")),
            apps=_ids(data.get("apps")),
            sizes=None if data.get("sizes") is None
            else tuple(int(s) for s in data["sizes"]),
            iterations=int(data.get("iterations", 2)),
        )

    @classmethod
    def from_json(cls, text: str) -> "EnsembleSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the plan's semantics.

        Scenario free-text descriptions do not participate (their
        semantic digests do); everything else that shapes the grid does.
        """
        payload = self.to_dict()
        payload["scenarios"] = [scn.digest() for scn in self.scenarios]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

"""Monte-Carlo replication: distributions, not point estimates.

The paper's campaign is a single world — one seed, five iterations per
cell, a point estimate for every figure of merit, cost, and incident
count.  This package replicates the whole study across a seed grid × a
scenario grid and reports *distributions*: means with 95% confidence
intervals, exact percentiles, and exceedance probabilities against the
seed study's own point values.

* :mod:`~repro.ensemble.spec` — :class:`EnsembleSpec`, the declarative
  plan (replicas, base seed, scenarios, cell filters; dict/JSON
  loadable, stable digest);
* :mod:`~repro.ensemble.frame` — :class:`ResultFrame`, the columnar
  fast path: one NumPy structured array per store, vectorized
  (env, app, scale) group-by;
* :mod:`~repro.ensemble.stats` — :class:`StreamAccumulator` /
  :class:`CellStats`, streaming Welford moments, min/max, and exact
  small-N percentiles keyed by cell — O(cells) memory however many
  worlds run;
* :mod:`~repro.ensemble.runner` — :class:`EnsembleRunner`, a thin
  front-end over the shared execution planner (:mod:`repro.plan`): the
  grid compiles to one :class:`~repro.plan.ir.RunPlan`, worlds stream
  through the :class:`~repro.plan.executor.PlanExecutor`, each world
  folds on arrival, and per-world summaries are cached
  (:func:`repro.sim.cache.world_key`) so warm re-runs are nearly free.

Quickstart::

    from repro.ensemble import EnsembleRunner, EnsembleSpec
    from repro.scenarios import scenario

    spec = EnsembleSpec(
        n_replicas=8,
        scenarios=(scenario("spot-everything"),),
        env_ids=("cpu-eks-aws",), apps=("amg2023",), sizes=(32,),
    )
    result = EnsembleRunner(spec, workers=4).run()
    print(result.render())   # mean ± CI, p10/p50/p90, P(FOM ≥ baseline)
"""

from repro.ensemble.frame import FRAME_DTYPE, CellAggregates, ResultFrame
from repro.ensemble.runner import EnsembleResult, EnsembleRunner
from repro.ensemble.spec import EnsembleSpec
from repro.ensemble.stats import CellStats, StreamAccumulator, t_critical_95

__all__ = [
    "CellAggregates",
    "CellStats",
    "EnsembleResult",
    "EnsembleRunner",
    "EnsembleSpec",
    "FRAME_DTYPE",
    "ResultFrame",
    "StreamAccumulator",
    "t_critical_95",
]

"""Streaming statistics: fold worlds one at a time, keep O(cells) state.

An ensemble visits worlds sequentially and must never hold
O(worlds × runs) records.  Each world is reduced to one scalar per
(cell, measure) by the columnar frame; this module accumulates those
scalars:

* **Welford mean/variance** — numerically stable single-pass moments,
  no sample list needed;
* **min/max** — running extremes;
* **exact small-N percentiles** — the per-world samples themselves are
  retained (one float per world per cell — O(cells × replicas), *not*
  O(worlds × runs)), because at ensemble sizes (tens of replicas) exact
  order statistics beat any sketch and cost nothing.

Confidence intervals use Student's t (two-sided 95%) so small replica
counts widen honestly instead of pretending to normality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: two-sided 95% Student-t critical values for df 1..30; beyond that the
#: normal approximation (1.960) is within half a percent
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.960


class StreamAccumulator:
    """Single-pass moments plus exact small-N order statistics."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum", "_samples")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []

    def push(self, value: float) -> None:
        """Fold one per-world scalar (Welford update)."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self._samples.append(value)

    # -- moments ------------------------------------------------------------

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean; 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return self.std / math.sqrt(self.count)

    def ci95_halfwidth(self) -> float:
        """Half-width of the two-sided 95% CI on the mean (Student's t)."""
        if self.count < 2:
            return 0.0
        return t_critical_95(self.count - 1) * self.sem

    # -- order statistics ---------------------------------------------------

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (linear interpolation); NaN when empty."""
        if not self._samples:
            return math.nan
        return float(np.percentile(np.asarray(self._samples, dtype=np.float64), q))

    def exceedance(self, threshold: float) -> float:
        """Fraction of samples ``>= threshold``; NaN when empty."""
        if not self._samples:
            return math.nan
        return sum(1 for x in self._samples if x >= threshold) / self.count

    def summary(self) -> dict:
        """JSON-safe snapshot of every statistic."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95_halfwidth(),
            "min": self.minimum,
            "max": self.maximum,
            "p10": self.percentile(10.0),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
        }


@dataclass
class CellStats:
    """Streaming distribution state for one (scenario, env, app, scale).

    Each accumulator folds one scalar per world: the cell's mean FOM
    over completed runs, mean wall seconds, total dollar cost, and
    completed-run count.  Worlds where the cell completed nothing push
    to ``cost``/``completed`` but not ``fom``/``wall`` — ``worlds``
    counts every visit so the gap is visible.
    """

    worlds: int = 0
    fom: StreamAccumulator = field(default_factory=StreamAccumulator)
    wall: StreamAccumulator = field(default_factory=StreamAccumulator)
    cost: StreamAccumulator = field(default_factory=StreamAccumulator)
    completed: StreamAccumulator = field(default_factory=StreamAccumulator)

    def fold_cell(self, cell: dict) -> None:
        """Fold one world's per-cell summary row (see frame.rows())."""
        self.worlds += 1
        if cell["fom_mean"] is not None:
            self.fom.push(cell["fom_mean"])
        if cell["wall_mean"] is not None:
            self.wall.push(cell["wall_mean"])
        self.cost.push(cell["cost_total"])
        self.completed.push(cell["completed"])

"""The Monte-Carlo replication engine: seeds × scenarios → distributions.

:class:`EnsembleRunner` executes an :class:`~repro.ensemble.spec.EnsembleSpec`
by fanning every replica-world — one full campaign at one
``(seed, scenario)`` coordinate — through the study's own parallel
machinery, then folding each world down to streaming per-cell statistics
the moment its shards return.  Three properties are engineered in:

**Determinism.**  Worlds are planned and folded in spec order
(scenario-major, replicas ascending) no matter how many workers execute
the shards, and every shard is the same pure function the study runner
uses — so any worker count produces a byte-identical distribution
report, and world 0 (baseline, replica 0) *is* the seed study.

**Bounded memory.**  Shard batches stream through
:func:`~repro.parallel.pool.pmap_chunked`; each world collapses to one
:class:`~repro.ensemble.frame.ResultFrame` fold (a dozen floats per
cell) before the next world's records exist.  State is O(cells), never
O(worlds × runs).

**Warm re-runs are nearly free.**  Cache keys are seed- and
scenario-aware at all three levels: run and cell entries
(:mod:`repro.sim.cache`) replay individual simulations, and a new
world-level entry (:func:`~repro.sim.cache.world_key`) stores each
world's *folded summary* so a repeat ensemble skips shard execution and
the fold entirely.

Container builds contribute incidents but no run records and do not
vary across worlds, so the ensemble (a distribution engine over
records) skips them — exactly like
:func:`~repro.parallel.shard.execute_shard` itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.results import ResultStore
from repro.ensemble.frame import ResultFrame
from repro.ensemble.spec import EnsembleSpec
from repro.ensemble.stats import CellStats, StreamAccumulator
from repro.parallel.merge import TransportStats
from repro.parallel.pool import FaultStats
from repro.parallel.shard import ShardResult
from repro.plan import PlanExecutor, PlanWorld, ReuseStats, RunPlan, compile_ensemble
from repro.errors import ConfigurationError
from repro.scenarios.spec import active
from repro.sim.cache import RunCache, world_key
from repro.sim.execution import ExecutionEngine
from repro.telemetry import span

#: world-summary payload schema; bump on shape changes so stale
#: summaries miss instead of resurfacing
WORLD_SUMMARY_VERSION = 1


def _engine_options() -> dict:
    """The engine options every ensemble shard runs under.

    Shards build their engines with defaults
    (:func:`~repro.parallel.shard.execute_shard`), so the world key
    derives the options from a default engine — the same way the
    cell-level key derives them from the executing engine — and cannot
    drift if the default ever changes.
    """
    return {"azure_ucx_tuned": ExecutionEngine().azure_ucx_tuned}

#: a cell's identity across worlds
CellKey = tuple[str, str, str, int]  # (scenario_id, env, app, scale)


@dataclass
class EnsembleResult:
    """Everything an ensemble folded, ready to report.

    ``cells`` maps (scenario_id, env, app, scale) → streaming stats, in
    deterministic fold order (scenario-major, cells sorted).
    ``thresholds`` holds the seed study's per-cell point-estimate FOMs —
    world 0's values, the numbers the paper would have published — which
    the distribution report turns into exceedance probabilities.
    """

    spec: EnsembleSpec
    cells: dict[CellKey, CellStats] = field(default_factory=dict)
    thresholds: dict[tuple[str, str, int], float] = field(default_factory=dict)
    spend: dict[str, StreamAccumulator] = field(default_factory=dict)
    incidents: dict[str, StreamAccumulator] = field(default_factory=dict)
    worlds: int = 0
    world_cache_hits: int = 0
    world_cache_misses: int = 0
    #: malformed world-summary entries encountered (each re-executed,
    #: each leaving a one-line warning — see :mod:`repro.sim.cache`)
    world_cache_invalid: int = 0
    #: why those entries were invalid: reason label → count (capped at
    #: :data:`~repro.sim.cache.INVALID_REASON_CAP` labels)
    world_cache_invalid_reasons: dict[str, int] = field(default_factory=dict)
    #: cell-granular reuse accounting for incremental runs
    #: (:class:`~repro.plan.executor.ReuseStats`, including the count of
    #: malformed cell-summary entries met on the reuse path); ``None``
    #: for from-scratch runs
    reuse: ReuseStats | None = None
    #: how executed worlds' shard stores crossed back from the worker
    #: pool (:class:`~repro.parallel.merge.TransportStats`); world-cache
    #: replays ship nothing, so a fully-warm run reports no blocks.
    #: Deliberately absent from :meth:`to_json_dict` — transport is an
    #: execution property, not part of the dataset.
    transport: TransportStats | None = None
    #: recovery events executed worlds survived (retries, requeues,
    #: rebuilds, resumed cells); included in :meth:`to_json_dict` only
    #: when something actually happened, so clean snapshots are
    #: byte-identical to pre-fault-tolerance ones
    faults: FaultStats | None = None

    def scenario_ids(self) -> list[str]:
        """Scenario ids in fold order (baseline first)."""
        return [scn.scenario_id for scn in self.spec.scenario_grid()]

    def threshold_for(self, env: str, app: str, scale: int) -> float | None:
        return self.thresholds.get((env, app, scale))

    # -- reporting ----------------------------------------------------------

    def distribution_table(self):
        """Per-cell CI/percentile table (:mod:`repro.reporting.distributions`)."""
        from repro.reporting.distributions import distribution_table

        return distribution_table(self)

    def exceedance_table(self):
        """Per-scenario exceedance summary."""
        from repro.reporting.distributions import exceedance_table

        return exceedance_table(self)

    def render(self) -> str:
        """Both tables as fixed-width text."""
        from repro.reporting.distributions import render_distributions

        return render_distributions(self)

    def to_json_dict(self) -> dict:
        """A JSON-safe snapshot of the whole distribution dataset."""
        cells = []
        for (sid, env, app, scale), stats in self.cells.items():
            threshold = self.threshold_for(env, app, scale)
            entry = {
                "scenario": sid,
                "env": env,
                "app": app,
                "scale": scale,
                "worlds": stats.worlds,
                "fom": stats.fom.summary(),
                "wall_seconds": stats.wall.summary(),
                "cost_usd": stats.cost.summary(),
                "completed": stats.completed.summary(),
                "fom_threshold": threshold,
            }
            if threshold is not None and stats.fom.count:
                entry["fom_exceedance"] = stats.fom.exceedance(threshold)
            cells.append(entry)
        out = {
            "spec": self.spec.to_dict(),
            "digest": self.spec.digest(),
            "worlds": self.worlds,
            "world_cache": {
                "hits": self.world_cache_hits,
                "misses": self.world_cache_misses,
                "invalid": self.world_cache_invalid,
            },
            "spend_usd": {sid: acc.summary() for sid, acc in self.spend.items()},
            "incidents": {sid: acc.summary() for sid, acc in self.incidents.items()},
            "cells": cells,
        }
        if self.reuse is not None:
            out["cell_reuse"] = self.reuse.to_dict()
        if self.faults is not None and self.faults.activity:
            out["faults"] = self.faults.to_dict()
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)


class EnsembleRunner:
    """Executes an :class:`EnsembleSpec` and folds the distributions.

    ``workers`` and ``cache_dir`` behave exactly as on
    :class:`~repro.core.study.StudyRunner`; the cache additionally
    stores per-world folded summaries under
    :func:`~repro.sim.cache.world_key`.
    """

    def __init__(
        self,
        spec: EnsembleSpec,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        incremental: bool = False,
        baseline_plan: RunPlan | None = None,
        transport: str = "auto",
        retry=None,
        chaos=None,
        resume: bool = False,
    ):
        if incremental and cache_dir is None:
            raise ConfigurationError(
                "an incremental ensemble needs a cache directory: "
                "untouched cells attach from the cell-level cache the "
                "baseline replicas write (pass cache_dir=...)"
            )
        if baseline_plan is not None and not incremental:
            raise ConfigurationError(
                "baseline_plan only makes sense with incremental=True: "
                "it extends the diff baseline the incremental schedule "
                "attaches cells from"
            )
        if resume and cache_dir is None:
            raise ConfigurationError(
                "resume needs a cache directory: completed cells re-attach "
                "through the journal and caches the interrupted run wrote "
                "(pass cache_dir=...)"
            )
        self.spec = spec
        self.workers = workers
        self.transport = transport
        self.cache_dir = cache_dir
        self.incremental = incremental
        #: retry ladder / fault injection / journal re-attachment,
        #: threaded through to every sub-plan's executor
        self.retry = retry
        self.chaos = chaos
        self.resume = resume
        #: accumulates over one run() invocation (see EnsembleResult)
        self._transport_stats = TransportStats()
        self._fault_stats = FaultStats()
        #: extra worlds (e.g. a campaign's smoke stage) whose cached
        #: cells this run may attach, on top of its own baseline replicas
        self.baseline_plan = baseline_plan

    # -- planning -----------------------------------------------------------

    def compile(self) -> RunPlan:
        """The whole grid as one :class:`~repro.plan.ir.RunPlan`."""
        return compile_ensemble(self.spec, cache_dir=self.cache_dir)

    def _plans(self) -> tuple[PlanWorld, ...]:
        """The grid's worlds in fold order (compiled plan's world list)."""
        return self.compile().worlds

    def _world_key(self, world: PlanWorld) -> str:
        scn = active(world.scenario)
        config = self.spec.study_config(world.replica)
        return world_key(
            seed=world.seed,
            env_ids=tuple(config.env_ids),
            apps=tuple(config.apps),
            sizes=config.sizes,
            iterations=config.iterations,
            engine_options=_engine_options(),
            scenario=scn.digest() if scn is not None else None,
        )

    # -- execution ----------------------------------------------------------

    def run(self) -> EnsembleResult:
        """Execute every world and fold the streaming distributions.

        An incremental run schedules two phases: the baseline replicas
        execute first (writing their cell- and world-level summaries),
        then the full grid streams in fold order — the baseline worlds
        replay from the world cache they just populated, and every
        scenario world executes diff-aware, attaching cells its scenario
        cannot touch.  Fold order (and therefore every folded statistic)
        is byte-identical to a from-scratch run.
        """
        result = EnsembleResult(spec=self.spec)
        self._transport_stats = TransportStats()
        result.transport = self._transport_stats
        self._fault_stats = FaultStats()
        result.faults = self._fault_stats
        cache = RunCache(self.cache_dir) if self.cache_dir else None
        plan = self.compile()
        with span(
            "ensemble.run",
            worlds=plan.n_worlds,
            workers=self.workers,
            incremental=self.incremental,
        ):
            baseline: RunPlan | None = None
            if self.incremental:
                result.reuse = ReuseStats()
                own_baseline, _ = plan.split_baseline()
                # Phase 1: run (and summary-cache) the baseline replicas.
                # Their summaries are discarded here — the main pass below
                # replays them from the world cache *in fold order*, so the
                # streamed folds see the exact from-scratch ordering.
                for _ in self._summaries(own_baseline, cache):
                    pass
                # The diff baseline may extend beyond this run's own
                # baseline replicas: a campaign threads its smoke-stage
                # plan in, so cells that stage already simulated (at the
                # same seed and footprint) attach from the cell cache
                # instead of re-executing.  Sound because the diff
                # matches shards by content-addressed summary keys.
                baseline = own_baseline
                if self.baseline_plan is not None:
                    baseline = RunPlan.concat(own_baseline, self.baseline_plan)
            for world, summary, cached in self._summaries(
                plan, cache, baseline=baseline, reuse=result.reuse
            ):
                if cache is not None:  # no phantom misses when uncached
                    if cached:
                        result.world_cache_hits += 1
                    else:
                        result.world_cache_misses += 1
                with span("ensemble.fold", world=world.index):
                    self._fold(result, world, summary)
                result.worlds += 1
            if cache is not None:
                # This cache object only ever touches world-summary entries,
                # so its invalid counter *is* the world-level degradation.
                result.world_cache_invalid = cache.invalid
                result.world_cache_invalid_reasons = dict(cache.invalid_reasons)
            return result

    def _summaries(
        self,
        plan: RunPlan,
        cache: RunCache | None,
        *,
        baseline: RunPlan | None = None,
        reuse: ReuseStats | None = None,
    ) -> Iterator[tuple[PlanWorld, dict, bool]]:
        """Yield (world, folded summary, was-cached) in fold order.

        Cached worlds replay their stored summary; contiguous runs of
        missing worlds execute through the shared plan executor as one
        sub-plan.  The pending list is flushed before any cached world
        is yielded, so the output order is exactly the plan order.
        ``baseline`` switches the executed sub-plans to the incremental
        mode, diffing against it; ``reuse`` accumulates their cell
        accounting.
        """
        pending: list[tuple[PlanWorld, str | None]] = []
        for world in plan.worlds:
            key = self._world_key(world) if cache is not None else None
            if cache is not None:
                with span("ensemble.world_probe", world=world.index):
                    data = cache.get_json(key, level="world")
            else:
                data = None
            if self._valid_summary(data):
                yield from self._execute(plan, pending, cache, baseline=baseline, reuse=reuse)
                pending = []
                yield world, data, True
            else:
                if data is not None and cache is not None:
                    # JSON-valid but malformed: trace the degradation
                    # (non-JSON corruption is traced inside get_json).
                    cache.note_invalid(key, "world summary malformed")
                pending.append((world, key))
        yield from self._execute(plan, pending, cache, baseline=baseline, reuse=reuse)

    @staticmethod
    def _is_number(value) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    @classmethod
    def _valid_cell(cls, cell) -> bool:
        return (
            isinstance(cell, dict)
            and isinstance(cell.get("env"), str)
            and isinstance(cell.get("app"), str)
            and all(
                cls._is_number(cell.get(field))
                for field in ("scale", "records", "completed", "cost_total")
            )
            and all(
                cell.get(field) is None or cls._is_number(cell[field])
                for field in ("fom_mean", "wall_mean")
            )
        )

    @classmethod
    def _valid_summary(cls, data) -> bool:
        """Deep-enough validation that a cached entry can be folded.

        JSON-valid but malformed entries (truncated-and-repaired files,
        rows missing fields, mistyped values) must re-simulate
        silently, exactly like non-JSON corruption — the cache is an
        accelerator, never a source of truth.  Every field and type
        :meth:`_fold` touches is checked here.
        """
        if not (isinstance(data, dict) and data.get("v") == WORLD_SUMMARY_VERSION):
            return False
        cells = data.get("cells")
        if not isinstance(cells, list) or not all(map(cls._valid_cell, cells)):
            return False
        return cls._is_number(data.get("spend")) and cls._is_number(
            data.get("incidents")
        )

    def _execute(
        self,
        plan: RunPlan,
        pending: list[tuple[PlanWorld, str | None]],
        cache: RunCache | None,
        *,
        baseline: RunPlan | None = None,
        reuse: ReuseStats | None = None,
    ) -> Iterator[tuple[PlanWorld, dict, bool]]:
        """Execute missing worlds through the shared executor, in order.

        With a ``baseline`` plan the sub-plan runs incrementally: cells
        the diff proves untouched attach their folded summaries from the
        cell cache instead of simulating.
        """
        if not pending:
            return
        executor = PlanExecutor(
            plan.subset(world.index for world, _ in pending),
            workers=self.workers,
            incremental=baseline is not None,
            baseline=baseline,
            transport=self.transport,
            retry=self.retry,
            chaos=self.chaos,
            resume=self.resume,
        )
        world_results = executor.iter_world_results()
        try:
            for (world, key), (executed, shard_results) in zip(pending, world_results):
                assert executed.index == world.index
                for shard in shard_results:
                    self._transport_stats.note(shard)
                summary = self._world_summary(shard_results)
                if cache is not None and key is not None:
                    cache.put_json(key, summary, level="world")
                yield world, summary, False
        finally:
            # Harvest even when a world dies mid-batch: the accounting
            # up to the failure still reaches the caller's report.
            self._fault_stats.add(executor.faults)
        if reuse is not None:
            reuse.add(executor.reuse)

    @staticmethod
    def _world_summary(shard_results: list[ShardResult]) -> dict:
        """Fold one world's shard results into its columnar summary.

        Records concatenate in plan order (results arrive in submission
        order), so the frame fold — and therefore the summary — is the
        same bytes for any worker count, and JSON floats round-trip
        exactly, so a cache replay folds identically to a fresh fold.
        """
        # Shard stores concatenate columnar (plan order) and the frame
        # borrows the merged buffers zero-copy — no row objects here.
        frame = ResultStore.merge(
            shard.store for shard in shard_results
        ).to_frame()
        spend = sum(
            usd for shard in shard_results for usd in shard.spend_by_cloud.values()
        )
        incidents = sum(len(shard.incidents) for shard in shard_results)
        return {
            "v": WORLD_SUMMARY_VERSION,
            "cells": frame.cell_aggregates().rows(),
            "spend": spend,
            "incidents": incidents,
        }

    # -- folding ------------------------------------------------------------

    @staticmethod
    def _fold(result: EnsembleResult, world: PlanWorld, summary: dict) -> None:
        sid = world.scenario.scenario_id
        # The seed study anchors the thresholds: the *baseline* world at
        # replica 0 — not merely plan position 0, which could be a
        # perturbed scenario if the user listed an empty scenario of
        # their own after it (scenario_grid only injects BASELINE when
        # no baseline-equivalent world is present).
        anchor = world.scenario.is_baseline and world.replica == 0
        for cell in summary["cells"]:
            key: CellKey = (sid, cell["env"], cell["app"], int(cell["scale"]))
            result.cells.setdefault(key, CellStats()).fold_cell(cell)
            if anchor and cell["fom_mean"] is not None:
                result.thresholds[(cell["env"], cell["app"], int(cell["scale"]))] = (
                    cell["fom_mean"]
                )
        result.spend.setdefault(sid, StreamAccumulator()).push(summary["spend"])
        result.incidents.setdefault(sid, StreamAccumulator()).push(
            summary["incidents"]
        )

"""Exception hierarchy for the repro library.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking programming errors.  Several
exceptions model *study-visible* failures from the paper: quota denials,
capacity stalls, placement-group caps, container build conflicts.  Those
carry enough structure for the usability scorer to convert them into
incident records.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A study or environment configuration is internally inconsistent."""


class CatalogError(ReproError):
    """Unknown instance type, processor, or fabric."""


class QuotaError(ReproError):
    """A quota request was denied or exceeded.

    Attributes
    ----------
    cloud:
        Cloud short name (``aws``, ``az``, ``g``, ``p``).
    resource:
        The resource class the quota covers (e.g. instance type name).
    requested, granted:
        Requested and currently granted quantities.
    """

    def __init__(self, cloud: str, resource: str, requested: int, granted: int):
        self.cloud = cloud
        self.resource = resource
        self.requested = requested
        self.granted = granted
        super().__init__(
            f"quota denied on {cloud} for {resource}: "
            f"requested {requested}, granted {granted}"
        )


class ProvisioningError(ReproError):
    """Cluster bring-up failed (partially or totally).

    ``nodes_acquired`` records how many instances were running when the
    failure was detected; billing continues to accrue for them until the
    caller releases the cluster, which is exactly the failure mode the
    paper hit on EKS at 256 nodes (charged ~$2.5k waiting for capacity).
    """

    def __init__(self, message: str, nodes_acquired: int = 0, cost_accrued: float = 0.0):
        self.nodes_acquired = nodes_acquired
        self.cost_accrued = cost_accrued
        super().__init__(message)


class PlacementError(ReproError):
    """A placement-group request could not be honoured."""


class SchedulingError(ReproError):
    """A job could not be scheduled (bad spec, no feasible nodes)."""


class ContainerBuildError(ReproError):
    """A container recipe could not be built.

    Carries the conflicting requirement pair when the failure is a
    dependency conflict (e.g. the paper's Laghos GPU build, where two
    dependencies required different CUDA versions).
    """

    def __init__(self, message: str, conflicts: tuple[str, ...] = ()):
        self.conflicts = conflicts
        super().__init__(message)


class EnvironmentUnavailableError(ReproError):
    """The environment cannot be deployed at all.

    The paper reduced its assessment from 12 to 11 cloud environments
    because AWS ParallelCluster GPU required a custom build combining
    newer orchestration software with older drivers, which was not
    possible.  That environment raises this error on deploy.
    """


class BudgetExceededError(ReproError):
    """The study budget guard tripped."""

    def __init__(self, cloud: str, budget: float, spent: float):
        self.cloud = cloud
        self.budget = budget
        self.spent = spent
        super().__init__(
            f"budget exceeded on {cloud}: spent ${spent:,.2f} of ${budget:,.2f}"
        )


class ExecutionError(ReproError):
    """An application run failed (segfault, timeout, misconfiguration)."""

    def __init__(self, message: str, *, kind: str = "error"):
        #: failure kind: "segfault", "timeout", "misconfiguration", "error"
        self.kind = kind
        super().__init__(message)


class TransientShardError(ReproError):
    """A shard failed for a reason worth retrying.

    The resilient pool (:mod:`repro.parallel.pool`) re-dispatches shards
    that raise this (or another transient class) with exponential
    backoff, instead of failing the campaign.  ``injected`` marks faults
    raised by the chaos harness (:mod:`repro.chaos`), so retry
    accounting can attribute them.
    """

    def __init__(self, message: str, *, injected: bool = False):
        self.injected = injected
        super().__init__(message)


class ChaosAbortError(ReproError):
    """A chaos-injected *fatal* failure (models the driver being killed).

    Never retried: the run stops with a :class:`ShardExecutionError`
    naming the cell, and journaled progress survives for ``--resume``.
    """


class ShardExecutionError(ReproError):
    """A shard exhausted its retries (or failed fatally) in the pool.

    The typed wrapper every pool-surfaced failure crosses the CLI
    boundary in: it names the shard's world, cell, and attempt count,
    and chains the underlying exception as ``__cause__`` — no raw
    worker tracebacks escape :func:`~repro.parallel.pool.pmap`.
    """

    def __init__(
        self,
        message: str,
        *,
        env_id: str | None = None,
        scale: int | None = None,
        world: int | None = None,
        attempts: int = 1,
    ):
        self.env_id = env_id
        self.scale = scale
        self.world = world
        self.attempts = attempts
        super().__init__(message)

    @classmethod
    def wrap(cls, item: object, ordinal: int, attempts: int, cause: BaseException) -> "ShardExecutionError":
        """Build the error for ``item`` (a shard, or any mapped value)."""
        env_id = getattr(item, "env_id", None)
        scale = getattr(item, "scale", None)
        world = getattr(item, "world", None)
        if env_id is not None:
            where = f"cell ({env_id}, {scale}) of world {world}"
        else:
            where = f"pool item {ordinal}"
        noun = "attempt" if attempts == 1 else "attempts"
        return cls(
            f"{where} failed after {attempts} {noun}: {cause}",
            env_id=env_id,
            scale=scale if isinstance(scale, int) else None,
            world=world if isinstance(world, int) else None,
            attempts=attempts,
        )

"""The Environment abstraction: one row of Table 1.

An :class:`Environment` couples a cloud, an orchestration kind (VM
cluster, managed Kubernetes, or on-prem bare metal), an instance type,
a workload manager, and a container runtime.  It resolves the fabric an
application experiences (including per-environment overrides like GKE's
premium Tier_1 networking) and supplies the study's cluster sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cloud.catalog import InstanceType, instance
from repro.errors import ConfigurationError, EnvironmentUnavailableError
from repro.machine.node import NodeModel
from repro.network.fabric import Fabric
from repro.network.fabrics import fabric as fabric_lookup

#: CPU study sizes in nodes (§2.4).
CPU_SIZES = (32, 64, 128, 256)
#: GPU study sizes expressed in GPUs: 4/8/16/32 cloud nodes × 8 GPUs.
GPU_SIZES = (32, 64, 128, 256)


class EnvironmentKind(enum.Enum):
    VM = "vm"
    K8S = "k8s"
    ONPREM = "onprem"


@dataclass(frozen=True)
class Environment:
    """One study environment."""

    env_id: str
    display_name: str
    cloud: str  # short name: aws | az | g | p
    kind: EnvironmentKind
    accelerator: str  # "cpu" | "gpu"
    instance_type_name: str
    scheduler: str  # "slurm" | "flux" | "lsf"
    container_runtime: str | None  # "singularity" | "containerd" | None
    #: environment-specific fabric override (GKE CPU uses premium Tier_1)
    fabric_override: str | None = None
    #: §3.1: ParallelCluster GPU could not be deployed at all
    deployable: bool = True
    #: per-node Stream Triad efficiency vs nominal node bandwidth; §3.3
    #: Stream shows large per-environment differences (thread pinning &
    #: NUMA configuration the study could not always control)
    stream_efficiency: float = 1.0
    #: steady-state compute efficiency (virtualization + noisy neighbours)
    compute_efficiency: float = 1.0
    #: GPU-path efficiency relative to a tuned 2020s cloud stack; on-prem
    #: B (2018 POWER9 + V100, bare-metal Spack builds, host-staged MPI
    #: buffers — §2.8 notes GPU Direct was unavailable for cross-fabric
    #: comparison) sustains a lower fraction, which is the calibrated
    #: mechanism behind B's low AMG GPU FOMs in Figure 2
    gpu_efficiency: float = 1.0
    notes: str = ""

    # -- resolution -------------------------------------------------------------

    @property
    def is_gpu(self) -> bool:
        return self.accelerator == "gpu"

    @property
    def is_cloud(self) -> bool:
        return self.cloud != "p"

    def instance(self) -> InstanceType:
        return instance(self.instance_type_name)

    def base_fabric(self) -> Fabric:
        name = self.fabric_override or self.instance().fabric
        return fabric_lookup(name)

    def node_model(self, *, ecc_on: bool = True) -> NodeModel:
        return NodeModel.for_instance(self.instance(), ecc_on=ecc_on)

    @property
    def gpus_per_node(self) -> int:
        return self.instance().gpus_per_node

    def require_deployable(self) -> None:
        if not self.deployable:
            raise EnvironmentUnavailableError(
                f"{self.display_name} ({self.accelerator.upper()}) could not be "
                "deployed: custom build combining newer orchestration software "
                "with older drivers was not possible (paper §3.1)"
            )

    # -- sizes ------------------------------------------------------------------

    def sizes(self) -> tuple[int, ...]:
        """Study scales: nodes for CPU environments, GPUs for GPU ones."""
        return GPU_SIZES if self.is_gpu else CPU_SIZES

    def nodes_for(self, scale: int) -> int:
        """Nodes needed for a scale point.

        For CPU environments ``scale`` *is* the node count.  For GPU
        environments ``scale`` is a GPU count: cloud nodes carry 8 GPUs,
        on-prem B carries 4 — so B needs twice the nodes at each size
        (§2.4), paying more network for the same GPU count.
        """
        if not self.is_gpu:
            return scale
        per_node = self.gpus_per_node
        if per_node == 0:
            raise ConfigurationError(f"{self.env_id} has no GPUs")
        if scale % per_node:
            raise ConfigurationError(
                f"scale {scale} GPUs not divisible by {per_node} GPUs/node"
            )
        return scale // per_node

    def ranks_for(self, scale: int) -> int:
        """MPI ranks at a scale point: one per core (CPU) or per GPU."""
        if self.is_gpu:
            return scale
        return scale * self.instance().cores

"""Study environments: the 14 configurations of Table 1."""

from repro.envs.environment import Environment, EnvironmentKind
from repro.envs.registry import (
    ENVIRONMENTS,
    cpu_environments,
    environment,
    gpu_environments,
)

__all__ = [
    "ENVIRONMENTS",
    "Environment",
    "EnvironmentKind",
    "cpu_environments",
    "environment",
    "gpu_environments",
]

"""Registry of the study's environments (Table 1 + §3.1 adjustments).

Fourteen environments were planned; AWS ParallelCluster GPU could not
be deployed (``deployable=False``), reducing the assessed set to 13
(11 cloud + 2 on-prem), matching the paper.

Calibration notes
-----------------
``stream_efficiency`` reproduces the §3.3 Stream Triad CPU spread: per
64-node cluster the paper reports aggregate GB/s of GKE 6800.9,
Compute Engine 6239.4, EKS 3013.2, AKS 2579.5 — i.e. per-node rates of
roughly 106, 97, 47, and 40 GB/s on nodes whose nominal bandwidth is
~190 GB/s.  The study attributes no mechanism; we encode the observed
per-environment efficiency and flag it as an empirical calibration.

``compute_efficiency`` carries small virtualization/tenancy derates:
bare metal 1.0, VM clusters 0.97, Kubernetes 0.96 (§1.1's background —
containerization itself does not degrade performance; the derate covers
hypervisor and noisy-neighbour effects).
"""

from __future__ import annotations

from repro.envs.environment import Environment, EnvironmentKind
from repro.errors import ConfigurationError

_VM = EnvironmentKind.VM
_K8S = EnvironmentKind.K8S
_ONPREM = EnvironmentKind.ONPREM


ENVIRONMENTS: dict[str, Environment] = {
    e.env_id: e
    for e in (
        # ------------------------------------------------------------- CPU
        Environment(
            env_id="cpu-onprem-a",
            display_name="Institutional On-premises A",
            cloud="p",
            kind=_ONPREM,
            accelerator="cpu",
            instance_type_name="onprem-a",
            scheduler="slurm",
            container_runtime=None,
            compute_efficiency=1.0,
            stream_efficiency=0.85,
            notes="bare-metal Spack/module builds",
        ),
        Environment(
            env_id="cpu-parallelcluster-aws",
            display_name="Amazon Web Services ParallelCluster",
            cloud="aws",
            kind=_VM,
            accelerator="cpu",
            instance_type_name="hpc6a.48xlarge",
            scheduler="slurm",
            container_runtime="singularity",
            compute_efficiency=0.97,
            stream_efficiency=0.28,
        ),
        Environment(
            env_id="cpu-eks-aws",
            display_name="Amazon Web Services Kubernetes",
            cloud="aws",
            kind=_K8S,
            accelerator="cpu",
            instance_type_name="hpc6a.48xlarge",
            scheduler="flux",
            container_runtime="containerd",
            compute_efficiency=0.96,
            stream_efficiency=0.23,  # EKS: 3013 GB/s aggregate at 64 nodes
        ),
        Environment(
            env_id="cpu-computeengine-g",
            display_name="Google Cloud Compute Engine",
            cloud="g",
            kind=_VM,
            accelerator="cpu",
            instance_type_name="c2d-standard-112",
            scheduler="flux",
            container_runtime="singularity",
            compute_efficiency=0.97,
            stream_efficiency=0.49,  # CE: 6239 GB/s aggregate at 64 nodes
        ),
        Environment(
            env_id="cpu-gke-g",
            display_name="Google Cloud Kubernetes",
            cloud="g",
            kind=_K8S,
            accelerator="cpu",
            instance_type_name="c2d-standard-112",
            scheduler="flux",
            container_runtime="containerd",
            fabric_override="gcp-tier1",  # Premium Tier_1 networking (§2.6)
            compute_efficiency=0.96,
            stream_efficiency=0.56,  # GKE: 6801 GB/s aggregate at 64 nodes
        ),
        Environment(
            env_id="cpu-cyclecloud-az",
            display_name="Microsoft Azure CycleCloud",
            cloud="az",
            kind=_VM,
            accelerator="cpu",
            instance_type_name="HB96rs_v3",
            scheduler="slurm",
            container_runtime="singularity",
            compute_efficiency=0.97,
            stream_efficiency=0.23,
        ),
        Environment(
            env_id="cpu-aks-az",
            display_name="Microsoft Azure Kubernetes",
            cloud="az",
            kind=_K8S,
            accelerator="cpu",
            instance_type_name="HB96rs_v3",
            scheduler="flux",
            container_runtime="containerd",
            compute_efficiency=0.96,
            stream_efficiency=0.21,  # AKS: 2580 GB/s aggregate at 64 nodes
        ),
        # ------------------------------------------------------------- GPU
        Environment(
            env_id="gpu-onprem-b",
            display_name="Institutional On-premises B",
            cloud="p",
            kind=_ONPREM,
            accelerator="gpu",
            instance_type_name="onprem-b",
            scheduler="lsf",
            container_runtime=None,
            compute_efficiency=1.0,
            stream_efficiency=1.0,
            gpu_efficiency=1.0,
            notes="4 GPUs/node: twice the nodes of cloud at each size",
        ),
        Environment(
            env_id="gpu-parallelcluster-aws",
            display_name="Amazon Web Services ParallelCluster",
            cloud="aws",
            kind=_VM,
            accelerator="gpu",
            instance_type_name="p3dn.24xlarge",
            scheduler="slurm",
            container_runtime="singularity",
            deployable=False,  # §3.1: custom build not possible
            compute_efficiency=0.97,
        ),
        Environment(
            env_id="gpu-eks-aws",
            display_name="Amazon Web Services Kubernetes",
            cloud="aws",
            kind=_K8S,
            accelerator="gpu",
            instance_type_name="p3dn.24xlarge",
            scheduler="flux",
            container_runtime="containerd",
            compute_efficiency=0.96,
        ),
        Environment(
            env_id="gpu-computeengine-g",
            display_name="Google Cloud Compute Engine",
            cloud="g",
            kind=_VM,
            accelerator="gpu",
            instance_type_name="n1-standard-32-v100",
            scheduler="flux",
            container_runtime="singularity",
            compute_efficiency=0.97,
            stream_efficiency=1.0,  # GPU triad: 783.3 GB/s, full rate
        ),
        Environment(
            env_id="gpu-gke-g",
            display_name="Google Cloud Kubernetes",
            cloud="g",
            kind=_K8S,
            accelerator="gpu",
            instance_type_name="n1-standard-32-v100",
            scheduler="flux",
            container_runtime="containerd",
            compute_efficiency=0.96,
            stream_efficiency=1.0,
        ),
        Environment(
            env_id="gpu-cyclecloud-az",
            display_name="Microsoft Azure CycleCloud",
            cloud="az",
            kind=_VM,
            accelerator="gpu",
            instance_type_name="ND40rs_v2",
            scheduler="slurm",
            container_runtime="singularity",
            compute_efficiency=0.97,
            stream_efficiency=0.956,  # 748.5 vs 783 GB/s GPU triad
        ),
        Environment(
            env_id="gpu-aks-az",
            display_name="Microsoft Azure Kubernetes",
            cloud="az",
            kind=_K8S,
            accelerator="gpu",
            instance_type_name="ND40rs_v2",
            scheduler="flux",
            container_runtime="containerd",
            compute_efficiency=0.96,
            stream_efficiency=0.956,
        ),
    )
}


def environment(env_id: str) -> Environment:
    """Look up an environment by id."""
    try:
        return ENVIRONMENTS[env_id]
    except KeyError:
        raise ConfigurationError(f"unknown environment {env_id!r}") from None


def cpu_environments(*, deployable_only: bool = True) -> list[Environment]:
    return [
        e
        for e in ENVIRONMENTS.values()
        if e.accelerator == "cpu" and (e.deployable or not deployable_only)
    ]


def gpu_environments(*, deployable_only: bool = True) -> list[Environment]:
    return [
        e
        for e in ENVIRONMENTS.values()
        if e.accelerator == "gpu" and (e.deployable or not deployable_only)
    ]

"""repro: a reproduction of "Usability Evaluation of Cloud for HPC
Applications" (Sochat et al., SC 2025).

The library simulates the paper's full study apparatus — three cloud
providers, six managed environments, two on-prem clusters, eleven HPC
proxy apps — and regenerates every table and figure of the evaluation.

Quickstart::

    from repro import ExecutionEngine, environment, app

    engine = ExecutionEngine(seed=7)
    env = environment("cpu-eks-aws")
    record = engine.run(env, app("amg2023"), scale=32)
    print(record.fom, record.fom_units)

See ``examples/`` for complete scenarios and ``repro.experiments`` for
the per-table/figure harnesses.
"""

from repro.apps import APPS, AppModel, AppResult, RunContext, app
from repro.cloud import (
    AWS,
    Azure,
    CloudProvider,
    GoogleCloud,
    OnPrem,
    get_provider,
    instance,
)
from repro.core import (
    ResultStore,
    StudyConfig,
    StudyRunner,
    amg_cost_table,
    assess_environment,
    usability_table,
)
from repro.ensemble import EnsembleRunner, EnsembleSpec, ResultFrame
from repro.envs import ENVIRONMENTS, Environment, environment
from repro.network import FABRICS, fabric, hookup_time
from repro.parallel import StudyShard, execute_shards, merge_shard_results, plan_shards
from repro.plan import (
    PlanExecutor,
    PlannedRun,
    PlanWorld,
    RunPlan,
    compile_ensemble,
    compile_scenarios,
    compile_study,
)
from repro.scenarios import SCENARIOS, Scenario, ScenarioSweep, scenario
from repro.sim import ExecutionEngine, RunCache, RunRecord, RunState
from repro.workflows import Component, ComponentKind, PortabilityScorer, Workflow

__version__ = "1.0.0"

__all__ = [
    "APPS",
    "AWS",
    "AppModel",
    "AppResult",
    "Azure",
    "CloudProvider",
    "Component",
    "ComponentKind",
    "ENVIRONMENTS",
    "EnsembleRunner",
    "EnsembleSpec",
    "Environment",
    "ExecutionEngine",
    "FABRICS",
    "GoogleCloud",
    "OnPrem",
    "PlanExecutor",
    "PlanWorld",
    "PlannedRun",
    "PortabilityScorer",
    "ResultFrame",
    "RunPlan",
    "ResultStore",
    "RunCache",
    "RunContext",
    "RunRecord",
    "RunState",
    "SCENARIOS",
    "Scenario",
    "ScenarioSweep",
    "StudyConfig",
    "StudyRunner",
    "StudyShard",
    "Workflow",
    "compile_ensemble",
    "compile_scenarios",
    "compile_study",
    "execute_shards",
    "merge_shard_results",
    "plan_shards",
    "amg_cost_table",
    "app",
    "assess_environment",
    "environment",
    "fabric",
    "scenario",
    "get_provider",
    "hookup_time",
    "instance",
    "usability_table",
    "__version__",
]

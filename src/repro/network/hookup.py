"""Hookup-time model: job start to application start.

§3.2 defines *hookup time* as the gap between workload-manager job start
and application start (measured via LAMMPS wall time subtracted from the
wrapper time).  The paper's numbers, which this module reproduces:

* **Azure GPU** (sizes 4/8/16/32 nodes): ≈43/30/20/10 s — *decreasing*
  with node count, an inverted pattern.
* **Azure CPU** (sizes 32/64/128/256): ≈50/100/200/400+ s — roughly
  linear in node count (≈1.56 s/node).  At 256 nodes AKS hookup reached
  8.82 minutes for LAMMPS, which is why only one iteration was run.
* **Other clouds**: 3–4 s (GPU) and 10–15 s (CPU) across sizes — scale
  was not a factor.

The Azure anomaly is tied to its InfiniBand bring-up inside the job
wrapper; the paper flags studying it as future work, so we model the
observed functional forms rather than a mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.rng import lognormal_jitter, lognormal_jitter_block, stream, stream_block

#: Azure CPU hookup slope: ~50s at 32 nodes -> 1.5625 s/node.
_AZURE_CPU_SLOPE_S_PER_NODE = 1.5625
#: Azure GPU hookup: fits 43/30/20/10 at 4/8/16/32 ≈ 86.0 * n**-0.5 with
#: an extra drop at 32; we use c * (4/n)**0.7 anchored at 43 s.
_AZURE_GPU_ANCHOR_S = 43.0
_AZURE_GPU_EXPONENT = 0.7


def hookup_time(
    cloud: str,
    is_gpu: bool,
    nodes: int,
    *,
    environment_kind: str = "k8s",
    seed: int = 0,
    iteration: int = 0,
) -> float:
    """Expected hookup time in seconds with run-to-run jitter.

    Parameters mirror an environment: cloud short name, accelerator
    flag, and node count.  On-premises schedulers launch essentially
    immediately once the allocation starts (2–5 s of MPI wire-up).
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    rng = stream(seed, "hookup", cloud, is_gpu, nodes, environment_kind, iteration)
    base, sigma = _hookup_base(cloud, is_gpu, nodes)
    return base * lognormal_jitter(rng, sigma)


def _hookup_base(cloud: str, is_gpu: bool, nodes: int) -> tuple[float, float]:
    """(expected seconds, jitter sigma) — iteration-independent."""
    if cloud == "az":
        if is_gpu:
            return _AZURE_GPU_ANCHOR_S * (4.0 / nodes) ** _AZURE_GPU_EXPONENT, 0.10
        return _AZURE_CPU_SLOPE_S_PER_NODE * nodes, 0.10
    if cloud == "p":
        return 3.0, 0.15
    # AWS and Google: flat across sizes.
    return (3.5 if is_gpu else 12.0), 0.12


def hookup_stream_block(
    cloud: str,
    is_gpu: bool,
    nodes: int,
    *,
    environment_kind: str = "k8s",
    seed: int = 0,
    iterations=None,
):
    """The keyed per-iteration jitter streams behind :func:`hookup_block`.

    Exposed so a caller can co-seed them with its other blocks
    (:func:`repro.rng.co_seed`) before gathering.
    """
    return stream_block(
        seed, "hookup", cloud, is_gpu, nodes, environment_kind, iterations=iterations
    )


def hookup_block(
    cloud: str,
    is_gpu: bool,
    nodes: int,
    *,
    environment_kind: str = "k8s",
    seed: int = 0,
    iterations=None,
    rng_block=None,
) -> np.ndarray:
    """Hookup times for a whole batched group's iterations at once.

    ``iterations`` is a count or a sequence of iteration numbers; entry
    ``j`` is bit-identical to ``hookup_time(..., iteration=iterations[j])``
    (the jitter comes from the same keyed per-iteration streams, gathered
    through one :func:`~repro.rng.stream_block`).  ``rng_block`` passes a
    pre-built (possibly co-seeded) :func:`hookup_stream_block` instead of
    constructing one here.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    block = rng_block
    if block is None:
        block = hookup_stream_block(
            cloud, is_gpu, nodes,
            environment_kind=environment_kind, seed=seed, iterations=iterations,
        )
    base, sigma = _hookup_base(cloud, is_gpu, nodes)
    return base * lognormal_jitter_block(block, sigma)

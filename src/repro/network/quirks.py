"""Documented fabric pathologies, kept separate so they are auditable.

Each quirk cites the paper passage it reproduces.
"""

from __future__ import annotations

from repro.network.fabric import FabricQuirk
from repro.units import KiB

#: Figure 5 / §3.3: "The AllReduce test depicts a latency spike for both
#: AWS environments at a message size of 32,768 bytes. This is a known
#: performance issue that has been addressed by a recent improvement AWS
#: made to OpenMPI AllReduce."  The spike spans the protocol-switch
#: window around 32 KiB.
AWS_ALLREDUCE_SPIKE = FabricQuirk(
    name="openmpi-allreduce-32k-spike",
    min_bytes=24 * KiB,
    max_bytes=48 * KiB,
    latency_multiplier=6.0,
    scope="allreduce",
)

#: §3.1 application setup: UCX transport selection on Azure was highly
#: challenging; a mis-tuned transport shows up as extra small-message
#: overhead until the right UCX_TLS setting is found.  The *tuned*
#: fabrics in the registry do not carry this quirk; it is applied by the
#: containers layer when a build lacks the tuned UCX environment.
AZURE_UNTUNED_UCX = FabricQuirk(
    name="ucx-untuned-transport",
    min_bytes=0,
    max_bytes=64 * KiB,
    latency_multiplier=3.0,
    scope="*",
)

"""The fabric registry: every network from Table 2, parameterised.

Parameter choices (one-way latency, sustained bandwidth) follow public
measurements of each interconnect generation; what matters for the
reproduction is their *relative* ordering, which drives every
who-wins result in the paper:

==================  ==========  ===========  =========================
fabric              latency us  bw (Gbps)    role in the paper
==================  ==========  ===========  =========================
omnipath-100        1.1         100          on-prem A: lowest latency
infiniband-edr      1.0         100          on-prem B / Azure GPU
infiniband-hdr      1.0         200          Azure CPU: highest bw
efa-gen1.5          15.0        100          AWS CPU (Hpc6a)
efa-gen1            20.0        100          AWS GPU (p3dn)
gcp-tier1           22.0        100          GKE CPU premium Tier_1
gcp-premium         25.0        32           Compute Engine default
gcp-standard        35.0        16           CE "Standard" tier
==================  ==========  ===========  =========================

OS-bypass: EFA and InfiniBand bypass the kernel; Google's fabric does
not, which is why its per-message overhead is higher even on Tier_1.
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.network.fabric import Fabric
from repro.network.quirks import AWS_ALLREDUCE_SPIKE

FABRICS: dict[str, Fabric] = {
    f.name: f
    for f in (
        Fabric(
            name="omnipath-100",
            latency_us=1.1,
            bandwidth_gbps=100.0,
            per_message_overhead_us=0.4,
            os_bypass=True,
            rdma=True,
            jitter_cv=0.03,
        ),
        Fabric(
            name="infiniband-edr",
            latency_us=1.0,
            bandwidth_gbps=100.0,
            per_message_overhead_us=0.3,
            os_bypass=True,
            rdma=True,
            jitter_cv=0.05,
        ),
        Fabric(
            name="infiniband-hdr",
            latency_us=1.0,
            bandwidth_gbps=200.0,
            per_message_overhead_us=0.3,
            os_bypass=True,
            rdma=True,
            jitter_cv=0.08,
        ),
        Fabric(
            name="efa-gen1.5",
            latency_us=15.0,
            bandwidth_gbps=100.0,
            per_message_overhead_us=1.2,
            os_bypass=True,
            rdma=False,
            jitter_cv=0.10,
            quirks=(AWS_ALLREDUCE_SPIKE,),
        ),
        Fabric(
            name="efa-gen1",
            latency_us=20.0,
            bandwidth_gbps=100.0,
            per_message_overhead_us=1.5,
            os_bypass=True,
            rdma=False,
            jitter_cv=0.12,
            quirks=(AWS_ALLREDUCE_SPIKE,),
        ),
        Fabric(
            name="gcp-tier1",
            latency_us=22.0,
            bandwidth_gbps=100.0,
            per_message_overhead_us=3.0,
            os_bypass=False,
            rdma=False,
            jitter_cv=0.15,
        ),
        Fabric(
            name="gcp-premium",
            latency_us=25.0,
            bandwidth_gbps=32.0,
            per_message_overhead_us=3.5,
            os_bypass=False,
            rdma=False,
            jitter_cv=0.15,
        ),
        Fabric(
            name="gcp-standard",
            latency_us=35.0,
            bandwidth_gbps=16.0,
            per_message_overhead_us=4.0,
            os_bypass=False,
            rdma=False,
            jitter_cv=0.18,
        ),
    )
}


def fabric(name: str) -> Fabric:
    """Look up a fabric by registry name."""
    try:
        return FABRICS[name]
    except KeyError:
        raise CatalogError(f"unknown fabric {name!r}") from None

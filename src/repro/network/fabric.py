"""Fabric abstraction: point-to-point latency/bandwidth with quirks.

A :class:`Fabric` is described by a small LogGP-flavoured parameter set:

* ``latency_us`` — zero-byte one-way latency between two nodes;
* ``bandwidth_gbps`` — sustained large-message point-to-point bandwidth;
* ``per_message_overhead_us`` — software send/receive overhead (``o`` in
  LogGP); OS-bypass fabrics have small values, kernel-path networking
  large ones;
* ``os_bypass`` / ``rdma`` — capability flags used by the apps layer
  (e.g. GPU Direct requires RDMA, §2.8 OSU discussion);
* ``jitter_cv`` — run-to-run coefficient of variation, larger for
  shared-tenancy cloud fabrics than for dedicated HPC interconnects.

Quirks are message-size-dependent multipliers modelling documented
pathologies (see :mod:`repro.network.quirks`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import gbps, usec


@dataclass(frozen=True)
class FabricQuirk:
    """A latency multiplier active on a message-size interval.

    The canonical example is the AWS OpenMPI AllReduce spike at 32 KiB
    (Figure 5), which the paper notes was later fixed by AWS.  ``scope``
    restricts the quirk to a collective kind (``"allreduce"``) or ``"*"``
    for all traffic.
    """

    name: str
    min_bytes: int
    max_bytes: int
    latency_multiplier: float
    scope: str = "*"

    def applies(self, nbytes: int, scope: str) -> bool:
        return (
            self.min_bytes <= nbytes <= self.max_bytes
            and (self.scope == "*" or self.scope == scope)
        )


@dataclass(frozen=True)
class Fabric:
    """An interconnect with LogGP-style parameters."""

    name: str
    latency_us: float
    bandwidth_gbps: float
    per_message_overhead_us: float
    os_bypass: bool
    rdma: bool
    jitter_cv: float
    quirks: tuple[FabricQuirk, ...] = ()

    # -- derived quantities ---------------------------------------------------

    @property
    def latency_s(self) -> float:
        return usec(self.latency_us)

    @property
    def bandwidth_Bps(self) -> float:
        return gbps(self.bandwidth_gbps)

    @property
    def overhead_s(self) -> float:
        return usec(self.per_message_overhead_us)

    def quirk_multiplier(self, nbytes: int, scope: str = "*") -> float:
        """Combined latency multiplier from all active quirks."""
        mult = 1.0
        for q in self.quirks:
            if q.applies(nbytes, scope):
                mult *= q.latency_multiplier
        return mult

    def p2p_time(self, nbytes: int, *, scope: str = "*") -> float:
        """One-way point-to-point message time in seconds.

        Simple latency + overhead + size/bandwidth model; quirks scale
        the latency term only (they are protocol-switch artefacts, not
        wire slowdowns).
        """
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        lat = (self.latency_s + self.overhead_s) * self.quirk_multiplier(nbytes, scope)
        return lat + nbytes / self.bandwidth_Bps

    def with_jitter(self, jitter_cv: float) -> "Fabric":
        """A copy with a different run-to-run jitter level.

        The execution engine raises jitter for cloud tenancy: the same
        physical fabric (e.g. InfiniBand EDR) shows more variability
        under SR-IOV virtualization and shared switches than on a
        dedicated on-prem machine.
        """
        return Fabric(
            name=self.name,
            latency_us=self.latency_us,
            bandwidth_gbps=self.bandwidth_gbps,
            per_message_overhead_us=self.per_message_overhead_us,
            os_bypass=self.os_bypass,
            rdma=self.rdma,
            jitter_cv=jitter_cv,
            quirks=self.quirks,
        )

    def overlaid(
        self,
        *,
        latency_multiplier: float = 1.0,
        bandwidth_multiplier: float = 1.0,
        overhead_multiplier: float = 1.0,
        jitter_multiplier: float = 1.0,
    ) -> "Fabric":
        """A copy with every LogGP parameter scaled independently.

        This is the scenario hook (:mod:`repro.scenarios`): a what-if
        overlay perturbs latency (``L``), bandwidth (``G``), software
        overhead (``o``), and run-to-run jitter without touching the
        registered fabric — the catalog entry stays pristine.
        """
        if min(latency_multiplier, bandwidth_multiplier, overhead_multiplier) <= 0:
            raise ValueError("fabric overlay multipliers must be positive")
        if jitter_multiplier < 0:
            raise ValueError("jitter multiplier must be non-negative")
        return Fabric(
            name=self.name,
            latency_us=self.latency_us * latency_multiplier,
            bandwidth_gbps=self.bandwidth_gbps * bandwidth_multiplier,
            per_message_overhead_us=self.per_message_overhead_us * overhead_multiplier,
            os_bypass=self.os_bypass,
            rdma=self.rdma,
            jitter_cv=self.jitter_cv * jitter_multiplier,
            quirks=self.quirks,
        )

    def degraded(self, latency_multiplier: float, bandwidth_multiplier: float) -> "Fabric":
        """A copy of this fabric with worse effective parameters.

        Used by the topology layer: non-colocated nodes pay extra hops.
        """
        return self.overlaid(
            latency_multiplier=latency_multiplier,
            bandwidth_multiplier=bandwidth_multiplier,
        )

"""Placement quality → effective fabric parameters.

Cloud proximity mechanisms (§2.6) exist because inter-zone or
cross-spine traffic pays extra switch hops.  The topology model maps a
:class:`~repro.cloud.placement.PlacementResult` to latency/bandwidth
multipliers: a fully colocated cluster sees the nominal fabric; a
cluster with colocation fraction ``f`` pays up to the penalty factors
below on the non-colocated share of paths.

The expected path penalty for random pairs when a fraction ``f`` of
nodes is colocated: both endpoints colocated with probability ``f**2``
(no penalty); otherwise penalised.  We fold this into a single effective
multiplier rather than sampling pairs, which keeps app models closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.placement import PlacementResult
from repro.network.fabric import Fabric

#: Extra latency for a cross-rack / cross-zone path, per cloud.
SPREAD_LATENCY_FACTOR: dict[str, float] = {"aws": 2.5, "az": 2.5, "g": 2.0, "p": 1.3}
#: Bandwidth derate for non-colocated paths (oversubscription).
SPREAD_BANDWIDTH_FACTOR: dict[str, float] = {"aws": 0.5, "az": 0.5, "g": 0.6, "p": 0.9}


@dataclass(frozen=True)
class TopologyModel:
    """Effective multipliers for a concrete cluster placement."""

    latency_multiplier: float
    bandwidth_multiplier: float

    @classmethod
    def from_placement(cls, cloud: str, placement: PlacementResult) -> "TopologyModel":
        f = min(max(placement.colocated_fraction, 0.0), 1.0)
        colocated_pair = f * f
        lat_pen = SPREAD_LATENCY_FACTOR.get(cloud, 2.0)
        bw_pen = SPREAD_BANDWIDTH_FACTOR.get(cloud, 0.6)
        latency_multiplier = colocated_pair * 1.0 + (1.0 - colocated_pair) * lat_pen
        bandwidth_multiplier = colocated_pair * 1.0 + (1.0 - colocated_pair) * bw_pen
        return cls(latency_multiplier, bandwidth_multiplier)


def effective_fabric(base: Fabric, cloud: str, placement: PlacementResult) -> Fabric:
    """The fabric an application actually experiences on this cluster."""
    topo = TopologyModel.from_placement(cloud, placement)
    return base.degraded(topo.latency_multiplier, topo.bandwidth_multiplier)

"""Network fabric models: LogGP parameters, collectives, topology, hookup.

The fabric layer is what makes one environment beat another in this
study: Laghos lives or dies on small-message latency, Kripke on
bandwidth, and AMG on allreduce scaling.  Every fabric from Table 2 is
parameterised here, including documented quirks such as the AWS OpenMPI
AllReduce latency spike at 32 KiB.
"""

from repro.network.collectives import (
    CollectiveModel,
    allgather_time,
    allreduce_time,
    alltoall_time,
    bcast_time,
)
from repro.network.fabric import Fabric, FabricQuirk
from repro.network.fabrics import FABRICS, fabric
from repro.network.hookup import hookup_time
from repro.network.loggp import LogGP
from repro.network.topology import TopologyModel, effective_fabric

__all__ = [
    "CollectiveModel",
    "FABRICS",
    "Fabric",
    "FabricQuirk",
    "LogGP",
    "TopologyModel",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "bcast_time",
    "effective_fabric",
    "fabric",
    "hookup_time",
]

"""Collective-communication cost models over a fabric.

Implements the standard algorithm cost formulas MPI libraries use, with
the algorithm switchover OpenMPI performs by message size:

* **allreduce** — recursive doubling for small messages
  (``ceil(log2 p) * (alpha + n*beta)``), Rabenseifner
  (reduce-scatter + allgather) for large ones
  (``2 log2 p * alpha + 2 n beta * (p-1)/p``).
* **bcast** — binomial tree for small, scatter+allgather for large.
* **allgather** — ring: ``(p-1) * (alpha + (n/p)*beta)`` where ``n`` is
  the total gathered size.
* **alltoall** — pairwise exchange: ``(p-1) * (alpha + (n/p)*beta)``.
* **reduce / barrier** — tree.

``alpha`` is the per-message latency term (fabric latency + overhead,
scaled by quirks — this is where the AWS 32 KiB allreduce spike enters),
``beta`` the per-byte term.  All functions return seconds and are pure,
so property tests can assert monotonicity and scaling laws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.fabric import Fabric

#: OpenMPI-style switchover point between latency-optimal and
#: bandwidth-optimal allreduce algorithms.
ALLREDUCE_SWITCH_BYTES = 16 * 1024
BCAST_SWITCH_BYTES = 64 * 1024


def _alpha(fab: Fabric, nbytes: int, scope: str) -> float:
    return (fab.latency_s + fab.overhead_s) * fab.quirk_multiplier(nbytes, scope)


def _beta(fab: Fabric) -> float:
    return 1.0 / fab.bandwidth_Bps


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p)))


def allreduce_time(fab: Fabric, nbytes: int, nprocs: int) -> float:
    """Time for an ``MPI_Allreduce`` of ``nbytes`` across ``nprocs``."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if nprocs == 1:
        return 0.0
    a = _alpha(fab, nbytes, "allreduce")
    b = _beta(fab)
    lg = _log2ceil(nprocs)
    if nbytes <= ALLREDUCE_SWITCH_BYTES:
        # Recursive doubling: log p rounds, full message each round.
        return lg * (a + nbytes * b)
    # Rabenseifner: reduce-scatter + allgather.
    return 2 * lg * a + 2 * nbytes * b * (nprocs - 1) / nprocs


def bcast_time(fab: Fabric, nbytes: int, nprocs: int) -> float:
    """Time for an ``MPI_Bcast``."""
    if nprocs <= 1:
        return 0.0
    a = _alpha(fab, nbytes, "bcast")
    b = _beta(fab)
    lg = _log2ceil(nprocs)
    if nbytes <= BCAST_SWITCH_BYTES:
        return lg * (a + nbytes * b)
    # Scatter + ring allgather.
    return lg * a + 2 * nbytes * b * (nprocs - 1) / nprocs


def allgather_time(fab: Fabric, total_bytes: int, nprocs: int) -> float:
    """Ring allgather of ``total_bytes`` aggregate result size."""
    if nprocs <= 1:
        return 0.0
    a = _alpha(fab, total_bytes // nprocs, "allgather")
    b = _beta(fab)
    per_step = total_bytes / nprocs
    return (nprocs - 1) * (a + per_step * b)


def alltoall_time(fab: Fabric, per_pair_bytes: int, nprocs: int) -> float:
    """Pairwise-exchange alltoall; ``per_pair_bytes`` per rank pair."""
    if nprocs <= 1:
        return 0.0
    a = _alpha(fab, per_pair_bytes, "alltoall")
    b = _beta(fab)
    return (nprocs - 1) * (a + per_pair_bytes * b)


def reduce_time(fab: Fabric, nbytes: int, nprocs: int) -> float:
    """Binomial-tree reduce."""
    if nprocs <= 1:
        return 0.0
    a = _alpha(fab, nbytes, "reduce")
    b = _beta(fab)
    return _log2ceil(nprocs) * (a + nbytes * b)


def barrier_time(fab: Fabric, nprocs: int) -> float:
    """Dissemination barrier: log p zero-byte rounds."""
    if nprocs <= 1:
        return 0.0
    return _log2ceil(nprocs) * _alpha(fab, 0, "barrier")


def halo_exchange_time(
    fab: Fabric, nbytes_per_neighbor: int, neighbors: int
) -> float:
    """Nearest-neighbour halo exchange, serialised sends per neighbour.

    Stencil codes (AMG, MiniFE, Laghos, Kripke) exchange faces with a
    small fixed set of neighbours; with OS-bypass fabrics the sends
    overlap well, so we charge one latency per neighbour plus streaming.
    """
    if neighbors < 0:
        raise ValueError("neighbors must be non-negative")
    if neighbors == 0:
        return 0.0
    a = _alpha(fab, nbytes_per_neighbor, "p2p")
    b = _beta(fab)
    return neighbors * a + neighbors * nbytes_per_neighbor * b


@dataclass(frozen=True)
class CollectiveModel:
    """Bound collective operations for one fabric, memoized.

    Convenience wrapper so app models can carry a single object::

        cm = CollectiveModel(fabric("efa-gen1.5"))
        t = cm.allreduce(8 * n, nprocs)

    Every operation is a pure function of (fabric, sizes), so results
    are memoized per instance: an app's level hierarchy re-asking for
    the same tiny allreduce, and a batched group
    (:meth:`~repro.sim.execution.ExecutionEngine.run_batch`) sharing one
    model across iterations, pay for each distinct collective once.
    The memo never changes a value — only skips recomputing it.
    """

    fabric: Fabric
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def _cached(self, key: tuple, compute, *args) -> float:
        t = self._memo.get(key)
        if t is None:
            t = self._memo[key] = compute(self.fabric, *args)
        return t

    def cached(self, key: tuple, compute) -> float:
        """Memoize any pure-per-fabric value on this model.

        ``compute(fabric) -> float`` must be deterministic in the fabric
        and the key; app models use this for per-message-size base times
        that never change across a batched group's iterations.
        """
        return self._cached(key, compute)

    def allreduce(self, nbytes: int, nprocs: int) -> float:
        return self._cached(("ar", nbytes, nprocs), allreduce_time, nbytes, nprocs)

    def bcast(self, nbytes: int, nprocs: int) -> float:
        return self._cached(("bc", nbytes, nprocs), bcast_time, nbytes, nprocs)

    def allgather(self, total_bytes: int, nprocs: int) -> float:
        return self._cached(
            ("ag", total_bytes, nprocs), allgather_time, total_bytes, nprocs
        )

    def alltoall(self, per_pair_bytes: int, nprocs: int) -> float:
        return self._cached(
            ("aa", per_pair_bytes, nprocs), alltoall_time, per_pair_bytes, nprocs
        )

    def reduce(self, nbytes: int, nprocs: int) -> float:
        return self._cached(("rd", nbytes, nprocs), reduce_time, nbytes, nprocs)

    def barrier(self, nprocs: int) -> float:
        return self._cached(("ba", nprocs), barrier_time, nprocs)

    def halo(self, nbytes_per_neighbor: int, neighbors: int) -> float:
        return self._cached(
            ("ha", nbytes_per_neighbor, neighbors),
            halo_exchange_time,
            nbytes_per_neighbor,
            neighbors,
        )

    def p2p(self, nbytes: int) -> float:
        return self._cached(
            ("pp", nbytes), lambda fab, n: fab.p2p_time(n), nbytes
        )

"""LogGP point-to-point cost model.

LogGP (Alexandrov et al.) extends LogP with a per-byte gap ``G`` for
long messages.  We derive the parameters from a :class:`Fabric`:

* ``L`` — wire latency (fabric ``latency_us``);
* ``o`` — CPU send/receive overhead (fabric ``per_message_overhead_us``);
* ``g`` — inter-message gap, taken equal to ``o`` (one outstanding
  message per overhead slot, a common simplification);
* ``G`` — per-byte gap, the reciprocal of bandwidth.

The collectives module composes these into algorithm cost formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.fabric import Fabric


@dataclass(frozen=True)
class LogGP:
    """LogGP parameters, all in seconds (G in seconds/byte)."""

    L: float
    o: float
    g: float
    G: float

    @classmethod
    def from_fabric(cls, fab: Fabric) -> "LogGP":
        return cls(
            L=fab.latency_s,
            o=fab.overhead_s,
            g=fab.overhead_s,
            G=1.0 / fab.bandwidth_Bps,
        )

    def send_time(self, nbytes: int) -> float:
        """End-to-end time for one message of ``nbytes``.

        LogGP: ``o + L + (k-1)G + o`` — sender overhead, wire latency,
        streaming of the remaining bytes, receiver overhead.
        """
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        stream_bytes = max(nbytes - 1, 0)
        return 2 * self.o + self.L + stream_bytes * self.G

    def round_trip(self, nbytes: int) -> float:
        """Ping-pong round trip (what ``osu_latency`` reports ×2)."""
        return 2 * self.send_time(nbytes)

    def pipelined_time(self, nbytes: int, segments: int) -> float:
        """Time to send ``nbytes`` cut into ``segments`` pipelined chunks."""
        if segments < 1:
            raise ValueError("segments must be >= 1")
        seg = nbytes / segments
        # First segment pays full latency; the rest stream behind it.
        return self.send_time(int(seg)) + (segments - 1) * max(self.g, seg * self.G)

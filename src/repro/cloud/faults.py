"""Fault models for cloud provisioning and environment bring-up.

Every fault here is one the paper actually hit (§3.1–§3.2, §4.1), each
modelled as a :class:`FaultSpec` with a trigger predicate and an effect.
The provisioner consults the registry during bring-up; triggered faults
become :class:`FaultEvent` records, which the usability scorer converts
to incidents and the billing meter charges for.

Catalogued faults
-----------------
``azure-bad-gpu-node``
    A node consistently comes up with 7/8 GPUs on the 32-node Azure GPU
    cluster; releasing the node re-allocates the same bad node, so the
    fix is to hold padded quota (33 nodes) and discard the bad one.
``eks-placement-group-partial``
    An erroneously created placement group on EKS GPU leads to a partial
    cluster instantiation; debugging adds cost and time.
``eks-capacity-stall-256``
    Recreating a 256-node EKS cluster never reaches full node count while
    charges accrue (~$2.5k in the paper; also reported by ORNL).
``eks-cni-prefix-exhaustion``
    At 256 nodes the CNI runs out of network prefixes until the
    daemonset is patched for prefix delegation (see :mod:`repro.k8s.cni`).
``cyclecloud-stalled-jobs``
    CycleCloud job submissions stall due to process-management/module/
    Slurm issues and need manual babysitting.
``onprem-bad-node``
    On-prem runs often fail due to a bad node and must be resubmitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.rng import stream


@dataclass(frozen=True)
class FaultContext:
    """Everything a trigger predicate may inspect."""

    cloud: str
    environment_kind: str  # "k8s" | "vm" | "onprem"
    instance_type: str
    is_gpu: bool
    nodes: int
    attempt: int = 0


@dataclass(frozen=True)
class FaultEvent:
    """A triggered fault, consumed by usability scoring and billing."""

    fault_id: str
    context: FaultContext
    #: extra wall-clock spent dealing with the fault, seconds
    time_cost: float
    #: extra dollars accrued (idle nodes, repeated bring-up)
    money_cost: float
    #: whether the fault kills the bring-up (vs. degrades it)
    fatal: bool
    #: human-readable account, mirrored from the paper
    detail: str


@dataclass(frozen=True)
class FaultSpec:
    """A fault definition: when it can fire and what it does."""

    fault_id: str
    probability: float
    trigger: Callable[[FaultContext], bool]
    effect: Callable[[FaultContext], FaultEvent]
    description: str


def _mk(fault_id: str, time_cost: float, money_cost: float, fatal: bool, detail: str):
    def effect(ctx: FaultContext) -> FaultEvent:
        return FaultEvent(fault_id, ctx, time_cost, money_cost, fatal, detail)

    return effect


FAULT_REGISTRY: list[FaultSpec] = [
    FaultSpec(
        fault_id="azure-bad-gpu-node",
        probability=0.9,
        trigger=lambda c: c.cloud == "az" and c.is_gpu and c.nodes >= 32,
        effect=_mk(
            "azure-bad-gpu-node",
            time_cost=25 * 60.0,
            money_cost=22.03 * 0.5,
            fatal=False,
            detail="node consistently came up with 7/8 GPU; released node was "
            "re-allocated; resolved via padded quota (33 nodes)",
        ),
        description="Azure GPU node health failure at 32-node scale",
    ),
    FaultSpec(
        fault_id="eks-placement-group-partial",
        probability=0.8,
        trigger=lambda c: c.cloud == "aws" and c.environment_kind == "k8s" and c.is_gpu,
        effect=_mk(
            "eks-placement-group-partial",
            time_cost=4 * 3600.0,
            money_cost=450.0,
            fatal=False,
            detail="erroneously created placement group caused partial cluster "
            "instantiation; debugging and re-setup required at substantial cost",
        ),
        description="EKS GPU placement-group bug",
    ),
    FaultSpec(
        fault_id="eks-capacity-stall-256",
        probability=0.85,
        trigger=lambda c: c.cloud == "aws"
        and c.environment_kind == "k8s"
        and not c.is_gpu
        and c.nodes >= 256
        and c.attempt > 0,
        effect=_mk(
            "eks-capacity-stall-256",
            time_cost=6 * 3600.0,
            money_cost=2500.0,
            fatal=True,
            detail="recreated size-256 cluster never fully provisioned; charged "
            "~$2.5k waiting for nodes (reproduces ORNL finding)",
        ),
        description="EKS 256-node capacity stall on re-creation",
    ),
    FaultSpec(
        fault_id="eks-cni-prefix-exhaustion",
        probability=1.0,
        trigger=lambda c: c.cloud == "aws"
        and c.environment_kind == "k8s"
        and not c.is_gpu
        and c.nodes >= 256,
        effect=_mk(
            "eks-cni-prefix-exhaustion",
            time_cost=90 * 60.0,
            money_cost=120.0,
            fatal=False,
            detail="ran out of network prefixes for the CNI at 256 nodes; patched "
            "the CNI daemonset to enable prefix delegation",
        ),
        description="EKS CNI prefix exhaustion at 256 nodes",
    ),
    FaultSpec(
        fault_id="cyclecloud-stalled-jobs",
        probability=0.7,
        trigger=lambda c: c.cloud == "az" and c.environment_kind == "vm",
        effect=_mk(
            "cyclecloud-stalled-jobs",
            time_cost=45 * 60.0,
            money_cost=0.0,
            fatal=False,
            detail="job submissions stalled (process management / module loading / "
            "Slurm); required continuous monitoring",
        ),
        description="CycleCloud stalled job submissions",
    ),
    FaultSpec(
        fault_id="onprem-bad-node",
        probability=0.25,
        trigger=lambda c: c.cloud == "p",
        effect=_mk(
            "onprem-bad-node",
            time_cost=30 * 60.0,
            money_cost=0.0,
            fatal=False,
            detail="run failed due to a bad node; job resubmitted after debugging",
        ),
        description="On-prem bad node requiring resubmission",
    ),
]


def evaluate_faults(
    ctx: FaultContext, *, seed: int = 0, probability_scale: float = 1.0
) -> list[FaultEvent]:
    """Return the faults that fire for this bring-up, deterministically.

    Each fault draws from its own stream keyed by the context, so adding
    or removing faults from the registry does not reshuffle outcomes.

    ``probability_scale`` is the scenario hook (:mod:`repro.scenarios`):
    a what-if overlay scales every fault's firing probability (clamped
    to [0, 1]) without touching the registry.  The draw itself stays on
    the same keyed stream, so ``probability_scale=1.0`` reproduces the
    baseline outcome exactly and a scaled run is still order-independent.
    """
    if probability_scale < 0:
        raise ValueError("fault probability scale must be non-negative")
    events: list[FaultEvent] = []
    for spec in FAULT_REGISTRY:
        if not spec.trigger(ctx):
            continue
        rng = stream(
            seed,
            "fault",
            spec.fault_id,
            ctx.cloud,
            ctx.environment_kind,
            ctx.instance_type,
            ctx.nodes,
            ctx.attempt,
        )
        if rng.random() < min(1.0, spec.probability * probability_scale):
            events.append(spec.effect(ctx))
    return events

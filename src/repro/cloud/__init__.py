"""Cloud provider simulators.

This package models the three public clouds (AWS, Microsoft Azure, Google
Cloud) and the on-premises HPC center from the paper: instance catalogs,
quota workflows, provisioning with realistic failure modes, placement
policies, and billing with per-cloud reporting lag.
"""

from repro.cloud.catalog import (
    CATALOG,
    GpuSpec,
    InstanceType,
    Processor,
    instance,
    instances_for_cloud,
)
from repro.cloud.placement import PlacementGroup, PlacementPolicy, PlacementResult
from repro.cloud.pricing import BillingMeter, CostReport
from repro.cloud.providers import (
    AWS,
    Azure,
    CloudProvider,
    GoogleCloud,
    OnPrem,
    get_provider,
)
from repro.cloud.provisioner import Cluster, NodeInstance, Provisioner, ProvisionRequest
from repro.cloud.quota import QuotaLedger, QuotaRequest

__all__ = [
    "AWS",
    "Azure",
    "BillingMeter",
    "CATALOG",
    "CloudProvider",
    "Cluster",
    "CostReport",
    "GoogleCloud",
    "GpuSpec",
    "InstanceType",
    "NodeInstance",
    "OnPrem",
    "PlacementGroup",
    "PlacementPolicy",
    "PlacementResult",
    "Processor",
    "ProvisionRequest",
    "Provisioner",
    "QuotaLedger",
    "QuotaRequest",
    "get_provider",
    "instance",
    "instances_for_cloud",
]

"""Quota workflow simulation.

The paper (§3.1, "Accounts and Resources") reports markedly different
quota experiences per cloud: Azure and Google were low-difficulty, while
AWS GPU quota was medium — a small prototyping reservation was never
granted and the allocation was eventually pushed to a 48-hour block at
the end of the month.

:class:`QuotaLedger` models this: requests are granted or deferred
according to per-cloud friction parameters, grants carry a delay, and —
critically, per §4.2 — a *granted quota is not a guarantee that
provisioning will succeed* (the provisioner enforces capacity
separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QuotaError
from repro.rng import stream


@dataclass(frozen=True)
class QuotaFriction:
    """Per-cloud, per-resource-class quota behaviour.

    ``grant_probability`` is the chance a request is granted at all;
    ``delay_days`` bounds the uniform grant delay; ``window_hours``
    optionally restricts the grant to a fixed usage window (the AWS GPU
    48-hour block).
    """

    grant_probability: float = 1.0
    delay_days: tuple[float, float] = (0.0, 1.0)
    window_hours: float | None = None


#: Calibrated to the paper's account/resource narrative.
QUOTA_FRICTION: dict[tuple[str, str], QuotaFriction] = {
    ("aws", "cpu"): QuotaFriction(1.0, (0.0, 2.0)),
    ("aws", "gpu"): QuotaFriction(0.55, (14.0, 28.0), window_hours=48.0),
    ("az", "cpu"): QuotaFriction(1.0, (0.0, 1.0)),
    ("az", "gpu"): QuotaFriction(1.0, (0.0, 2.0)),
    ("g", "cpu"): QuotaFriction(1.0, (0.0, 1.0)),
    ("g", "gpu"): QuotaFriction(1.0, (0.0, 2.0)),
    ("p", "cpu"): QuotaFriction(1.0, (0.0, 0.0)),
    ("p", "gpu"): QuotaFriction(1.0, (0.0, 0.0)),
}


@dataclass
class QuotaRequest:
    """A request for capacity of one instance type."""

    cloud: str
    instance_type: str
    resource_class: str  # "cpu" | "gpu"
    quantity: int


@dataclass
class QuotaGrant:
    """The outcome of a granted request."""

    request: QuotaRequest
    granted: int
    delay_days: float
    window_hours: float | None = None

    @property
    def is_windowed(self) -> bool:
        return self.window_hours is not None


@dataclass
class QuotaLedger:
    """Tracks quota grants and current usage per (cloud, instance type).

    The ledger is the gatekeeper the provisioner consults: usage may
    never exceed the granted quantity.  The paper's practice of padding a
    request (asking for 33 nodes to survive one bad node in a 32-node
    cluster) is supported simply by requesting more.
    """

    seed: int = 0
    #: per-ledger friction overrides keyed by (cloud, resource class),
    #: consulted before the module-level :data:`QUOTA_FRICTION` — the
    #: scenario overlay (:mod:`repro.scenarios`) tightens quotas here
    #: without mutating the shared table
    friction_overrides: dict[tuple[str, str], QuotaFriction] = field(default_factory=dict)
    _grants: dict[tuple[str, str], QuotaGrant] = field(default_factory=dict)
    _usage: dict[tuple[str, str], int] = field(default_factory=dict)

    def request(self, req: QuotaRequest, attempt: int = 0) -> QuotaGrant:
        """Submit a quota request; raises :class:`QuotaError` on denial.

        ``attempt`` distinguishes retries so they draw fresh randomness —
        re-requesting after a denial is exactly what the authors did for
        AWS GPUs.
        """
        fkey = (req.cloud, req.resource_class)
        friction = self.friction_overrides.get(fkey) or QUOTA_FRICTION.get(
            fkey, QuotaFriction()
        )
        rng = stream(self.seed, "quota", req.cloud, req.instance_type, req.quantity, attempt)
        if rng.random() > friction.grant_probability:
            raise QuotaError(req.cloud, req.instance_type, req.quantity, 0)
        lo, hi = friction.delay_days
        delay = float(rng.uniform(lo, hi))
        grant = QuotaGrant(
            request=req,
            granted=req.quantity,
            delay_days=delay,
            window_hours=friction.window_hours,
        )
        key = (req.cloud, req.instance_type)
        prev = self._grants.get(key)
        if prev is not None and prev.granted > grant.granted:
            grant.granted = prev.granted  # grants only grow
        self._grants[key] = grant
        return grant

    def granted(self, cloud: str, instance_type: str) -> int:
        g = self._grants.get((cloud, instance_type))
        return g.granted if g else 0

    def in_use(self, cloud: str, instance_type: str) -> int:
        return self._usage.get((cloud, instance_type), 0)

    def acquire(self, cloud: str, instance_type: str, quantity: int) -> None:
        """Reserve ``quantity`` against the grant; raises on overdraw."""
        key = (cloud, instance_type)
        available = self.granted(cloud, instance_type) - self.in_use(cloud, instance_type)
        if quantity > available:
            raise QuotaError(cloud, instance_type, quantity, max(available, 0))
        self._usage[key] = self.in_use(cloud, instance_type) + quantity

    def release(self, cloud: str, instance_type: str, quantity: int) -> None:
        key = (cloud, instance_type)
        current = self.in_use(cloud, instance_type)
        if quantity > current:
            raise ValueError(
                f"releasing {quantity} of {instance_type} but only {current} in use"
            )
        self._usage[key] = current - quantity

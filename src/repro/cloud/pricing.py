"""Billing: per-second metering, per-cloud reporting lag, budget guard.

§4.2 ("Cost Estimation") notes that clouds exhibit different cost
*reporting* lag — usage may not appear on the bill until the next day —
which makes overspending easy.  :class:`BillingMeter` therefore separates
*accrued* cost (ground truth) from *reported* cost (what the console
would show at a given study time), and the budget guard only sees the
reported figure unless asked for the truth.  This is how the library
reproduces the paper's "charged upwards of $2.5k waiting for nodes"
incident: cost accrues during a capacity stall before anything is
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError
from repro.units import HOUR


#: Cost-reporting lag per cloud, in hours. On-prem has no billing.
REPORTING_LAG_HOURS: dict[str, float] = {
    "aws": 8.0,
    "az": 24.0,
    "g": 12.0,
    "p": 0.0,
}


@dataclass(frozen=True)
class MeterEvent:
    """One interval of metered usage for a homogeneous node group."""

    cloud: str
    instance_type: str
    nodes: int
    start: float  # study time, seconds
    end: float
    cost_per_node_hour: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def cost(self) -> float:
        return self.nodes * (self.duration / HOUR) * self.cost_per_node_hour


@dataclass
class CostReport:
    """Aggregated costs, either per cloud or per label."""

    totals: dict[str, float]

    @property
    def grand_total(self) -> float:
        return sum(self.totals.values())

    def __getitem__(self, key: str) -> float:
        return self.totals.get(key, 0.0)


@dataclass
class BillingMeter:
    """Accumulates :class:`MeterEvent` records and answers cost queries."""

    budgets: dict[str, float] = field(default_factory=dict)
    events: list[MeterEvent] = field(default_factory=list)
    #: per-meter reporting-lag overrides (hours), consulted before the
    #: module-level :data:`REPORTING_LAG_HOURS` — the scenario overlay
    #: (:mod:`repro.scenarios`) changes lag here without touching the
    #: shared table
    lag_overrides: dict[str, float] = field(default_factory=dict)

    def record(self, event: MeterEvent) -> None:
        if event.end < event.start:
            raise ValueError("meter event ends before it starts")
        self.events.append(event)

    def meter(
        self,
        cloud: str,
        instance_type: str,
        nodes: int,
        start: float,
        end: float,
        cost_per_node_hour: float,
        label: str = "",
    ) -> MeterEvent:
        """Convenience wrapper building and recording an event."""
        ev = MeterEvent(cloud, instance_type, nodes, start, end, cost_per_node_hour, label)
        self.record(ev)
        return ev

    # -- queries ------------------------------------------------------------

    def accrued(self, cloud: str | None = None, label: str | None = None) -> float:
        """Ground-truth cost, regardless of reporting lag."""
        total = 0.0
        for ev in self.events:
            if cloud is not None and ev.cloud != cloud:
                continue
            if label is not None and ev.label != label:
                continue
            total += ev.cost
        return total

    def lag_hours_for(self, cloud: str) -> float:
        """Effective reporting lag for a cloud (override or default)."""
        return self.lag_overrides.get(cloud, REPORTING_LAG_HOURS.get(cloud, 0.0))

    def reported(self, at_time: float, cloud: str) -> float:
        """Cost visible on the console at study time ``at_time``.

        An event is only visible once ``lag`` hours have passed since the
        usage *ended*.
        """
        lag = self.lag_hours_for(cloud) * HOUR
        return sum(
            ev.cost for ev in self.events if ev.cloud == cloud and ev.end + lag <= at_time
        )

    def by_cloud(self) -> CostReport:
        totals: dict[str, float] = {}
        for ev in self.events:
            totals[ev.cloud] = totals.get(ev.cloud, 0.0) + ev.cost
        return CostReport(totals)

    def by_label(self) -> CostReport:
        totals: dict[str, float] = {}
        for ev in self.events:
            totals[ev.label] = totals.get(ev.label, 0.0) + ev.cost
        return CostReport(totals)

    def check_budget(self, cloud: str, at_time: float, *, use_reported: bool = True) -> None:
        """Raise :class:`BudgetExceededError` if the budget guard trips.

        With ``use_reported=True`` (default) the guard sees only lagged
        figures — overspending during the lag window goes undetected,
        matching the paper's warning.
        """
        budget = self.budgets.get(cloud)
        if budget is None:
            return
        spent = self.reported(at_time, cloud) if use_reported else self.accrued(cloud)
        if spent > budget:
            raise BudgetExceededError(cloud, budget, spent)

"""Provider facades tying catalog, quota, billing, and provisioning together.

A :class:`CloudProvider` is the user-facing entry point of the cloud
substrate: it owns a quota ledger, a billing meter (with the paper's
$49,000 per-cloud budget by default), and a provisioner.  The concrete
subclasses only differ in catalog contents and behavioural parameters
already encoded in the lower layers; they exist so user code reads like
the study ("``AWS().provision_cluster(...)``").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.catalog import CLOUD_NAMES, InstanceType, instances_for_cloud
from repro.cloud.placement import PlacementPolicy
from repro.cloud.pricing import BillingMeter
from repro.cloud.provisioner import Cluster, ProvisionRequest, Provisioner
from repro.cloud.quota import QuotaLedger, QuotaRequest
from repro.errors import CatalogError

#: Study budget per cloud (USD), from §2.1.
STUDY_BUDGET_USD = 49_000.0


class CloudProvider:
    """Base provider facade."""

    short_name: str = ""

    def __init__(self, *, seed: int = 0, budget: float | None = STUDY_BUDGET_USD):
        self.seed = seed
        self.ledger = QuotaLedger(seed=seed)
        self.meter = BillingMeter()
        if budget is not None and self.short_name != "p":
            self.meter.budgets[self.short_name] = budget
        self.provisioner = Provisioner(self.ledger, self.meter, seed=seed)

    # -- catalog ------------------------------------------------------------

    @property
    def display_name(self) -> str:
        return CLOUD_NAMES[self.short_name]

    def instance_types(self) -> list[InstanceType]:
        return instances_for_cloud(self.short_name)

    def cpu_instance(self) -> InstanceType:
        for it in self.instance_types():
            if not it.is_gpu:
                return it
        raise CatalogError(f"{self.short_name} has no CPU instance type")

    def gpu_instance(self) -> InstanceType:
        for it in self.instance_types():
            if it.is_gpu:
                return it
        raise CatalogError(f"{self.short_name} has no GPU instance type")

    # -- workflow -----------------------------------------------------------

    def request_quota(self, instance_type: str, quantity: int, *, attempt: int = 0):
        it = next(t for t in self.instance_types() if t.name == instance_type)
        req = QuotaRequest(
            cloud=self.short_name,
            instance_type=instance_type,
            resource_class="gpu" if it.is_gpu else "cpu",
            quantity=quantity,
        )
        return self.ledger.request(req, attempt=attempt)

    def provision_cluster(
        self,
        instance_type: str,
        nodes: int,
        *,
        environment_kind: str = "vm",
        placement: PlacementPolicy | None = None,
        now: float = 0.0,
        attempt: int = 0,
    ) -> Cluster:
        req = ProvisionRequest(
            cloud=self.short_name,
            environment_kind=environment_kind,
            instance_type=instance_type,
            nodes=nodes,
            placement=placement,
            attempt=attempt,
        )
        return self.provisioner.provision(req, now=now)

    def release_cluster(self, cluster: Cluster, *, now: float) -> float:
        return self.provisioner.release(cluster, now=now)

    def spend(self) -> float:
        """Ground-truth dollars accrued on this provider."""
        return self.meter.accrued(self.short_name)


class AWS(CloudProvider):
    """Amazon Web Services: Hpc6a (CPU, EFA gen1.5) and p3dn.24xlarge (GPU)."""

    short_name = "aws"


class Azure(CloudProvider):
    """Microsoft Azure: HB96rs_v3 (CPU, IB HDR) and ND40rs_v2 (GPU, IB EDR)."""

    short_name = "az"


class GoogleCloud(CloudProvider):
    """Google Cloud: c2d-standard-112 (CPU) and n1-standard-32 + V100 (GPU)."""

    short_name = "g"


class OnPrem(CloudProvider):
    """The institutional center: clusters A (CPU/Slurm) and B (GPU/LSF)."""

    short_name = "p"

    def __init__(self, *, seed: int = 0, budget: float | None = None):
        super().__init__(seed=seed, budget=None)


_PROVIDERS = {"aws": AWS, "az": Azure, "g": GoogleCloud, "p": OnPrem}


def get_provider(short_name: str, *, seed: int = 0) -> CloudProvider:
    """Instantiate a provider by short name (``aws``/``az``/``g``/``p``)."""
    try:
        cls = _PROVIDERS[short_name]
    except KeyError:
        raise CatalogError(f"unknown cloud {short_name!r}") from None
    return cls(seed=seed)

"""Capacity reservations and queue-time estimation (§4.1).

The paper's "Extended cost and scheduling models are needed" insight:

* Cloud could address resource availability "by providing a queuing and
  scheduling system with estimated job start times based on resource
  availability, similar to HPC".
* "Capacity blocks from AWS or Google's Dynamic Resource Scheduler are
  improvements, but are limited in terms of resource type and the
  quantity that can be reserved."

This module implements both ideas so downstream studies can plan
acquisitions:

* :class:`CapacityBlockMarket` — reservable fixed windows with the
  documented limits (GPU-only resource types, bounded quantity, bounded
  duration).  A held block makes provisioning deterministic: no
  capacity stalls inside the window.
* :class:`QueueEstimator` — the HPC-style estimated-start-time service
  the paper wishes clouds had, driven by the same capacity model the
  provisioner's faults use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.catalog import instance
from repro.errors import ProvisioningError, QuotaError
from repro.rng import stream
from repro.units import HOUR

#: Capacity-block limits per cloud: (max nodes, max window hours).
#: Modeled on AWS Capacity Blocks for ML and Google DWS calendar mode.
BLOCK_LIMITS: dict[str, tuple[int, float]] = {
    "aws": (64, 14 * 24.0),
    "g": (32, 7 * 24.0),
}


@dataclass(frozen=True)
class CapacityBlock:
    """A reserved window of guaranteed capacity."""

    cloud: str
    instance_type: str
    nodes: int
    start: float  # study time, seconds
    end: float
    price_per_node_hour: float

    @property
    def duration_hours(self) -> float:
        return (self.end - self.start) / HOUR

    @property
    def total_cost(self) -> float:
        return self.nodes * self.duration_hours * self.price_per_node_hour

    def covers(self, t: float, nodes: int) -> bool:
        return self.start <= t < self.end and nodes <= self.nodes


@dataclass
class CapacityBlockMarket:
    """Reservable capacity blocks with the documented limitations."""

    seed: int = 0
    #: premium over on-demand pricing for guaranteed capacity
    price_premium: float = 1.25
    held: list[CapacityBlock] = field(default_factory=list)

    def reserve(
        self,
        cloud: str,
        instance_type: str,
        nodes: int,
        *,
        start: float,
        hours: float,
    ) -> CapacityBlock:
        """Reserve a block; raises for unsupported shapes (the limits).

        Blocks exist only for GPU instance types (resource-type limit)
        and only on the clouds offering them.
        """
        limits = BLOCK_LIMITS.get(cloud)
        if limits is None:
            raise QuotaError(cloud, instance_type, nodes, 0)
        itype = instance(instance_type)
        if not itype.is_gpu:
            raise ProvisioningError(
                f"capacity blocks on {cloud} cover GPU instance types only"
            )
        max_nodes, max_hours = limits
        if nodes > max_nodes:
            raise ProvisioningError(
                f"capacity blocks on {cloud} are limited to {max_nodes} nodes; "
                f"requested {nodes}"
            )
        if hours > max_hours:
            raise ProvisioningError(
                f"capacity blocks on {cloud} are limited to {max_hours:.0f} hours"
            )
        block = CapacityBlock(
            cloud=cloud,
            instance_type=instance_type,
            nodes=nodes,
            start=start,
            end=start + hours * HOUR,
            price_per_node_hour=itype.cost_per_hour * self.price_premium,
        )
        self.held.append(block)
        return block

    def block_covering(self, cloud: str, instance_type: str, t: float, nodes: int) -> CapacityBlock | None:
        for block in self.held:
            if (
                block.cloud == cloud
                and block.instance_type == instance_type
                and block.covers(t, nodes)
            ):
                return block
        return None


@dataclass(frozen=True)
class StartTimeEstimate:
    """An HPC-style estimated start for a capacity request."""

    nodes: int
    estimated_wait: float  # seconds
    confidence: float  # 0..1
    advice: str


@dataclass
class QueueEstimator:
    """Estimated-start-time service the paper proposes clouds adopt.

    Wait grows with the requested share of the (finite) regional pool
    and with GPU scarcity; confidence shrinks as requests approach the
    pool size — mirroring the study's experience that quota is not a
    capacity guarantee.
    """

    seed: int = 0
    #: effective available pool per (cloud, resource class), nodes
    pool_sizes: dict[tuple[str, str], int] = field(
        default_factory=lambda: {
            ("aws", "cpu"): 512, ("aws", "gpu"): 48,
            ("az", "cpu"): 512, ("az", "gpu"): 64,
            ("g", "cpu"): 384, ("g", "gpu"): 48,
        }
    )

    def estimate(self, cloud: str, instance_type: str, nodes: int) -> StartTimeEstimate:
        itype = instance(instance_type)
        cls = "gpu" if itype.is_gpu else "cpu"
        pool = self.pool_sizes.get((cloud, cls), 256)
        share = nodes / pool
        rng = stream(self.seed, "queue-estimate", cloud, instance_type, nodes)
        base = 10 * 60.0 if cls == "cpu" else 4 * HOUR
        wait = base * (share / max(1e-9, 1.0 - min(share, 0.99))) + base * 0.1
        confidence = max(0.05, 1.0 - share)
        if share >= 1.0:
            advice = (
                "request exceeds the regional pool; split across zones or "
                "reserve a capacity block"
            )
            wait = float("inf")
        elif share > 0.5 and cls == "gpu":
            advice = "reserve a capacity block and be on call for the window"
        elif share > 0.5:
            advice = "expect partial provisioning; pad quota and retry"
        else:
            advice = "on-demand provisioning is likely to succeed"
        jitterless = StartTimeEstimate(nodes, wait, confidence, advice)
        if wait == float("inf"):
            return jitterless
        return StartTimeEstimate(
            nodes, wait * float(rng.uniform(0.85, 1.15)), confidence, advice
        )

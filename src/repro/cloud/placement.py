"""Placement policies: cluster placement groups, COMPACT, proximity groups.

Section 2.6 of the paper describes per-cloud proximity mechanisms and
§3.2 reports what actually happened:

* AWS: *cluster placement groups* pack nodes in one Availability Zone.
  An erroneously created placement group caused a partial EKS GPU
  cluster instantiation (modelled in :mod:`repro.cloud.faults`).
* Google Cloud: ``COMPACT`` placement worked on GKE up to 128 nodes and
  could be requested for at most 150 at the time of the study; Compute
  Engine never got COMPACT at any study size.
* Azure: proximity placement groups (PPGs) would not complete for 100
  nodes or more on AKS; the portal reported "Colocation status is
  currently unknown" and only a subset of nodes were actually colocated.

The *placement quality* (fraction of nodes actually colocated) feeds the
network topology model: poorly placed nodes see higher latency and lower
bandwidth (see :mod:`repro.network.topology`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import PlacementError
from repro.rng import stream


class PlacementPolicy(enum.Enum):
    """The proximity mechanism requested for a cluster."""

    NONE = "none"
    CLUSTER_PG = "cluster-placement-group"  # AWS
    COMPACT = "compact"  # Google Cloud
    PROXIMITY_PG = "proximity-placement-group"  # Azure
    RACK_LOCAL = "rack-local"  # on-premises fabric locality


#: Default policy per cloud short name.
DEFAULT_POLICY: dict[str, PlacementPolicy] = {
    "aws": PlacementPolicy.CLUSTER_PG,
    "g": PlacementPolicy.COMPACT,
    "az": PlacementPolicy.PROXIMITY_PG,
    "p": PlacementPolicy.RACK_LOCAL,
}

#: Documented node-count caps. ``None`` means uncapped.
POLICY_LIMITS: dict[PlacementPolicy, int | None] = {
    PlacementPolicy.NONE: None,
    PlacementPolicy.CLUSTER_PG: None,
    PlacementPolicy.COMPACT: 150,  # at study time; since raised to 1500
    PlacementPolicy.PROXIMITY_PG: 100,
    PlacementPolicy.RACK_LOCAL: None,
}


@dataclass(frozen=True)
class PlacementGroup:
    """A concrete placement request for a cluster."""

    policy: PlacementPolicy
    nodes: int

    def limit(self) -> int | None:
        return POLICY_LIMITS[self.policy]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of applying a placement policy.

    ``colocated_fraction`` is the share of nodes actually packed close
    together; ``status`` carries the provider-reported state (Azure's
    "unknown" string is preserved verbatim because the usability scorer
    keys on it).
    """

    group: PlacementGroup
    colocated_fraction: float
    status: str

    @property
    def fully_colocated(self) -> bool:
        return self.colocated_fraction >= 0.999


def apply_placement(
    cloud: str,
    environment_kind: str,
    nodes: int,
    policy: PlacementPolicy | None = None,
    *,
    seed: int = 0,
) -> PlacementResult:
    """Apply a placement policy and report achieved colocation.

    Parameters
    ----------
    cloud:
        Cloud short name.
    environment_kind:
        ``"k8s"``, ``"vm"``, or ``"onprem"`` — Google's COMPACT behaved
        differently on GKE (worked to 128) versus Compute Engine (never
        granted), so the environment kind matters.
    nodes:
        Cluster size requested.
    policy:
        Override the cloud default.
    """
    policy = policy or DEFAULT_POLICY.get(cloud, PlacementPolicy.NONE)
    group = PlacementGroup(policy, nodes)
    rng = stream(seed, "placement", cloud, environment_kind, nodes, policy.value)

    if policy is PlacementPolicy.NONE:
        return PlacementResult(group, 0.0, "no placement requested")

    if policy is PlacementPolicy.RACK_LOCAL:
        # On-prem scheduler packs jobs onto the low-latency fabric.
        return PlacementResult(group, 1.0, "fabric-local")

    if policy is PlacementPolicy.COMPACT:
        limit = group.limit()
        if environment_kind == "vm":
            # Compute Engine: COMPACT was never granted at study sizes.
            return PlacementResult(group, 0.55 + 0.1 * rng.random(), "COMPACT not granted")
        if limit is not None and nodes > limit:
            # Above the documented cap the request is rejected and the
            # cluster runs with default spreading (GKE 256 in the study).
            return PlacementResult(
                group,
                float(rng.uniform(0.5, 0.7)),
                f"COMPACT rejected: exceeds {limit}-node limit",
            )
        if nodes <= 128:
            return PlacementResult(group, 1.0, "COMPACT granted")
        # 128 < nodes <= 150: granted on paper but degraded in practice.
        return PlacementResult(group, 0.8 + 0.1 * rng.random(), "COMPACT partially granted")

    if policy is PlacementPolicy.PROXIMITY_PG:
        if nodes >= 100 and environment_kind == "k8s":
            # §3.1 (AKS manual intervention): the operation "would not
            # complete" for 100 nodes or more; manual scale-up leaves a
            # subset colocated and the portal reports unknown status.
            # CycleCloud VM scale sets placed correctly.
            frac = float(rng.uniform(0.4, 0.7))
            return PlacementResult(group, frac, "Colocation status is currently unknown")
        return PlacementResult(group, 1.0, "PPG granted")

    if policy is PlacementPolicy.CLUSTER_PG:
        # Works, with a small chance the group lands across spines.
        frac = 1.0 if rng.random() < 0.95 else float(rng.uniform(0.85, 0.99))
        return PlacementResult(group, frac, "cluster placement group active")

    raise PlacementError(f"unhandled policy {policy}")

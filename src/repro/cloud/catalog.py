"""Instance catalog: every node type from Table 2 of the paper.

The catalog is the single source of truth for hardware characteristics.
Each :class:`InstanceType` carries the processor model, core count and
frequency, memory, network fabric name (resolved by
:mod:`repro.network.fabrics`), hourly cost, and optional GPU
configuration.

Machine-model rates (flop/s per core, memory bandwidth) live in
:mod:`repro.machine.rates`, keyed by :class:`Processor` architecture so
that catalog data stays purely descriptive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError


@dataclass(frozen=True)
class Processor:
    """A CPU model.

    ``arch`` keys into the machine-model rate table; ``base_ghz`` /
    ``boost_ghz`` bracket the advertised frequency range from Table 2.
    """

    model: str
    arch: str
    base_ghz: float
    boost_ghz: float

    @property
    def nominal_ghz(self) -> float:
        """Representative sustained frequency (midpoint of base/boost)."""
        return (self.base_ghz + self.boost_ghz) / 2.0


@dataclass(frozen=True)
class GpuSpec:
    """A GPU configuration attached to an instance type."""

    model: str
    count: int
    memory_gb: int
    #: whether the provider's image enables ECC by default (see §3.3,
    #: Mixbench: all clouds default On except Azure, which is mixed).
    ecc_default_on: bool = True


@dataclass(frozen=True)
class InstanceType:
    """One row of Table 2."""

    name: str
    cloud: str  # "aws" | "az" | "g" | "p"
    processor: Processor
    cores: int
    memory_gb: int
    fabric: str  # key into repro.network.fabrics.FABRICS
    cost_per_hour: float  # USD; 0.0 for on-premises
    gpu: GpuSpec | None = None
    notes: str = ""

    @property
    def is_gpu(self) -> bool:
        return self.gpu is not None

    @property
    def gpus_per_node(self) -> int:
        return self.gpu.count if self.gpu else 0


# ---------------------------------------------------------------------------
# Processors (Table 2, "Processor/GPU" and "Cores/Frequency" columns)
# ---------------------------------------------------------------------------

XEON_8480 = Processor("Intel Xeon Platinum 8480+", "sapphire_rapids", 2.0, 3.8)
EPYC_7R13 = Processor("AMD EPYC 7R13/7003", "milan", 2.65, 3.6)
EPYC_7B13 = Processor("AMD EPYC 7B13", "milan", 2.45, 3.5)
EPYC_7003 = Processor("AMD EPYC 7003", "milan", 1.9, 3.5)
POWER9 = Processor("IBM Power9", "power9", 2.3, 3.5)
XEON_8175 = Processor("Intel Xeon Platinum 8175", "skylake", 2.5, 3.1)
XEON_HASWELL = Processor("Intel Xeon Haswell E5 v3", "haswell", 2.3, 2.3)
XEON_8168 = Processor("Intel Xeon Platinum 8168", "skylake", 2.7, 3.7)

V100_16 = GpuSpec("NVIDIA V100", count=8, memory_gb=16)
V100_16_B = GpuSpec("NVIDIA V100", count=4, memory_gb=16)
V100_32 = GpuSpec("NVIDIA V100", count=8, memory_gb=32)
V100_32_AZ = GpuSpec("NVIDIA V100", count=8, memory_gb=32, ecc_default_on=False)

# ---------------------------------------------------------------------------
# The catalog itself
# ---------------------------------------------------------------------------

CATALOG: dict[str, InstanceType] = {}


def _register(it: InstanceType) -> InstanceType:
    if it.name in CATALOG:
        raise CatalogError(f"duplicate instance type {it.name!r}")
    CATALOG[it.name] = it
    return it


# On-premises cluster A: CPU (Dell, Intel Xeon 8480+, Omni-Path 100, Slurm)
ONPREM_A = _register(
    InstanceType(
        name="onprem-a",
        cloud="p",
        processor=XEON_8480,
        cores=112,
        memory_gb=256,
        fabric="omnipath-100",
        cost_per_hour=0.0,
        notes="Cluster A (2023): 1,544 nodes, Slurm",
    )
)

# On-premises cluster B: GPU (IBM, POWER9 + 4x V100 16GB, IB EDR, LSF)
ONPREM_B = _register(
    InstanceType(
        name="onprem-b",
        cloud="p",
        processor=POWER9,
        cores=44,
        memory_gb=256,
        fabric="infiniband-edr",
        cost_per_hour=0.0,
        gpu=V100_16_B,
        notes="Cluster B (2018): 795 nodes, LSF",
    )
)

# AWS
HPC6A = _register(
    InstanceType(
        name="hpc6a.48xlarge",
        cloud="aws",
        processor=EPYC_7R13,
        cores=96,
        memory_gb=384,
        fabric="efa-gen1.5",
        cost_per_hour=2.88,
    )
)
P3DN = _register(
    InstanceType(
        name="p3dn.24xlarge",
        cloud="aws",
        processor=XEON_8175,
        cores=48,
        memory_gb=768,
        fabric="efa-gen1",
        cost_per_hour=34.33,
        gpu=V100_32,
    )
)

# Google Cloud
C2D = _register(
    InstanceType(
        name="c2d-standard-112",
        cloud="g",
        processor=EPYC_7B13,
        cores=56,
        memory_gb=448,
        fabric="gcp-premium",
        cost_per_hour=5.06,
        notes="56 physical cores (112 vCPU); fewer cores/node than AWS/Azure",
    )
)
N1_V100 = _register(
    InstanceType(
        name="n1-standard-32-v100",
        cloud="g",
        processor=XEON_HASWELL,
        cores=16,
        memory_gb=120,
        fabric="gcp-premium",
        cost_per_hour=23.36,
        gpu=V100_16,
    )
)

# Microsoft Azure
HB96 = _register(
    InstanceType(
        name="HB96rs_v3",
        cloud="az",
        processor=EPYC_7003,
        cores=96,
        memory_gb=448,
        fabric="infiniband-hdr",
        cost_per_hour=3.60,
    )
)
ND40 = _register(
    InstanceType(
        name="ND40rs_v2",
        cloud="az",
        processor=XEON_8168,
        cores=48,
        memory_gb=672,
        fabric="infiniband-edr",
        cost_per_hour=22.03,
        gpu=V100_32_AZ,
    )
)


def effective_rate(itype: InstanceType, multiplier: float) -> float:
    """Hourly rate per node under a price overlay.

    The scenario hook (:mod:`repro.scenarios`) for billing code: what-if
    worlds derive re-priced rates — spot discounts, per-cloud price
    shocks — without ever mutating the catalog entry.
    """
    if multiplier < 0:
        raise CatalogError("price multiplier must be non-negative")
    return itype.cost_per_hour * multiplier


def instance(name: str) -> InstanceType:
    """Look up an instance type by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise CatalogError(f"unknown instance type {name!r}") from None


def instances_for_cloud(cloud: str) -> list[InstanceType]:
    """All instance types offered by a cloud short name."""
    found = [it for it in CATALOG.values() if it.cloud == cloud]
    if not found:
        raise CatalogError(f"unknown cloud {cloud!r}")
    return found


#: Clouds recognised throughout the library, mapping short name -> display name.
CLOUD_NAMES: dict[str, str] = {
    "aws": "Amazon Web Services",
    "az": "Microsoft Azure",
    "g": "Google Cloud",
    "p": "On-Premises",
}

"""Cluster provisioning: quota check, node bring-up, placement, faults.

:class:`Provisioner` turns a :class:`ProvisionRequest` into a
:class:`Cluster` of :class:`NodeInstance` records, or raises
:class:`~repro.errors.ProvisioningError` carrying accrued cost (capacity
stalls are not free).  Bring-up consults:

* the quota ledger (:mod:`repro.cloud.quota`) — you cannot exceed grants;
* the fault registry (:mod:`repro.cloud.faults`) — documented incidents;
* the placement engine (:mod:`repro.cloud.placement`) — colocation quality.

Per-node boot times are drawn per cloud; the whole cluster is ready when
the slowest node is (clouds boot in parallel, on-prem nodes are already
up but jobs queue — queueing is the scheduler's job, not ours).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.catalog import InstanceType, effective_rate, instance
from repro.cloud.faults import FaultContext, FaultEvent, evaluate_faults
from repro.cloud.placement import PlacementPolicy, PlacementResult, apply_placement
from repro.cloud.pricing import BillingMeter
from repro.cloud.quota import QuotaLedger
from repro.errors import ProvisioningError
from repro.rng import stream
from repro.units import HOUR

#: Mean single-node boot time in seconds per cloud (VM start + image).
BOOT_TIME_MEAN: dict[str, float] = {"aws": 95.0, "az": 140.0, "g": 80.0, "p": 0.0}


@dataclass
class NodeInstance:
    """A provisioned node."""

    node_id: str
    instance_type: InstanceType
    boot_time: float  # seconds from request to ready
    healthy: bool = True
    #: number of usable GPUs (may be < catalog count; Azure's 7/8 incident)
    usable_gpus: int = 0

    def __post_init__(self) -> None:
        if self.usable_gpus == 0 and self.instance_type.gpu:
            self.usable_gpus = self.instance_type.gpu.count


@dataclass
class Cluster:
    """A provisioned, homogeneous cluster."""

    cloud: str
    environment_kind: str
    instance_type: InstanceType
    nodes: list[NodeInstance]
    placement: PlacementResult
    ready_time: float  # seconds from request until all nodes usable
    fault_events: list[FaultEvent] = field(default_factory=list)
    created_at: float = 0.0  # study time of creation
    released_at: float | None = None

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def healthy_nodes(self) -> list[NodeInstance]:
        return [n for n in self.nodes if n.healthy]

    @property
    def total_cores(self) -> int:
        return sum(n.instance_type.cores for n in self.healthy_nodes)

    @property
    def total_gpus(self) -> int:
        return sum(n.usable_gpus for n in self.healthy_nodes)

    def hourly_cost(self) -> float:
        return self.size * self.instance_type.cost_per_hour


@dataclass
class ProvisionRequest:
    """Parameters for a cluster bring-up."""

    cloud: str
    environment_kind: str  # "k8s" | "vm" | "onprem"
    instance_type: str
    nodes: int
    placement: PlacementPolicy | None = None
    #: extra quota headroom to survive bad nodes (the paper asked for 33
    #: to build a 32-node Azure GPU cluster)
    quota_padding: int = 1
    attempt: int = 0


class Provisioner:
    """Brings clusters up and down, charging the billing meter."""

    def __init__(self, ledger: QuotaLedger, meter: BillingMeter, *, seed: int = 0):
        self.ledger = ledger
        self.meter = meter
        self.seed = seed
        self._counter = 0
        #: scenario hooks (:mod:`repro.scenarios`): an hourly-rate
        #: multiplier ``(instance_type, nodes) -> float`` and a fault
        #: probability scale, both applied per provisioner instance so
        #: the catalog and fault registry stay untouched
        self.price_overlay = None
        self.fault_scale = 1.0

    def _rate(self, itype: InstanceType, nodes: int) -> float:
        """Effective hourly rate per node under the active price overlay."""
        if self.price_overlay is None:
            return itype.cost_per_hour
        return effective_rate(itype, self.price_overlay(itype, nodes))

    # -- bring-up -----------------------------------------------------------

    def provision(self, req: ProvisionRequest, *, now: float = 0.0) -> Cluster:
        """Provision a cluster; may raise :class:`ProvisioningError`.

        ``now`` is the current study time (seconds) used for billing.
        """
        itype = instance(req.instance_type)
        ctx = FaultContext(
            cloud=req.cloud,
            environment_kind=req.environment_kind,
            instance_type=itype.name,
            is_gpu=itype.is_gpu,
            nodes=req.nodes,
            attempt=req.attempt,
        )
        faults = evaluate_faults(ctx, seed=self.seed, probability_scale=self.fault_scale)

        fatal = [f for f in faults if f.fatal]
        if fatal:
            worst = max(fatal, key=lambda f: f.money_cost)
            # Charge for the nodes that sat idle during the stall.
            partial = max(1, req.nodes // 2)
            self.meter.meter(
                req.cloud,
                itype.name,
                partial,
                now,
                now + worst.time_cost,
                self._rate(itype, req.nodes),
                label="provisioning-stall",
            )
            raise ProvisioningError(
                f"{worst.fault_id}: {worst.detail}",
                nodes_acquired=partial,
                cost_accrued=worst.money_cost,
            )

        if req.cloud != "p":
            self.ledger.acquire(req.cloud, itype.name, req.nodes)

        rng = stream(self.seed, "boot", req.cloud, itype.name, req.nodes, req.attempt)
        mean_boot = BOOT_TIME_MEAN.get(req.cloud, 60.0)
        nodes: list[NodeInstance] = []
        for i in range(req.nodes):
            self._counter += 1
            boot = float(rng.gamma(shape=4.0, scale=mean_boot / 4.0)) if mean_boot else 0.0
            nodes.append(
                NodeInstance(
                    node_id=f"{req.cloud}-{itype.name}-{self._counter:05d}",
                    instance_type=itype,
                    boot_time=boot,
                )
            )

        # Apply non-fatal fault effects to the node pool.
        extra_time = 0.0
        for ev in faults:
            extra_time += ev.time_cost
            if ev.fault_id == "azure-bad-gpu-node" and nodes:
                bad = nodes[0]
                bad.healthy = False
                bad.usable_gpus = max(0, bad.usable_gpus - 1)
                # Replacement node from padded quota (the 33-for-32 trick);
                # only possible if the grant actually has headroom.
                if req.quota_padding > 0:
                    try:
                        self.ledger.acquire(req.cloud, itype.name, 1)
                    except Exception:
                        pass
                    else:
                        self._counter += 1
                        nodes.append(
                            NodeInstance(
                                node_id=f"{req.cloud}-{itype.name}-{self._counter:05d}",
                                instance_type=itype,
                                boot_time=float(rng.gamma(4.0, mean_boot / 4.0)),
                            )
                        )
            if ev.money_cost:
                # The event duration reflects the documented dollar figure
                # at on-demand rates; a price overlay scales the charge.
                self.meter.meter(
                    req.cloud,
                    itype.name,
                    1,
                    now,
                    now + ev.money_cost / max(itype.cost_per_hour, 1e-9) * HOUR
                    if itype.cost_per_hour
                    else now,
                    self._rate(itype, req.nodes),
                    label=f"fault:{ev.fault_id}",
                )

        placement = apply_placement(
            req.cloud, req.environment_kind, req.nodes, req.placement, seed=self.seed
        )
        ready = (max((n.boot_time for n in nodes), default=0.0)) + extra_time
        cluster = Cluster(
            cloud=req.cloud,
            environment_kind=req.environment_kind,
            instance_type=itype,
            nodes=nodes,
            placement=placement,
            ready_time=ready,
            fault_events=faults,
            created_at=now,
        )
        return cluster

    # -- teardown -----------------------------------------------------------

    def release(self, cluster: Cluster, *, now: float) -> float:
        """Release a cluster, metering its lifetime; returns the cost."""
        if cluster.released_at is not None:
            raise ProvisioningError("cluster already released")
        cluster.released_at = now
        if cluster.cloud != "p":
            self.ledger.release(cluster.cloud, cluster.instance_type.name, cluster.size)
        ev = self.meter.meter(
            cluster.cloud,
            cluster.instance_type.name,
            cluster.size,
            cluster.created_at,
            now,
            self._rate(cluster.instance_type, cluster.size),
            label=f"cluster:{cluster.environment_kind}:{cluster.size}",
        )
        return ev.cost

"""Auto-scaling model: §4.1's "Auto-scaling should be used carefully".

The paper's guidance: auto-scaling suits *batches of infrequent work* —
a small head node that scales workers up on demand — while regularly
changing sizes belong on Kubernetes, and well-defined experiment plans
should use static clusters of exactly the sizes needed (avoiding costs
incurred waiting for resources).

:class:`Autoscaler` simulates an autoscaling VM cluster processing a
job trace: workers spin up on demand (paying boot latency), idle
workers are reaped after a cooldown, and every node-second is metered.
:func:`compare_strategies` prices the same trace under auto-scaling vs
a static cluster, reproducing the paper's advice as a computable
trade-off: bursty/infrequent traces favour auto-scaling, steady
back-to-back experiment plans favour static clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.catalog import InstanceType, instance
from repro.cloud.provisioner import BOOT_TIME_MEAN
from repro.units import HOUR


@dataclass(frozen=True)
class TraceJob:
    """One job in a workload trace."""

    arrival: float  # seconds from trace start
    nodes: int
    duration: float  # seconds of execution once started


@dataclass
class ScalingEvent:
    """A scale-up or scale-down decision."""

    time: float
    delta: int  # positive = nodes added
    reason: str


@dataclass
class AutoscaleResult:
    """Outcome of running a trace under one strategy."""

    strategy: str
    node_seconds: float
    cost_usd: float
    makespan: float
    total_wait: float
    scaling_events: list[ScalingEvent] = field(default_factory=list)

    @property
    def scaling_operations(self) -> int:
        return len(self.scaling_events)


@dataclass
class Autoscaler:
    """An autoscaling cluster with a persistent head node.

    ``cooldown`` is how long an idle worker survives before reaping —
    the knob the paper's advice turns on: minimizing scaling operations
    and up/down time *relative to the work*.
    """

    instance_type: InstanceType
    cooldown: float = 300.0
    max_nodes: int = 256
    head_nodes: int = 1

    def run_trace(self, trace: list[TraceJob]) -> AutoscaleResult:
        """Simulate the trace; jobs run as soon as their workers boot."""
        if not trace:
            return AutoscaleResult("autoscale", 0.0, 0.0, 0.0, 0.0)
        boot = BOOT_TIME_MEAN.get(self.instance_type.cloud, 60.0)
        events: list[ScalingEvent] = []
        node_seconds = 0.0
        total_wait = 0.0
        makespan = 0.0
        #: worker pools currently alive: (free_at, reap_at) per node
        pool: list[dict] = []

        for job in sorted(trace, key=lambda j: j.arrival):
            # Reap workers whose cooldown expired before this arrival.
            for w in list(pool):
                if w["reap_at"] <= job.arrival:
                    node_seconds += w["reap_at"] - w["born"]
                    events.append(ScalingEvent(w["reap_at"], -1, "idle cooldown"))
                    pool.remove(w)
            # Reuse warm workers that are free.
            warm = [w for w in pool if w["free_at"] <= job.arrival]
            reused = warm[: job.nodes]
            needed = job.nodes - len(reused)
            if len(pool) + needed > self.max_nodes:
                raise ValueError("trace exceeds max_nodes")
            start = job.arrival if needed == 0 else job.arrival + boot
            if needed:
                events.append(ScalingEvent(job.arrival, needed, "scale-up for job"))
            end = start + job.duration
            total_wait += start - job.arrival
            makespan = max(makespan, end)
            for w in reused:
                w["free_at"] = end
                w["reap_at"] = end + self.cooldown
            for _ in range(needed):
                pool.append({"born": job.arrival, "free_at": end, "reap_at": end + self.cooldown})

        for w in pool:
            node_seconds += min(w["reap_at"], makespan + self.cooldown) - w["born"]
        head_seconds = self.head_nodes * (makespan + self.cooldown)
        node_seconds += head_seconds
        cost = node_seconds / HOUR * self.instance_type.cost_per_hour
        return AutoscaleResult(
            strategy="autoscale",
            node_seconds=node_seconds,
            cost_usd=cost,
            makespan=makespan,
            total_wait=total_wait,
            scaling_events=events,
        )


def run_static(trace: list[TraceJob], instance_type: InstanceType) -> AutoscaleResult:
    """Price the same trace on a static cluster sized for the peak.

    The §4.1 alternative: bring up exactly the needed size for the whole
    campaign.  Jobs run back-to-back with no boot waits; the cluster is
    billed from first arrival to last completion.
    """
    if not trace:
        return AutoscaleResult("static", 0.0, 0.0, 0.0, 0.0)
    peak = max(j.nodes for j in trace)
    start = min(j.arrival for j in trace)
    # Serial execution is the conservative bound when jobs overlap and
    # exceed capacity; jobs that fit together run concurrently.
    busy_until = start
    makespan = start
    total_wait = 0.0
    running: list[tuple[float, int]] = []  # (end, nodes)
    free = peak
    for job in sorted(trace, key=lambda j: j.arrival):
        t = job.arrival
        running = [(e, n) for e, n in running if e > t]
        free = peak - sum(n for _, n in running)
        job_start = t
        if job.nodes > free:
            # Wait for enough endings.
            for end, n in sorted(running):
                free += n
                job_start = end
                if free >= job.nodes:
                    break
        total_wait += job_start - t
        end = job_start + job.duration
        running.append((end, job.nodes))
        free -= job.nodes
        makespan = max(makespan, end)
    node_seconds = peak * (makespan - start)
    return AutoscaleResult(
        strategy="static",
        node_seconds=node_seconds,
        cost_usd=node_seconds / HOUR * instance_type.cost_per_hour,
        makespan=makespan,
        total_wait=total_wait,
    )


def compare_strategies(
    trace: list[TraceJob], instance_name: str = "hpc6a.48xlarge",
    *, cooldown: float = 300.0,
) -> dict[str, AutoscaleResult]:
    """Price a trace under both strategies; the cheaper one 'wins'."""
    itype = instance(instance_name)
    return {
        "autoscale": Autoscaler(itype, cooldown=cooldown).run_trace(trace),
        "static": run_static(trace, itype),
    }


def bursty_trace(jobs: int = 6, nodes: int = 32, duration: float = 600.0,
                 gap: float = 4 * HOUR) -> list[TraceJob]:
    """Infrequent batches — the workload §4.1 says suits auto-scaling."""
    return [TraceJob(i * gap, nodes, duration) for i in range(jobs)]


def steady_trace(jobs: int = 20, nodes: int = 32, duration: float = 600.0,
                 gap: float = 650.0) -> list[TraceJob]:
    """Back-to-back experiment plan — §4.1 says use a static cluster."""
    return [TraceJob(i * gap, nodes, duration) for i in range(jobs)]

"""Container build pipeline: recipes, compatibility solving, registry, runtimes.

The study built 220 containers across 12 environments (§3.1).  The
differences came down to drivers and networking software: AWS needed
OpenMPI compiled with libfabric for EFA, Azure needed UCX for
InfiniBand, Google needed nothing special.  This package models that
pipeline, including the dependency-conflict failure that prevented the
Laghos GPU container from ever building (two dependencies requiring
different CUDA versions).
"""

from repro.containers.builder import BuildResult, ContainerBuilder
from repro.containers.image import ContainerImage
from repro.containers.recipe import (
    FLUX_STACK,
    Package,
    Recipe,
    recipe_for,
)
from repro.containers.registry import Registry
from repro.containers.runtime import ContainerRuntime, Containerd, Singularity

__all__ = [
    "BuildResult",
    "ContainerBuilder",
    "ContainerImage",
    "ContainerRuntime",
    "Containerd",
    "FLUX_STACK",
    "Package",
    "Recipe",
    "Registry",
    "Singularity",
    "recipe_for",
]

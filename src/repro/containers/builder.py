"""Container builder: capability solving and build execution.

The builder enforces the single constraint that killed the Laghos GPU
container in the study: every package's pinned capability versions
(``cuda`` and friends) must agree across the recipe.  On conflict it
raises :class:`~repro.errors.ContainerBuildError` naming the pair, so
the usability layer can file the incident and the environment layer can
mark the app unavailable on GPU.

Azure recipes additionally need UCX transport tuning: the first build of
an Azure image is *untuned* (carries the latency quirk) unless the
caller passes the transport setting discovered by experimentation —
modelled by :meth:`ContainerBuilder.build` accepting ``ucx_tls``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.containers.image import ContainerImage
from repro.containers.recipe import Recipe
from repro.errors import ContainerBuildError

#: UCX transport settings found by the study per Azure environment kind.
AZURE_UCX_SETTINGS = {
    "k8s": "ib",  # AKS: unified mode, UCX_TLS=ib, btl ^openib
    "vm": "ud,shm,rc",  # CycleCloud: unreliable datagram + shm + rc
}


@dataclass
class BuildResult:
    """Outcome of one build attempt."""

    recipe: Recipe
    image: ContainerImage | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.image is not None


@dataclass
class ContainerBuilder:
    """Builds recipes into images, tracking study-level statistics."""

    #: all attempts, in order (the paper reports 220 built / 114 tested /
    #: 97 intended / 74 used)
    attempts: list[BuildResult] = field(default_factory=list)

    def solve_capabilities(self, recipe: Recipe) -> dict[str, str]:
        """Check capability pins agree; returns the resolved pin set."""
        resolved: dict[str, tuple[str, str]] = {}  # capability -> (version, pkg)
        for pkg in recipe.packages:
            for cap, ver in pkg.requires_dict().items():
                prev = resolved.get(cap)
                if prev is not None and prev[0] != ver:
                    raise ContainerBuildError(
                        f"{recipe.tag}: {cap} conflict — {prev[1]} requires "
                        f"{cap} {prev[0]} but {pkg.name} requires {cap} {ver}",
                        conflicts=(prev[1], pkg.name),
                    )
                resolved[cap] = (ver, pkg.name)
        return {cap: ver for cap, (ver, _) in resolved.items()}

    def build(self, recipe: Recipe, *, ucx_tls: str | None = None) -> ContainerImage:
        """Build an image; raises :class:`ContainerBuildError` on conflict.

        ``ucx_tls`` bakes an Azure UCX transport selection into the image
        environment (see :data:`AZURE_UCX_SETTINGS`).
        """
        try:
            caps = self.solve_capabilities(recipe)
        except ContainerBuildError as exc:
            self.attempts.append(BuildResult(recipe, None, error=str(exc)))
            raise

        env: list[tuple[str, str]] = []
        if recipe.cloud == "az" and ucx_tls:
            env.append(("UCX_TLS", ucx_tls))
            env.append(("UCX_UNIFIED_MODE", "y"))
            env.append(("OMPI_MCA_btl", "^openib"))
        if recipe.cloud == "aws":
            env.append(("FI_PROVIDER", "efa"))
        if "cuda" in caps:
            env.append(("CUDA_VERSION", caps["cuda"]))

        digest = hashlib.blake2b(
            (recipe.tag + repr(sorted(env))).encode(), digest_size=12
        ).hexdigest()
        size = 1.2 + 0.35 * len(recipe.packages) + (4.5 if recipe.gpu else 0.0)
        image = ContainerImage(
            recipe=recipe,
            digest=digest,
            size_gb=round(size, 2),
            build_minutes=recipe.build_minutes(),
            env=tuple(env),
        )
        self.attempts.append(BuildResult(recipe, image))
        return image

    def try_build(self, recipe: Recipe, *, ucx_tls: str | None = None) -> BuildResult:
        """Build without raising; failures are recorded and returned."""
        try:
            self.build(recipe, ucx_tls=ucx_tls)
        except ContainerBuildError:
            pass
        return self.attempts[-1]

    # -- statistics -----------------------------------------------------------

    @property
    def built(self) -> int:
        return sum(1 for a in self.attempts if a.ok)

    @property
    def failed(self) -> int:
        return sum(1 for a in self.attempts if not a.ok)

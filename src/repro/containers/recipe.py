"""Container recipes: the software stacks of §2.7.

Every study container installs the same Flux Framework releases and
OpenMPI 4.1.2; per-cloud differences are fabric libraries (libfabric
for EFA, UCX + proprietary hpcx/hcoll/sharp for Azure InfiniBand) and
GPU stacks (CUDA toolchains pinned per application).

A :class:`Package` may pin a *provided* capability version (e.g. CUDA);
the builder checks that all packages in a recipe agree — the mechanism
by which the Laghos GPU recipe fails to build, reproducing §3.3's
"software conflict of two dependencies requiring different versions of
CUDA".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Package:
    """A software component installed into a container."""

    name: str
    version: str
    #: capability constraints, e.g. {"cuda": "11.2"} — the builder
    #: requires a single consistent version per capability
    requires: tuple[tuple[str, str], ...] = ()
    #: whether the component is proprietary (needs a custom base image
    #: on Azure: hpcx, hcoll, sharp)
    proprietary: bool = False
    #: relative build cost, minutes of build time
    build_minutes: float = 2.0

    def requires_dict(self) -> dict[str, str]:
        return dict(self.requires)


def _pkg(name: str, version: str, *, cuda: str | None = None, proprietary: bool = False,
         build_minutes: float = 2.0) -> Package:
    req = (("cuda", cuda),) if cuda else ()
    return Package(name, version, requires=req, proprietary=proprietary,
                   build_minutes=build_minutes)


#: The common Flux Framework stack (§2.7), identical in every container.
FLUX_STACK: tuple[Package, ...] = (
    _pkg("flux-security", "0.11.0"),
    _pkg("flux-core", "0.61.2", build_minutes=6.0),
    _pkg("flux-sched", "0.33.1", build_minutes=4.0),
    _pkg("flux-pmix", "0.4.0"),
    _pkg("cmake", "3.23.1", build_minutes=1.0),
    _pkg("openmpi", "4.1.2", build_minutes=8.0),
)

#: Fabric support layers per cloud.
FABRIC_PACKAGES: dict[str, tuple[Package, ...]] = {
    "aws": (_pkg("libfabric", "1.21.1", build_minutes=3.0),),
    "az": (
        _pkg("ucx", "1.15.0", build_minutes=5.0),
        _pkg("hpcx", "2.15", proprietary=True, build_minutes=4.0),
        _pkg("hcoll", "4.8", proprietary=True),
        _pkg("sharp", "3.5", proprietary=True),
    ),
    "g": (),  # §2.7: Google Cloud needed no special software or drivers
    "p": (),
}

#: Application packages; CUDA pins apply to GPU variants only.
APP_PACKAGES: dict[str, tuple[Package, ...]] = {
    "amg2023": (
        _pkg("hypre", "2.31.0", build_minutes=10.0),
        _pkg("amg2023", "1.0", build_minutes=3.0),
    ),
    "laghos": (
        _pkg("mfem", "4.6", build_minutes=12.0),
        _pkg("hypre", "2.31.0", build_minutes=10.0),
        _pkg("laghos", "3.1", build_minutes=4.0),
    ),
    "lammps": (_pkg("lammps-reaxff", "2023.08", build_minutes=15.0),),
    "kripke": (_pkg("kripke", "1.2.7", build_minutes=5.0),),
    "minife": (_pkg("minife", "2.2.0", build_minutes=3.0),),
    "mt-gemm": (_pkg("mt-gemm", "1.0", build_minutes=1.0),),
    "mixbench": (_pkg("mixbench", "2024.1", build_minutes=1.0),),
    "osu": (_pkg("osu-micro-benchmarks", "7.3", build_minutes=2.0),),
    "stream": (_pkg("stream", "5.10", build_minutes=0.5),),
    "quicksilver": (_pkg("quicksilver", "1.0", build_minutes=4.0),),
    "single-node": (
        _pkg("dmidecode", "3.5", build_minutes=0.2),
        _pkg("hwloc", "2.9", build_minutes=1.0),
        _pkg("sysbench", "1.0.20", build_minutes=0.5),
    ),
}

#: GPU-variant CUDA pins. Laghos's two GPU dependencies disagree — the
#: documented, unresolvable conflict.
GPU_CUDA_PINS: dict[str, dict[str, str]] = {
    "amg2023": {"hypre": "11.8", "amg2023": "11.8"},
    "laghos": {"mfem": "12.2", "hypre": "11.8", "laghos": "12.2"},
    "lammps": {"lammps-reaxff": "11.8"},
    "kripke": {"kripke": "11.8"},
    "minife": {"minife": "11.8"},
    "mt-gemm": {"mt-gemm": "11.8"},
    "mixbench": {"mixbench": "11.8"},
    "quicksilver": {"quicksilver": "11.8"},
    "stream": {"stream": "11.8"},
}


@dataclass(frozen=True)
class Recipe:
    """A complete container definition for (app, cloud, accelerator)."""

    app: str
    cloud: str
    gpu: bool
    base_image: str
    packages: tuple[Package, ...]

    @property
    def tag(self) -> str:
        acc = "gpu" if self.gpu else "cpu"
        return f"{self.app}-{self.cloud}-{acc}"

    def proprietary_packages(self) -> list[Package]:
        return [p for p in self.packages if p.proprietary]

    def build_minutes(self) -> float:
        return sum(p.build_minutes for p in self.packages)


#: Base images per cloud (§2.7: Rocky bases for Compute Engine per
#: suggested practice; Ubuntu elsewhere; Azure needs a custom base for
#: the proprietary stack).
BASE_IMAGES: dict[str, str] = {
    "aws": "ubuntu:22.04",
    "az": "azurehpc-custom:22.04",
    "g": "rockylinux:9-optimized-gcp",
    "p": "bare-metal-modules",
}


def recipe_for(app: str, cloud: str, *, gpu: bool) -> Recipe:
    """Construct the recipe the study used for (app, cloud, accelerator)."""
    if app not in APP_PACKAGES:
        raise KeyError(f"unknown application {app!r}")
    packages: list[Package] = list(FLUX_STACK)
    packages += list(FABRIC_PACKAGES.get(cloud, ()))
    app_pkgs = APP_PACKAGES[app]
    if gpu:
        pins = GPU_CUDA_PINS.get(app, {})
        pinned = []
        for p in app_pkgs:
            cuda = pins.get(p.name)
            if cuda is not None:
                pinned.append(
                    Package(
                        p.name,
                        p.version,
                        requires=(("cuda", cuda),),
                        proprietary=p.proprietary,
                        build_minutes=p.build_minutes * 1.5,  # nvcc is slow
                    )
                )
            else:
                pinned.append(p)
        packages += pinned
    else:
        packages += list(app_pkgs)
    return Recipe(
        app=app,
        cloud=cloud,
        gpu=gpu,
        base_image=BASE_IMAGES.get(cloud, "ubuntu:22.04"),
        packages=tuple(packages),
    )

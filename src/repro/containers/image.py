"""Built container images."""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.recipe import Recipe


@dataclass(frozen=True)
class ContainerImage:
    """A successfully built image, addressable by tag."""

    recipe: Recipe
    digest: str
    size_gb: float
    build_minutes: float
    #: environment tuning baked into the image (UCX transports etc.);
    #: consumed by the runtime to decide fabric quirks
    env: tuple[tuple[str, str], ...] = ()

    @property
    def tag(self) -> str:
        return self.recipe.tag

    def env_dict(self) -> dict[str, str]:
        return dict(self.env)

    @property
    def ucx_tuned(self) -> bool:
        """Whether the image carries a working UCX transport selection.

        §3.1: on AKS the working setting was ``UCX_TLS=ib`` with unified
        mode; on CycleCloud ``UCX_TLS=ud,shm,rc``.  Untuned Azure images
        suffer the :data:`~repro.network.quirks.AZURE_UNTUNED_UCX` quirk.
        """
        env = self.env_dict()
        return "UCX_TLS" in env

"""Container runtimes: containerd (Kubernetes) and Singularity (VMs).

§2.3: VM environments pulled the *same* containers used in Kubernetes,
but via Singularity — maximizing comparability.  The runtimes differ in
pull format (Singularity converts OCI layers to a SIF file, adding
conversion time) and startup (Singularity exec is near-instant;
containerd pays sandbox setup).  Neither adds meaningful *runtime*
overhead — consistent with the paper's background that containerized
HPC apps run at bare-metal speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.image import ContainerImage
from repro.containers.registry import Registry


@dataclass(frozen=True)
class PullRecord:
    """Result of materialising an image on a node."""

    tag: str
    seconds: float
    cached: bool


class ContainerRuntime:
    """Common runtime behaviour; subclasses set cost parameters."""

    name = "abstract"
    #: extra seconds per pull for format handling
    pull_overhead_s = 0.0
    #: per-container start cost
    start_seconds = 0.0
    #: steady-state performance multiplier (1.0 = bare metal)
    runtime_efficiency = 1.0

    def __init__(self, registry: Registry, cloud: str):
        self.registry = registry
        self.cloud = cloud
        self._cache: set[str] = set()

    def pull(self, tag: str) -> PullRecord:
        """Materialise an image; cached pulls are free.

        §4.2 suggested practice: "for setups with a shared filesystem
        that dynamically add worker nodes, we suggest pulling containers
        once before spawning worker nodes" — callers do that by pulling
        through a shared runtime instance.
        """
        if tag in self._cache:
            return PullRecord(tag, 0.0, cached=True)
        _, seconds = self.registry.pull(tag, cloud=self.cloud)
        self._cache.add(tag)
        return PullRecord(tag, seconds + self.pull_overhead_s, cached=False)

    def start(self, image: ContainerImage) -> float:
        """Seconds to start a container from a cached image."""
        return self.start_seconds


class Containerd(ContainerRuntime):
    """containerd under Kubernetes (EKS/AKS/GKE)."""

    name = "containerd"
    pull_overhead_s = 2.0  # snapshotter unpack
    start_seconds = 1.5  # sandbox + CRI round trips
    runtime_efficiency = 1.0


class Singularity(ContainerRuntime):
    """Singularity on VM clusters (ParallelCluster, CycleCloud, CE)."""

    name = "singularity"
    pull_overhead_s = 25.0  # OCI -> SIF conversion
    start_seconds = 0.3  # exec in user namespace
    runtime_efficiency = 1.0

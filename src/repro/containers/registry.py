"""Container registry: push, pull, and dataset artifact storage.

The study deployed containers "to the registry alongside the
repository" and pushed job output there too via ORAS (§2.9).  The
registry model tracks images by tag and artifacts by name, with pull
cost proportional to image size over the node's download bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.image import ContainerImage

#: Effective registry download bandwidth per cloud, GB/s. Pulls inside a
#: cloud hit the colocated registry mirror; on-prem pulls cross the WAN.
PULL_BANDWIDTH_GBPS: dict[str, float] = {"aws": 1.2, "az": 0.9, "g": 1.1, "p": 0.25}


@dataclass
class Registry:
    """An OCI registry holding images and ORAS artifacts."""

    images: dict[str, ContainerImage] = field(default_factory=dict)
    artifacts: dict[str, bytes] = field(default_factory=dict)
    pulls: int = 0

    def push(self, image: ContainerImage) -> None:
        self.images[image.tag] = image

    def pull(self, tag: str, *, cloud: str) -> tuple[ContainerImage, float]:
        """Pull an image; returns (image, seconds)."""
        try:
            image = self.images[tag]
        except KeyError:
            raise KeyError(f"image {tag!r} not in registry") from None
        self.pulls += 1
        bw = PULL_BANDWIDTH_GBPS.get(cloud, 0.5)
        return image, image.size_gb / bw

    def push_artifact(self, name: str, payload: bytes) -> None:
        """ORAS-style artifact push (job output datasets)."""
        self.artifacts[name] = payload

    def artifact(self, name: str) -> bytes:
        return self.artifacts[name]

    def tags(self) -> list[str]:
        return sorted(self.images)

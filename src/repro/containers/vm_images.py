"""VM base images, including the study's post-hoc Azure contribution.

§2.7: Compute Engine used the recommended Rocky-Linux-optimized base
with the same build instructions as the containers; AWS ParallelCluster
and Azure CycleCloud images were vendor-provided.

§4.2 (Suggested Practices): "Recognizing the lack of updated VMs and
base containers for the larger HPC community to use on Azure, following
the study we developed new VMs and matching containers on Ubuntu 24.04
with the latest drivers. Instead of using proprietary MPI and other
associated software, we used an entirely open stack."  That artifact is
modelled by :data:`AZURE_OPEN_UBUNTU_2404`: an Azure base that removes
the proprietary hpcx/hcoll/sharp requirement, so recipes built against
it carry only open packages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.recipe import Package, Recipe, recipe_for


@dataclass(frozen=True)
class VMBaseImage:
    """A virtual-machine base image for a VM environment."""

    name: str
    cloud: str
    os: str
    nvidia_driver: str | None
    #: whether the image's MPI/fabric stack is fully open source
    open_stack: bool
    #: whether the vendor supplies it (vs built by the study team)
    vendor_provided: bool


#: The bases used during the study (§2.7).
STUDY_VM_BASES: dict[str, VMBaseImage] = {
    "parallelcluster": VMBaseImage(
        name="aws-parallelcluster-3.x",
        cloud="aws",
        os="Amazon Linux 2",
        nvidia_driver="470 (vendor)",
        open_stack=False,
        vendor_provided=True,
    ),
    "cyclecloud": VMBaseImage(
        name="azure-cyclecloud-hpc",
        cloud="az",
        os="AlmaLinux 8 HPC",
        nvidia_driver="535 (vendor)",
        open_stack=False,  # hpcx/hcoll/sharp
        vendor_provided=True,
    ),
    "computeengine": VMBaseImage(
        name="rocky-linux-9-optimized-gcp",
        cloud="g",
        os="Rocky Linux 9",
        nvidia_driver="535",
        open_stack=True,
        vendor_provided=True,
    ),
}

#: The post-study contribution: Ubuntu 24.04 Azure base with the latest
#: drivers and an entirely open stack.
AZURE_OPEN_UBUNTU_2404 = VMBaseImage(
    name="azure-hpc-ubuntu-24.04-open",
    cloud="az",
    os="Ubuntu 24.04",
    nvidia_driver="550",
    open_stack=True,
    vendor_provided=False,
)


def open_stack_recipe(app: str, *, gpu: bool) -> Recipe:
    """An Azure recipe rebased onto the open Ubuntu 24.04 stack.

    Proprietary packages (hpcx, hcoll, sharp) are dropped; UCX remains
    (it is open source and carries the InfiniBand transport).  The
    result matches the post-study containers: same apps, no vendor
    lock-in.
    """
    base = recipe_for(app, "az", gpu=gpu)
    open_packages = tuple(p for p in base.packages if not p.proprietary)
    return Recipe(
        app=base.app,
        cloud="az",
        gpu=base.gpu,
        base_image=AZURE_OPEN_UBUNTU_2404.name,
        packages=open_packages,
    )

"""Plain-text table rendering for experiment outputs.

Every experiment returns a :class:`Table`; the benchmark harness prints
it so a run regenerates the same rows the paper reports.  Markdown and
CSV renderers are provided for documentation and archival.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class Table:
    """A titled grid of rows."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    caption: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values; table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_markdown(self) -> str:
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.2f}"
    return str(value)


def render_table(table: Table) -> str:
    """Fixed-width ASCII rendering."""
    str_rows = [[_fmt(v) for v in row] for row in table.rows]
    widths = [len(c) for c in table.columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [table.title, "=" * len(table.title)]
    out.append(" | ".join(c.ljust(w) for c, w in zip(table.columns, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.caption:
        out.append("")
        out.append(table.caption)
    return "\n".join(out)

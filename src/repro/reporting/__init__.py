"""Report rendering: ASCII tables, series, paper-vs-measured comparisons."""

from repro.reporting.compare import Expectation, check_expectations
from repro.reporting.series import Series, render_series
from repro.reporting.tables import Table, render_table

__all__ = [
    "Expectation",
    "Series",
    "Table",
    "check_expectations",
    "render_series",
    "render_table",
]

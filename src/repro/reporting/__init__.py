"""Report rendering: ASCII tables, series, paper-vs-measured comparisons,
what-if scenario delta reports, and ensemble distribution reports."""

from repro.reporting.compare import Expectation, check_expectations
from repro.reporting.deltas import ScenarioDelta, delta_table, scenario_deltas
from repro.reporting.distributions import (
    distribution_table,
    exceedance_table,
    render_distributions,
)
from repro.reporting.series import Series, render_series
from repro.reporting.tables import Table, render_table

__all__ = [
    "Expectation",
    "ScenarioDelta",
    "Series",
    "Table",
    "check_expectations",
    "delta_table",
    "distribution_table",
    "exceedance_table",
    "render_distributions",
    "render_series",
    "render_table",
    "scenario_deltas",
]

"""Scenario delta reports: each counterfactual world vs the baseline.

A sweep (:mod:`repro.scenarios.sweep`) yields one
:class:`~repro.core.study.StudyReport` per scenario.  This module folds
them against the baseline into per-scenario :class:`ScenarioDelta` rows
— spend, run cost, run-state counts, incident counts, and a matched
figure-of-merit ratio — and renders the result as the usual
:class:`~repro.reporting.tables.Table`.

The FOM ratio is a geometric mean over runs completed in *both* worlds,
matched on ``(env, app, scale, iteration)``; runs a scenario killed
(preemptions, timeouts from a degraded fabric) therefore show up in the
state counts, not as a distorted ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.reporting.tables import Table
from repro.sim.run_result import RunState


@dataclass(frozen=True)
class ScenarioDelta:
    """One scenario's outcome relative to the baseline study."""

    scenario_id: str
    #: provider dollars (cluster billing, stalls, fault charges)
    spend_usd: float
    spend_delta_usd: float
    #: dataset dollars (per-run pricing in the result store)
    run_cost_usd: float
    run_cost_delta_usd: float
    completed: int
    completed_delta: int
    failed: int
    failed_delta: int
    timeout: int
    timeout_delta: int
    incidents: int
    incident_delta: int
    #: geometric-mean FOM ratio vs baseline over runs completed in both
    #: worlds; ``None`` when no run completed in both
    fom_ratio: float | None


def _spend(report) -> float:
    return sum(report.spend_by_cloud.values())


def _incident_count(report) -> int:
    return sum(len(incidents) for incidents in report.incidents.values())


def _state_count(report, state: RunState) -> int:
    return report.store.counts_by_state().get(state, 0)


def _completed_foms(report) -> dict[tuple, float]:
    return {
        (r.env_id, r.app, r.scale, r.iteration): r.fom
        for r in report.store
        if r.state is RunState.COMPLETED and r.fom is not None and r.fom > 0
    }


def _fom_ratio(baseline, report) -> float | None:
    base = _completed_foms(baseline)
    scn = _completed_foms(report)
    # Sorted so float summation order (and hence the last ulp of the
    # ratio) never depends on hash randomization between invocations.
    logs = [
        math.log(scn[key] / base[key])
        for key in sorted(scn.keys() & base.keys())
    ]
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def scenario_delta(scenario_id: str, baseline, report) -> ScenarioDelta:
    """Fold one scenario report against the baseline."""
    spend = _spend(report)
    run_cost = report.store.total_cost()
    completed = _state_count(report, RunState.COMPLETED)
    failed = _state_count(report, RunState.FAILED)
    timeout = _state_count(report, RunState.TIMEOUT)
    incidents = _incident_count(report)
    return ScenarioDelta(
        scenario_id=scenario_id,
        spend_usd=spend,
        spend_delta_usd=spend - _spend(baseline),
        run_cost_usd=run_cost,
        run_cost_delta_usd=run_cost - baseline.store.total_cost(),
        completed=completed,
        completed_delta=completed - _state_count(baseline, RunState.COMPLETED),
        failed=failed,
        failed_delta=failed - _state_count(baseline, RunState.FAILED),
        timeout=timeout,
        timeout_delta=timeout - _state_count(baseline, RunState.TIMEOUT),
        incidents=incidents,
        incident_delta=incidents - _incident_count(baseline),
        fom_ratio=_fom_ratio(baseline, report),
    )


def scenario_deltas(baseline, reports: Mapping[str, object]) -> list[ScenarioDelta]:
    """Fold every scenario report (insertion order) against the baseline."""
    return [
        scenario_delta(scenario_id, baseline, report)
        for scenario_id, report in reports.items()
    ]


def delta_table(baseline, reports: Mapping[str, object]) -> Table:
    """The what-if comparison as a renderable table.

    ``reports`` maps scenario id → :class:`StudyReport` for the
    counterfactual worlds (the baseline row is added first).
    """
    table = Table(
        title="What-if scenarios vs baseline",
        columns=(
            "scenario", "spend $", "Δ spend $", "run cost $", "Δ cost $",
            "completed", "Δ completed", "failed", "Δ failed",
            "timeout", "Δ timeout", "incidents", "Δ incidents", "FOM ×",
        ),
        caption="Δ columns are against the baseline study; FOM × is the "
        "geometric-mean figure-of-merit ratio over runs completed in "
        "both worlds.",
    )
    table.add(
        "baseline",
        _spend(baseline), 0.0,
        baseline.store.total_cost(), 0.0,
        _state_count(baseline, RunState.COMPLETED), 0,
        _state_count(baseline, RunState.FAILED), 0,
        _state_count(baseline, RunState.TIMEOUT), 0,
        _incident_count(baseline), 0,
        1.0,
    )
    for delta in scenario_deltas(baseline, reports):
        table.add(
            delta.scenario_id,
            delta.spend_usd, delta.spend_delta_usd,
            delta.run_cost_usd, delta.run_cost_delta_usd,
            delta.completed, delta.completed_delta,
            delta.failed, delta.failed_delta,
            delta.timeout, delta.timeout_delta,
            delta.incidents, delta.incident_delta,
            "n/a" if delta.fom_ratio is None else delta.fom_ratio,
        )
    return table

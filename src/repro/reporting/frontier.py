"""Campaign reports: frontier, AB deltas, and stage accounting tables.

Renders a :class:`~repro.campaigns.runner.CampaignResult` as the
study's usual :class:`~repro.reporting.tables.Table` values:

* :func:`frontier_table` — the Pareto frontier of cost vs performance,
  one row per non-dominated candidate, the SLA verdict and the selected
  winner marked;
* :func:`ab_table` — every surviving config against its baseline cell:
  cost delta/ratio, FOM ratio, exceedance, and whether the cost delta
  is significant at 95% (Student-t CIs);
* :func:`stage_table` — per-stage accounting: worlds folded, cache
  hits, cells attached, prune counts, and wall-clock seconds from the
  ``campaign.*`` telemetry spans.

The frontier and AB tables are deterministic in the campaign's fold
order — byte-identical CSV for any worker count.  The stage table
carries measured seconds and is for humans.
"""

from __future__ import annotations

from repro.reporting.tables import Table, render_table


def _na(value) -> object:
    return "n/a" if value is None else value


def frontier_table(result) -> Table:
    """The Pareto frontier rows of a :class:`CampaignResult`."""
    winner_key = result.winner.key if result.winner is not None else None
    table = Table(
        title="Pareto frontier: cost vs performance",
        columns=(
            "rank", "scenario", "env", "app", "scale",
            "cost mean $", "FOM mean", "cost/FOM", "P(FOM>=base)",
            "SLA", "winner", "fingerprint",
        ),
        caption=(
            "Non-dominated candidates, cheapest first; SLA is the "
            "full-strictness verdict at grid fidelity; the winner is the "
            "cheapest-per-FOM candidate that passed both the smoke gate "
            "and the full SLA."
        ),
    )
    for rank, cand in enumerate(result.frontier, start=1):
        table.add(
            rank,
            cand.scenario_id,
            cand.env,
            cand.app,
            cand.scale,
            cand.cost_mean,
            _na(cand.fom_mean),
            _na(cand.cost_per_fom),
            _na(cand.exceedance),
            "pass" if cand.sla_ok else "fail",
            "*" if cand.key == winner_key else "",
            cand.fingerprint,
        )
    return table


def ab_table(result) -> Table:
    """The AB stage's candidate-vs-baseline delta rows."""
    table = Table(
        title="AB: candidates vs the baseline world",
        columns=(
            "scenario", "env", "app", "scale",
            "cost delta $", "cost ratio", "FOM ratio", "P(FOM>=base)",
            "significant",
        ),
        caption=(
            "Deltas are candidate minus the baseline cell at the same "
            "(env, app, scale); 'significant' marks cost deltas whose 95% "
            "Student-t confidence intervals do not overlap."
        ),
    )
    for row in result.ab:
        table.add(
            row["scenario"],
            row["env"],
            row["app"],
            row["scale"],
            row["cost_delta"],
            _na(row["cost_ratio"]),
            _na(row["fom_ratio"]),
            _na(row["exceedance"]),
            "yes" if row["significant"] else "no",
        )
    return table


def stage_table(result) -> Table:
    """Per-stage accounting (worlds, reuse, prunes, measured seconds)."""
    table = Table(
        title="Campaign stages",
        columns=("stage", "seconds", "detail"),
        caption=(
            "Seconds are wall-clock self+child time of each campaign.* "
            "telemetry span; detail summarizes the stage record."
        ),
    )
    for record in result.stage_records:
        parts = []
        for key, value in record.detail.items():
            if isinstance(value, dict):
                inner = ",".join(f"{k}={v}" for k, v in value.items())
                parts.append(f"{key}[{inner}]")
            else:
                parts.append(f"{key}={value}")
        table.add(
            record.name,
            result.stage_seconds.get(record.name, 0.0),
            " ".join(parts),
        )
    return table


def render_campaign(result) -> str:
    """The whole campaign as fixed-width text (CLI output)."""
    blocks = [render_table(frontier_table(result))]
    if result.ab:
        blocks.append(render_table(ab_table(result)))
    blocks.append(render_table(stage_table(result)))
    if result.winner is not None:
        w = result.winner
        blocks.append(
            f"winner: {w.scenario_id} on {w.env} / {w.app} @ {w.scale} — "
            f"cost/FOM {w.cost_per_fom:.4g}, cost ${w.cost_mean:,.2f}, "
            f"P(FOM>=base) {_na(w.exceedance)} [{w.fingerprint}]"
        )
    else:
        blocks.append("winner: none — no candidate met the SLA at grid fidelity")
    return "\n\n".join(blocks)

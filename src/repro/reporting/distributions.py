"""Distribution reports: CIs, percentiles, and exceedance probabilities.

An ensemble (:mod:`repro.ensemble`) folds worlds × runs into streaming
per-cell statistics; this module renders them as the study's usual
:class:`~repro.reporting.tables.Table`:

* :func:`distribution_table` — one row per (scenario, env, app, scale)
  cell: replica count, FOM mean ± 95% CI (Student's t), exact
  p10/p50/p90, mean wall seconds, mean cell cost, and the probability
  that a replica-world's FOM meets the seed study's matched point value
  (``P(FOM >= base)``);
* :func:`exceedance_table` — the per-scenario fold of those
  probabilities: how often a counterfactual world keeps up with the
  numbers the paper actually published.

Both tables are deterministic in the ensemble's fold order, so a
rendered report is byte-identical for any worker count.
"""

from __future__ import annotations

import math

from repro.reporting.tables import Table


def _fmt_or_na(value: float) -> object:
    return "n/a" if value is None or (isinstance(value, float) and math.isnan(value)) else value


def distribution_table(result) -> Table:
    """Per-cell distribution rows for an :class:`EnsembleResult`."""
    table = Table(
        title="Ensemble distributions (per cell)",
        columns=(
            "scenario", "env", "app", "scale", "n",
            "FOM mean", "FOM ±95%", "FOM p10", "FOM p50", "FOM p90",
            "wall mean s", "cost mean $", "P(FOM>=base)",
        ),
        caption=(
            "n counts replica-worlds with completed runs in the cell; "
            "±95% is a Student-t confidence half-width over those worlds; "
            "percentiles are exact; P(FOM>=base) is the fraction of worlds "
            "meeting the seed study's point estimate for the same cell."
        ),
    )
    for (sid, env, app, scale), stats in result.cells.items():
        fom = stats.fom
        threshold = result.threshold_for(env, app, scale)
        if fom.count == 0:
            exceed = "n/a"
        elif threshold is None:
            exceed = "n/a"
        else:
            exceed = fom.exceedance(threshold)
        table.add(
            sid, env, app, int(scale), fom.count,
            _fmt_or_na(fom.mean if fom.count else math.nan),
            _fmt_or_na(fom.ci95_halfwidth() if fom.count else math.nan),
            _fmt_or_na(fom.percentile(10.0)),
            _fmt_or_na(fom.percentile(50.0)),
            _fmt_or_na(fom.percentile(90.0)),
            _fmt_or_na(stats.wall.mean if stats.wall.count else math.nan),
            _fmt_or_na(stats.cost.mean if stats.cost.count else math.nan),
            exceed,
        )
    return table


def exceedance_table(result) -> Table:
    """Per-scenario exceedance of the seed study's matched FOM values."""
    table = Table(
        title="Per-scenario exceedance vs the seed study",
        columns=(
            "scenario", "cells", "mean P(FOM>=base)", "min P(FOM>=base)",
            "spend mean $", "incidents mean",
        ),
        caption=(
            "Cells are those matched against a seed-study threshold; the "
            "probabilities fold every replica-world of the scenario."
        ),
    )
    for sid in result.scenario_ids():
        probabilities = []
        for (cell_sid, env, app, scale), stats in result.cells.items():
            if cell_sid != sid or stats.fom.count == 0:
                continue
            threshold = result.threshold_for(env, app, scale)
            if threshold is None:
                continue
            probabilities.append(stats.fom.exceedance(threshold))
        spend = result.spend.get(sid)
        incidents = result.incidents.get(sid)
        table.add(
            sid,
            len(probabilities),
            _fmt_or_na(
                sum(probabilities) / len(probabilities) if probabilities else math.nan
            ),
            _fmt_or_na(min(probabilities) if probabilities else math.nan),
            _fmt_or_na(spend.mean if spend and spend.count else math.nan),
            _fmt_or_na(incidents.mean if incidents and incidents.count else math.nan),
        )
    return table


def render_distributions(result) -> str:
    """Both distribution tables as fixed-width text."""
    from repro.reporting.tables import render_table

    return "\n\n".join(
        (render_table(distribution_table(result)), render_table(exceedance_table(result)))
    )

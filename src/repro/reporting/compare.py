"""Paper-vs-measured comparison machinery.

Each experiment declares :class:`Expectation` records — qualitative
claims from the paper ("on-prem A has the highest AMG CPU FOM at every
size", "AWS allreduce spikes at 32 KiB").  :func:`check_expectations`
evaluates them against regenerated results and produces the
paper-vs-measured report EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Expectation:
    """A falsifiable claim about a regenerated result."""

    experiment: str
    claim: str
    check: Callable[[], bool]
    paper_ref: str = ""


@dataclass(frozen=True)
class ExpectationResult:
    experiment: str
    claim: str
    holds: bool
    paper_ref: str


def check_expectations(expectations: list[Expectation]) -> list[ExpectationResult]:
    """Evaluate claims; a check that raises counts as failed."""
    results = []
    for exp in expectations:
        try:
            holds = bool(exp.check())
        except Exception:
            holds = False
        results.append(
            ExpectationResult(
                experiment=exp.experiment,
                claim=exp.claim,
                holds=holds,
                paper_ref=exp.paper_ref,
            )
        )
    return results


def summarize(results: list[ExpectationResult]) -> str:
    lines = []
    held = sum(1 for r in results if r.holds)
    lines.append(f"{held}/{len(results)} paper claims reproduced")
    for r in results:
        mark = "PASS" if r.holds else "FAIL"
        ref = f" [{r.paper_ref}]" if r.paper_ref else ""
        lines.append(f"  {mark}  {r.experiment}: {r.claim}{ref}")
    return "\n".join(lines)

"""Series containers for figure-style results (FOM vs scale per env)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One figure: named lines of (x, mean, std) points."""

    title: str
    x_label: str
    y_label: str
    lines: dict[str, list[tuple[float, float, float]]] = field(default_factory=dict)
    higher_is_better: bool = True

    def add_point(self, line: str, x: float, mean: float, std: float = 0.0) -> None:
        self.lines.setdefault(line, []).append((x, mean, std))

    def line_means(self, line: str) -> list[tuple[float, float]]:
        return [(x, m) for x, m, _ in sorted(self.lines.get(line, []))]

    def value_at(self, line: str, x: float) -> float | None:
        for px, m, _ in self.lines.get(line, []):
            if px == x:
                return m
        return None

    def best_line_at(self, x: float) -> str | None:
        """Which line wins at a given x (respecting FOM direction)."""
        candidates = {
            name: self.value_at(name, x)
            for name in self.lines
            if self.value_at(name, x) is not None
        }
        if not candidates:
            return None
        pick = max if self.higher_is_better else min
        return pick(candidates, key=lambda k: candidates[k])


def render_series(series: Series, *, width: int = 72) -> str:
    """Text rendering: one block per line with a unicode sparkbar."""
    out = [series.title, "=" * len(series.title)]
    out.append(f"x: {series.x_label}   y: {series.y_label}")
    all_means = [m for pts in series.lines.values() for _, m, _ in pts]
    if not all_means:
        return "\n".join(out + ["(no data)"])
    peak = max(abs(m) for m in all_means) or 1.0
    for name in sorted(series.lines):
        out.append(f"\n{name}")
        for x, mean, std in sorted(series.lines[name]):
            bar = "#" * max(1, int(abs(mean) / peak * 40))
            out.append(f"  {x:>8g}  {mean:>12.4g} ± {std:<10.3g} {bar}")
    return "\n".join(out)

"""Single-node benchmark: hardware inventory + the supermarket fish problem.

§2.8: the study's own benchmark collects dmidecode output,
/proc/cpuinfo, hwloc topology, and sysbench results from every node.
§3.3: machines were consistent *except one AKS instance that reported
only two processors across collection mechanisms* — the "supermarket
fish problem": you buy an instance type, but what species you actually
get is uncertain.

:class:`SingleNodeBenchmark` produces per-node :class:`NodeInventory`
records and :func:`find_fish` flags nodes whose reported hardware
deviates from the cluster's modal configuration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext

#: probability that an AKS node comes up misreporting its CPU count
AKS_FISH_PROBABILITY = 0.01


@dataclass(frozen=True)
class NodeInventory:
    """What the collection tools reported for one node."""

    node_index: int
    cpu_model: str
    reported_cpus: int
    memory_gb: int
    gpus: int
    topology_ok: bool

    def signature(self) -> tuple:
        return (self.cpu_model, self.reported_cpus, self.memory_gb, self.gpus)


def find_fish(inventories: list[NodeInventory]) -> list[NodeInventory]:
    """Nodes that differ from the modal hardware signature."""
    if not inventories:
        return []
    counts = Counter(inv.signature() for inv in inventories)
    modal, _ = counts.most_common(1)[0]
    return [inv for inv in inventories if inv.signature() != modal]


class SingleNodeBenchmark(AppModel):
    name = "single-node"
    display_name = "Single Node Benchmark"
    fom_name = "anomalous nodes"
    fom_units = "count"
    higher_is_better = False
    scaling = "weak"

    def collect(self, ctx: RunContext) -> list[NodeInventory]:
        itype = ctx.env.instance()
        inventories = []
        for i in range(ctx.nodes):
            cpus = itype.cores
            # The AKS anomaly: a node reporting 2 processors.
            if ctx.env.env_id.startswith("cpu-aks") or ctx.env.env_id.startswith("gpu-aks"):
                if ctx.rng.random() < AKS_FISH_PROBABILITY:
                    cpus = 2
            inventories.append(
                NodeInventory(
                    node_index=i,
                    cpu_model=itype.processor.model,
                    reported_cpus=cpus,
                    memory_gb=itype.memory_gb,
                    gpus=itype.gpus_per_node,
                    topology_ok=True,
                )
            )
        return inventories

    def simulate(self, ctx: RunContext) -> AppResult:
        if ctx.env.env_id.startswith(("cpu-aks", "gpu-aks")):
            # AKS draws the fish lottery per node, per iteration.
            inventories = self.collect(ctx)
            fish = find_fish(inventories)
        else:
            # Everywhere else the survey is rng-free and identical for
            # every iteration of a group: collect once, reuse.
            def _survey():
                collected = self.collect(ctx)
                return collected, find_fish(collected)

            inventories, fish = ctx.once(("nodebench-survey",), _survey)
        return self._result(
            ctx,
            fom=float(len(fish)),
            wall=120.0,
            phases={"collect": 120.0},
            extra={
                "nodes_surveyed": len(inventories),
                "anomalies": [f.node_index for f in fish],
            },
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native survey.

        Off Azure the survey is rng-free and group-constant.  On AKS the
        per-node lottery is one uniform matrix; only the reported CPU
        count can deviate, so :func:`find_fish` reduces to counting fish
        per row — including :class:`~collections.Counter`'s first-seen
        tie-break (node 0's signature wins a split vote), replicated
        exactly.
        """
        n = len(block)
        if not ctx.env.env_id.startswith(("cpu-aks", "gpu-aks")):

            def _survey():
                collected = self.collect(ctx)
                return collected, find_fish(collected)

            inventories, fish = ctx.once(("nodebench-survey",), _survey)
            return AppBlockResult(
                app=self.name,
                fom=np.full(n, float(len(fish))),
                fom_units=self.fom_units,
                wall=np.full(n, 120.0),
                phases={"collect": 120.0},
                extra={
                    "nodes_surveyed": len(inventories),
                    "anomalies": [f.node_index for f in fish],
                },
            )

        nodes = ctx.nodes
        fishy = block.random(nodes) < AKS_FISH_PROBABILITY  # (n, nodes)
        fish_counts = fishy.sum(axis=1)
        fom = np.empty(n)
        extra = []
        for j in range(n):
            count = int(fish_counts[j])
            if 2 * count > nodes or (2 * count == nodes and fishy[j, 0]):
                # Fish are the majority (or win the first-seen tie-break):
                # the *normal* nodes read as anomalous.
                anomalies = np.flatnonzero(~fishy[j])
            else:
                anomalies = np.flatnonzero(fishy[j])
            fom[j] = float(len(anomalies))
            extra.append(
                {
                    "nodes_surveyed": nodes,
                    "anomalies": [int(i) for i in anomalies],
                }
            )
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=np.full(n, 120.0),
            phases={"collect": 120.0},
            extra=extra,
        )

"""OSU Micro-Benchmarks: latency, bandwidth, allreduce (§2.8, Figure 5).

Three benchmarks over the message-size sweep OSU uses (1 B – 4 MiB):

* ``osu_latency`` — point-to-point one-way latency in microseconds;
* ``osu_bw`` — point-to-point bandwidth in MB/s (window of 64 inflight
  messages, so large messages stream at line rate);
* ``osu_allreduce`` — average allreduce latency across all ranks.

GPU runs use host-to-host mode (``-d H H``) because only InfiniBand
fabrics support GPU Direct (§2.8), so GPU and CPU results are
comparable — which is why the paper reports CPU at the largest size.

Findings reproduced: InfiniBand/Omni-Path environments have the lowest
latency; CycleCloud (IB HDR) the highest bandwidth; both AWS
environments spike on allreduce at 32,768 bytes (the OpenMPI issue AWS
later fixed); CycleCloud shows the highest allreduce variation.

The point-to-point pair-sampling strategy of §2.8 (8 random nodes, at
most 28 pairs) is implemented by :meth:`OSUBenchmarks.sample_pairs`.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.network.loggp import LogGP

#: OSU default sweep: powers of two from 1 B to 4 MiB
MESSAGE_SIZES = tuple(2**k for k in range(0, 23))
MAX_PAIRS = 28
SAMPLE_NODES = 8


class OSUBenchmarks(AppModel):
    name = "osu"
    display_name = "OSU Benchmarks"
    fom_name = "latency/bandwidth"
    fom_units = "us | MB/s"
    higher_is_better = False  # headline series is latency
    scaling = "strong"

    # -- GPU transfer mode --------------------------------------------------------

    @staticmethod
    def device_mode(ctx: RunContext) -> str:
        """The ``-d`` mode a GPU run uses on this fabric.

        §2.8: "the benchmarks were run using host to host mode
        (cuda -d H H) as only Infiniband fabrics support GPU Direct
        (device to device RDMA)".
        """
        if not ctx.env.is_gpu:
            raise ValueError("device mode applies to GPU environments")
        return "D D" if ctx.fabric.rdma else "H H"

    # -- pair sampling -----------------------------------------------------------

    @staticmethod
    def sample_pairs(
        n_nodes: int, rng: np.random.Generator
    ) -> list[tuple[int, int]]:
        """§2.8 sampling: 8 random nodes, at most 28 pair combinations."""
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        chosen = rng.choice(n_nodes, size=min(SAMPLE_NODES, n_nodes), replace=False)
        pairs = list(combinations(sorted(int(c) for c in chosen), 2))
        return pairs[:MAX_PAIRS]

    # -- the three benchmarks ------------------------------------------------------

    @staticmethod
    def _base_latency(fab, nbytes: int) -> float:
        lg = LogGP.from_fabric(fab)
        return lg.send_time(nbytes) * fab.quirk_multiplier(nbytes, "p2p")

    @staticmethod
    def _base_bandwidth(fab, nbytes: int) -> float:
        lg = LogGP.from_fabric(fab)
        window = 64
        t = lg.send_time(nbytes) + (window - 1) * max(lg.g, nbytes * lg.G)
        return window * nbytes / t

    def latency_us(self, ctx: RunContext, nbytes: int) -> float:
        """One-way point-to-point latency, as osu_latency reports.

        The base time is pure per (fabric, size), so the sweep memoizes
        it on the shared collective model; only the noise draw is
        per-iteration.
        """
        t = ctx.comm.cached(
            ("osu-lat", nbytes), lambda fab: self._base_latency(fab, nbytes)
        )
        return self._noisy(ctx, t) * 1e6

    def bandwidth_mbps(self, ctx: RunContext, nbytes: int) -> float:
        """Streaming bandwidth in MB/s with a 64-message window."""
        rate = ctx.comm.cached(
            ("osu-bw", nbytes), lambda fab: self._base_bandwidth(fab, nbytes)
        )
        return self._noisy(ctx, rate) / 1e6

    def allreduce_us(self, ctx: RunContext, nbytes: int) -> float:
        """Average allreduce latency across the full rank set.

        CycleCloud's tuned transport is ``UCX_TLS=ud,shm,rc`` (§3.1);
        the unreliable-datagram path retransmits under fabric load,
        which shows up as the highest within-run AllReduce variation in
        Figure 5 — modelled as extra run-to-run noise.
        """
        t = ctx.comm.allreduce(nbytes, ctx.ranks) * ctx.straggler()
        cv = 0.35 if "cyclecloud" in ctx.env.env_id else None
        return self._noisy(ctx, t, cv=cv) * 1e6

    # -- AppModel ------------------------------------------------------------------

    def simulate(self, ctx: RunContext) -> AppResult:
        lat = {s: self.latency_us(ctx, s) for s in MESSAGE_SIZES}
        bw = {s: self.bandwidth_mbps(ctx, s) for s in MESSAGE_SIZES}
        ar = {s: self.allreduce_us(ctx, s) for s in MESSAGE_SIZES}
        wall = sum(v * 1e-6 * 1000 for v in lat.values())  # 1000 reps each
        return self._result(
            ctx,
            fom=lat[8],  # headline: small-message latency
            wall=wall,
            phases={"sweep": wall},
            extra={"latency_us": lat, "bandwidth_mbps": bw, "allreduce_us": ar},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native sweep: all 3 × 23 noise draws gathered as one row
        per iteration (latency sizes, then bandwidth, then allreduce —
        the scalar path's exact draw order)."""
        sizes = MESSAGE_SIZES
        k = len(sizes)
        lat_base = np.array(
            [
                ctx.comm.cached(("osu-lat", s), lambda fab, s=s: self._base_latency(fab, s))
                for s in sizes
            ]
        )
        bw_base = np.array(
            [
                ctx.comm.cached(("osu-bw", s), lambda fab, s=s: self._base_bandwidth(fab, s))
                for s in sizes
            ]
        )
        strag = ctx.straggler()
        ar_base = np.array([ctx.comm.allreduce(s, ctx.ranks) * strag for s in sizes])

        cv = ctx.fabric.jitter_cv
        ar_cv = 0.35 if "cyclecloud" in ctx.env.env_id else cv
        cvs = np.concatenate([np.full(2 * k, cv), np.full(k, ar_cv)])
        factors = self._noisy_factors(ctx, block, cvs)  # (n, 3k)

        lat = lat_base * factors[:, :k] * 1e6
        bw = bw_base * factors[:, k : 2 * k] / 1e6
        ar = ar_base * factors[:, 2 * k :] * 1e6
        wall = 0
        for col in range(k):  # scalar path's sequential sum over sizes
            wall = wall + lat[:, col] * 1e-6 * 1000
        return AppBlockResult(
            app=self.name,
            fom=lat[:, sizes.index(8)].copy(),
            fom_units=self.fom_units,
            wall=wall,
            phases={"sweep": wall},
            extra={
                "latency_us": {s: lat[:, i] for i, s in enumerate(sizes)},
                "bandwidth_mbps": {s: bw[:, i] for i, s in enumerate(sizes)},
                "allreduce_us": {s: ar[:, i] for i, s in enumerate(sizes)},
            },
        )

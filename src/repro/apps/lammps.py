"""LAMMPS ReaxFF: reactive molecular dynamics, strong scaled.

§2.8: problem 64×64×32 (GPU) and 64×64×32... CPU uses 64x64x32 and GPU
64x32x32 replications of the HNS cell; FOM is millions of atom-steps
per second (larger is better).

Findings reproduced (Figure 4, §3.3):

* On-premises clusters A and B produced larger FOMs than cloud.
* GKE CPU shows an inflection between 128 and 256 nodes where strong
  scaling stops (fewer cores per node meet rising collective costs).
* GPU runs were impossible on ParallelCluster (environment undeployable)
  and at the largest EKS size (GPU quota; handled by the study runner).
* AKS CPU at size 256 ran once because hookup took 8.82 minutes (the
  hookup model supplies this; the study runner cuts iterations).

Model: pairwise force computation is compute-class work per atom; the
ReaxFF charge-equilibration (QEq) solve adds ~30 latency-bound
allreduces per step, plus neighbour halo exchange.
"""

from __future__ import annotations

from repro.apps.base import (
    AppBlockResult,
    AppModel,
    AppResult,
    RunContext,
    strong_scaling_efficiency,
)
from repro.machine.rates import KernelClass

#: atom counts for the two replications (HNS cell contents scaled)
ATOMS_CPU = 2.6e6  # 64 x 64 x 32
ATOMS_GPU = 1.3e6  # 64 x 32 x 32
N_STEPS = 100
#: effective flops per atom per step (ReaxFF force + neighbor + QEq)
FLOPS_PER_ATOM = 1.0e6
#: QEq CG iterations x 2 allreduces per step
ALLREDUCES_PER_STEP = 30
#: per-rank atom count where force kernels reach half efficiency
HALF_ATOMS = 50.0


class LAMMPS(AppModel):
    name = "lammps"
    display_name = "LAMMPS (ReaxFF)"
    fom_name = "Matom-steps/s"
    fom_units = "million atom-steps / s"
    higher_is_better = True
    scaling = "strong"

    def _base(self, ctx: RunContext):
        def _compute():
            # Everything before the noise draw is pure in the group
            # coordinates, so a batched group computes it once.
            atoms = ATOMS_GPU if ctx.env.is_gpu else ATOMS_CPU
            atoms_per_rank = atoms / ctx.ranks

            eff = strong_scaling_efficiency(atoms_per_rank, HALF_ATOMS)
            kernel = KernelClass.LATENCY  # branchy force loops, not dense flops
            work_gflops = atoms * FLOPS_PER_ATOM / 1e9
            t_compute = ctx.compute_time(work_gflops, kernel) / max(eff, 1e-6)

            strag = ctx.straggler()
            t_qeq = (
                ALLREDUCES_PER_STEP * ctx.comm.allreduce(8 * 1024, ctx.ranks) * strag
            )
            # Neighbour halo: skin of ~6% of per-rank atoms, 26 neighbours
            halo_bytes = int(max(atoms_per_rank, 1) * 0.06 * 48)
            t_halo = ctx.comm.halo(halo_bytes, neighbors=6)
            return atoms, atoms_per_rank, t_compute, t_qeq, t_halo

        return ctx.once(("lammps-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        atoms, atoms_per_rank, t_compute, t_qeq, t_halo = self._base(ctx)
        step_time = self._noisy(ctx, t_compute + t_qeq + t_halo)
        wall = N_STEPS * step_time
        fom = atoms * N_STEPS / wall / 1e6
        return self._result(
            ctx,
            fom=fom,
            wall=wall,
            phases={
                "force": N_STEPS * t_compute,
                "qeq": N_STEPS * t_qeq,
                "halo": N_STEPS * t_halo,
            },
            extra={"atoms": atoms, "atoms_per_rank": atoms_per_rank},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path: one noise gather, then elementwise physics."""
        atoms, atoms_per_rank, t_compute, t_qeq, t_halo = self._base(ctx)
        step_time = (t_compute + t_qeq + t_halo) * self._noisy_factors(ctx, block)
        wall = N_STEPS * step_time
        fom = atoms * N_STEPS / wall / 1e6
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            phases={
                "force": N_STEPS * t_compute,
                "qeq": N_STEPS * t_qeq,
                "halo": N_STEPS * t_halo,
            },
            extra={"atoms": atoms, "atoms_per_rank": atoms_per_rank},
        )

"""Application-model framework.

An :class:`AppModel` turns a :class:`RunContext` (environment, scale,
effective fabric, node model, RNG) into an :class:`AppResult` (FOM,
phase timings, failure state).  The performance decomposition is::

    wall = setup + n_iters * (t_compute + t_comm)

with compute from the machine model and communication from the
collective cost models.  Two shared effects live here because every
latency-sensitive app needs them:

``straggler_factor``
    Collectives complete when the *slowest* rank arrives.  OS noise and
    shared-tenancy jitter make the expected maximum over ``p`` ranks
    grow with ``jitter_cv * log2(p)`` (extreme-value scaling of
    per-message delays).  Dedicated OS-bypass fabrics (jitter_cv ≈ 0.03)
    barely feel this; kernel-path cloud networking (0.10–0.18) pays an
    order of magnitude at thousands of ranks.  This is the mechanism
    behind the paper's observation that latency-bound apps (Laghos,
    MiniFE) collapse on cloud while surviving on-prem.

``strong_scaling_efficiency``
    When the per-rank working set shrinks below a kernel's efficient
    size, vectorisation and cache reuse die; modelled as
    ``w / (w + w_half)`` (the classic n_1/2 curve).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.envs.environment import Environment
from repro.machine.node import NodeModel
from repro.machine.rates import KernelClass
from repro.network.collectives import CollectiveModel
from repro.network.fabric import Fabric

#: Weight of the jitter term in the straggler factor (calibrated so EFA
#: at ~3k ranks pays ~10x while Omni-Path pays ~4x, matching the
#: on-prem/cloud FOM gaps of Figures 3 and 6).
STRAGGLER_WEIGHT = 8.0

#: Reference frequency per architecture at which ARCH_RATES were
#: calibrated; clock-sensitive kernels scale with nominal_ghz / ref.
REF_GHZ = {
    "sapphire_rapids": 2.9,
    "milan": 3.125,  # EPYC 7R13 as shipped on Hpc6a
    "power9": 2.9,
    "skylake": 2.8,
    "haswell": 2.3,
}


def straggler_factor(fabric: Fabric, ranks: int) -> float:
    """Expected slowdown of a latency-bound collective from jitter."""
    if ranks < 2:
        return 1.0
    return 1.0 + STRAGGLER_WEIGHT * fabric.jitter_cv * math.log2(ranks)


def strong_scaling_efficiency(work_per_rank: float, half_work: float) -> float:
    """Fraction of peak sustained when per-rank work shrinks (n_1/2)."""
    if work_per_rank <= 0:
        return 0.0
    return work_per_rank / (work_per_rank + half_work)


@dataclass
class RunContext:
    """Everything an app model may consult for one run."""

    env: Environment
    scale: int  # nodes (CPU) or GPUs (GPU environments)
    nodes: int
    ranks: int
    node_model: NodeModel
    fabric: Fabric  # effective fabric after topology degradation
    rng: np.random.Generator
    iteration: int = 0
    #: app-specific options (e.g. AMG process topology "-P 8 4 2")
    options: dict[str, Any] = field(default_factory=dict)
    #: shared memoized collective model; a batched group
    #: (:meth:`ExecutionEngine.run_batch`) passes one model to every
    #: iteration's context so distinct collectives price once per group
    comm_model: CollectiveModel | None = field(default=None, repr=False, compare=False)
    #: group-scoped memo for :meth:`once`; a batched group shares one
    #: dict across its iterations, a standalone context gets its own
    group_memo: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def comm(self) -> CollectiveModel:
        if self.comm_model is None:
            self.comm_model = CollectiveModel(self.fabric)
        return self.comm_model

    def once(self, key: tuple, fn):
        """Compute a group-deterministic value once per batched group.

        ``fn`` must be pure in the group coordinates (env, app, scale,
        options) — in particular it must never touch :attr:`rng`, which
        is per-iteration.  Outside a batch the memo is per-context, so
        values (and rng call patterns) are identical either way.
        """
        value = self.group_memo.get(key)
        if value is None:
            value = self.group_memo[key] = fn()
        return value

    def straggler(self) -> float:
        return straggler_factor(self.fabric, self.ranks)

    # -- rates ------------------------------------------------------------------

    def node_rate_gflops(self, kernel_class: KernelClass) -> float:
        """Effective per-node rate including frequency and env derates."""
        env = self.env
        if env.is_gpu:
            rate = self.node_model.gpu_rate_gflops(kernel_class)
            return rate * env.compute_efficiency * env.gpu_efficiency
        rate = self.node_model.cpu_rate_gflops(kernel_class)
        if kernel_class is not KernelClass.MEMORY:
            proc = env.instance().processor
            rate *= proc.nominal_ghz / REF_GHZ.get(proc.arch, proc.nominal_ghz)
        return rate * env.compute_efficiency

    def cluster_rate_gflops(self, kernel_class: KernelClass) -> float:
        return self.nodes * self.node_rate_gflops(kernel_class)

    def compute_time(self, gflops: float, kernel_class: KernelClass) -> float:
        """Seconds for the whole allocation to do ``gflops`` of work."""
        if gflops < 0:
            raise ValueError("work must be non-negative")
        return gflops / self.cluster_rate_gflops(kernel_class)


@dataclass
class AppBlockResult:
    """Columnar outcome of every iteration of one batched group.

    Parallel arrays over the block's iterations; scalar fields mean
    "the same for every iteration" (the common case — ported apps fail
    uniformly per group, never per iteration).

    * ``fom`` — float column, NaN where the scalar path yields ``None``;
    * ``wall`` — wall seconds per iteration;
    * ``failed`` — bool column, or ``None`` when no iteration failed;
    * ``failure_kind`` — one kind shared by every failed iteration (or
      a per-iteration list from the fallback path);
    * ``phases`` / ``extra`` — either one dict shared by every
      iteration (group-constant payloads), a dict whose array leaves
      hold per-iteration values (materialized lazily by the store), or
      an explicit per-iteration list.
    """

    app: str
    fom: np.ndarray
    fom_units: str
    wall: np.ndarray
    failed: np.ndarray | None = None
    failure_kind: str | list | None = None
    phases: dict | list = field(default_factory=dict)
    extra: dict | list = field(default_factory=dict)


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    fom: float | None
    fom_units: str
    wall_seconds: float
    phases: dict[str, float] = field(default_factory=dict)
    failed: bool = False
    failure_kind: str | None = None  # "segfault" | "misconfiguration" | ...
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed and self.fom is not None


class AppModel(abc.ABC):
    """One study application."""

    #: registry key, matching the container recipe name
    name: str = ""
    display_name: str = ""
    fom_name: str = ""
    fom_units: str = ""
    higher_is_better: bool = True
    scaling: str = "strong"  # or "weak"
    supports_cpu: bool = True
    supports_gpu: bool = True
    #: populated when a platform is unsupported, mirroring the paper
    unsupported_reason: dict[str, str] = {}

    def supports(self, accelerator: str) -> bool:
        return self.supports_gpu if accelerator == "gpu" else self.supports_cpu

    @abc.abstractmethod
    def simulate(self, ctx: RunContext) -> AppResult:
        """Produce the run outcome for one (environment, scale) point."""

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Columnar outcome for a whole batched group at once.

        ``ctx`` is the group's shared context (its ``rng``/``iteration``
        are ignored here — per-iteration randomness comes from
        ``block``, a :class:`~repro.rng.StreamBlock` whose stream ``j``
        is iteration ``block.iterations[j]``'s keyed stream).  Ported
        apps override this with array math over the gathered draws; the
        base implementation is the reference fallback — it replays
        :meth:`simulate` per iteration through the block's streams, so
        any app is block-callable and bit-identical either way.
        """
        n = len(block)
        fom = np.empty(n, dtype=np.float64)
        wall = np.empty(n, dtype=np.float64)
        failed = np.zeros(n, dtype=bool)
        kinds: list[str | None] = []
        phases: list[dict] = []
        extra: list[dict] = []
        for j, iteration in enumerate(block.iterations):
            ctx.rng = block.generator(j)
            ctx.iteration = int(iteration)
            result = self.simulate(ctx)
            fom[j] = np.nan if result.fom is None else result.fom
            wall[j] = result.wall_seconds
            failed[j] = result.failed
            kinds.append(result.failure_kind)
            phases.append(result.phases)
            extra.append(result.extra)
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            failed=failed if failed.any() else None,
            failure_kind=kinds,
            phases=phases,
            extra=extra,
        )

    # -- helpers ----------------------------------------------------------------

    def _noisy(self, ctx: RunContext, value: float, cv: float | None = None) -> float:
        """Apply run-to-run noise scaled to the fabric's jitter."""
        cv = cv if cv is not None else ctx.fabric.jitter_cv
        return value * float(max(0.1, ctx.rng.normal(1.0, cv)))

    def _noisy_factors(
        self, ctx: RunContext, block, cv: float | None = None
    ) -> np.ndarray:
        """Vectorized :meth:`_noisy` noise factors, one per iteration.

        ``cv`` may be a scalar (shape ``(n,)``) or a sequence of ``k``
        per-draw coefficients (shape ``(n, k)``, matching ``k``
        sequential :meth:`_noisy` calls per iteration).
        """
        if cv is None:
            cv = ctx.fabric.jitter_cv
        return np.maximum(0.1, block.normal(1.0, cv))

    def _block_failure(self, block, *, wall: float, failure_kind: str, extra: dict) -> AppBlockResult:
        """Every iteration fails identically (the paper's per-group
        failure modes: unreported results, misconfigurations)."""
        n = len(block)
        return AppBlockResult(
            app=self.name,
            fom=np.full(n, np.nan),
            fom_units=self.fom_units,
            wall=np.full(n, wall),
            failed=np.ones(n, dtype=bool),
            failure_kind=failure_kind,
            phases={},
            extra=extra,
        )

    def _result(
        self,
        ctx: RunContext,
        *,
        fom: float | None,
        wall: float,
        phases: dict[str, float] | None = None,
        failed: bool = False,
        failure_kind: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> AppResult:
        return AppResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall_seconds=wall,
            phases=phases or {},
            failed=failed,
            failure_kind=failure_kind,
            extra=extra or {},
        )

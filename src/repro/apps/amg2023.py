"""AMG2023: algebraic multigrid solver (hypre BoomerAMG), weak scaled.

§2.8: problem 2 at 256×256×128 per process-unit; FOM::

    FOM = nnz_AP / (SetupPhaseTime + 3 * SolvePhaseTime)

Higher is better.  Weak scaling: total nnz grows with units while phase
times stay near-constant, so a well-scaling environment shows FOM
growing almost linearly with size.

Model: setup and solve phases are memory-bandwidth-bound on the unit
(CPU node or GPU).  Per V-cycle communication walks the level
hierarchy: fine levels exchange halos, coarse levels degenerate into
latency-bound small collectives (the classic AMG coarse-grid problem),
which is where fabric latency and jitter separate the environments.

The ``-P`` process-topology option (§3.3): ``-P 8 4 2`` yields ~10%
higher FOM than ``-P 4 4 4`` because the 8×4×2 box matches the per-node
rank layout, keeping more halo faces intra-node; pass
``options={"process_topology": (8, 4, 2)}``.
"""

from __future__ import annotations

import math

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.machine.rates import KernelClass

#: per-unit grid (256 x 256 x 128 points)
POINTS_PER_UNIT = 256 * 256 * 128
#: nonzeros per point across the AMG hierarchy (27-pt fine stencil with
#: the usual ~4/3 hierarchy growth)
NNZ_PER_POINT = 36.0
#: flops per point, setup phase (coarsening, interpolation, RAP); sized
#: so a weak-scaled CPU run takes ~1 minute per iteration, matching the
#: node-hour totals behind Table 4
SETUP_FLOPS_PER_POINT = 24_000.0
#: flops per point per V-cycle (smoothing + residual + transfers)
CYCLE_FLOPS_PER_POINT = 3_200.0
N_CYCLES = 20

#: FOM multiplier for the tuned process topology (§3.3: ~10%)
TOPOLOGY_BONUS = {(8, 4, 2): 1.0, (4, 4, 4): 1.0 / 1.10}

#: Per-environment solver-efficiency calibration.  Cluster B's bare-metal
#: Spack hypre build (2018 software stack, no CUDA-aware MPI across its
#: fabric — §2.7/§2.8) sustains a much lower fraction of V100 bandwidth
#: than the cloud containers' tuned stacks; calibrated to Figure 2's
#: "cluster B produced some of the lowest FOMs across sizes".
ENV_SOLVER_EFFICIENCY = {"gpu-onprem-b": 0.23}


class AMG2023(AppModel):
    name = "amg2023"
    display_name = "AMG2023"
    fom_name = "FOM"
    fom_units = "nnz_AP / s"
    higher_is_better = True
    scaling = "weak"

    def _base(self, ctx: RunContext):
        def _compute():
            units = ctx.scale if ctx.env.is_gpu else ctx.nodes
            points = POINTS_PER_UNIT * units
            nnz_ap = NNZ_PER_POINT * points

            # Compute phases: memory-bandwidth bound on the executing device.
            setup_flops = points * SETUP_FLOPS_PER_POINT / 1e9
            cycle_flops = points * CYCLE_FLOPS_PER_POINT / 1e9
            solver_eff = ENV_SOLVER_EFFICIENCY.get(ctx.env.env_id, 1.0)
            t_setup_compute = (
                ctx.compute_time(setup_flops, KernelClass.MEMORY) / solver_eff
            )
            t_cycle_compute = (
                ctx.compute_time(cycle_flops, KernelClass.MEMORY) / solver_eff
            )

            # Communication per V-cycle over the level hierarchy.
            levels = max(
                4, int(math.log2(max(points, 2)) / 3) + int(math.log2(max(units, 2)))
            )
            face_bytes = 256 * 128 * 8  # one fine-level face of doubles
            strag = ctx.straggler()
            comm_cycle = 0.0
            for lvl in range(levels):
                shrink = 2**lvl
                halo = ctx.comm.halo(max(face_bytes // shrink, 64), neighbors=6)
                # Coarse-grid convergence check: tiny allreduce, jitter-bound.
                ar = ctx.comm.allreduce(8, ctx.ranks) * strag
                comm_cycle += halo + ar
            # Setup-phase comm: coarsening handshakes, ~3 cycles' worth.
            return (
                units, nnz_ap, t_setup_compute, t_cycle_compute,
                comm_cycle, 3.0 * comm_cycle,
            )

        return ctx.once(("amg-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        (
            units, nnz_ap, t_setup_compute, t_cycle_compute, comm_cycle, t_setup_comm,
        ) = self._base(ctx)

        t_setup = self._noisy(ctx, t_setup_compute + t_setup_comm)
        t_solve = self._noisy(ctx, N_CYCLES * (t_cycle_compute + comm_cycle))

        topo = tuple(ctx.options.get("process_topology", (8, 4, 2)))
        bonus = TOPOLOGY_BONUS.get(topo, 1.0)

        fom = bonus * nnz_ap / (t_setup + 3.0 * t_solve)
        wall = t_setup + t_solve
        return self._result(
            ctx,
            fom=fom,
            wall=wall,
            phases={"setup": t_setup, "solve": t_solve},
            extra={"nnz_AP": nnz_ap, "units": units, "process_topology": topo},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path: both noise draws gathered as one row."""
        (
            units, nnz_ap, t_setup_compute, t_cycle_compute, comm_cycle, t_setup_comm,
        ) = self._base(ctx)

        cv = ctx.fabric.jitter_cv
        factors = self._noisy_factors(ctx, block, (cv, cv))
        t_setup = (t_setup_compute + t_setup_comm) * factors[:, 0]
        t_solve = (N_CYCLES * (t_cycle_compute + comm_cycle)) * factors[:, 1]

        topo = tuple(ctx.options.get("process_topology", (8, 4, 2)))
        bonus = TOPOLOGY_BONUS.get(topo, 1.0)

        fom = bonus * nnz_ap / (t_setup + 3.0 * t_solve)
        wall = t_setup + t_solve
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            phases={"setup": t_setup, "solve": t_solve},
            extra={"nnz_AP": nnz_ap, "units": units, "process_topology": topo},
        )

"""Quicksilver: Monte Carlo particle transport (§2.8, Figure 8).

FOM: number of segments over cycle tracking time (higher is better).

Findings reproduced:

* CPU: AWS setups highest, followed by Azure (clock-rate-driven —
  Hpc6a's 3.6 GHz Milan vs HB96's lower sustained clocks; Google's
  56-core nodes trail).
* GPU: runs did not finish within the budgeted time; half the processes
  were pinned to GPU 0 (an erroneous build or runtime misconfiguration)
  — GPU runs return a timeout-flavoured failure.

The tracking kernel is implemented for real in
:mod:`repro.machine.kernels.mc`; this model uses the same
segments-per-particle accounting.
"""

from __future__ import annotations

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.machine.rates import KernelClass

#: particles per rank (weak deposition, like the Quicksilver defaults)
PARTICLES_PER_RANK = 40_000
#: average segments each particle generates per cycle
SEGMENTS_PER_PARTICLE = 9.0
N_CYCLES = 10
#: flops-equivalent per segment (cross-section lookups, RNG, tallies)
FLOPS_PER_SEGMENT = 4_000.0


class Quicksilver(AppModel):
    name = "quicksilver"
    display_name = "Quicksilver"
    fom_name = "Segments / cycle tracking time"
    fom_units = "segments/s"
    higher_is_better = True
    scaling = "weak"

    #: §3.3: poor GPU utilisation, half of processes pinned to GPU 0;
    #: runs did not finish in the allocated time.
    _GPU_FAILURE = {
        "failure_kind": "misconfiguration",
        "extra": {"detail": "half of ranks pinned to GPU 0; run exceeded budget"},
    }

    def _base(self, ctx: RunContext):
        def _compute():
            particles = PARTICLES_PER_RANK * ctx.ranks
            segments = particles * SEGMENTS_PER_PARTICLE
            work_gflops = segments * FLOPS_PER_SEGMENT / 1e9
            t_track = ctx.compute_time(work_gflops, KernelClass.LATENCY)

            # Particle migration between domain neighbours + tally reduction.
            migration_bytes = int(PARTICLES_PER_RANK * 0.05 * 64)
            t_comm = (
                ctx.comm.halo(migration_bytes, neighbors=6)
                + ctx.comm.allreduce(64 * 8, ctx.ranks) * ctx.straggler()
            )
            return particles, segments, t_track, t_comm

        return ctx.once(("qs-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        if ctx.env.is_gpu:
            return self._result(
                ctx, fom=None, wall=1200.0, failed=True, **self._GPU_FAILURE
            )

        particles, segments, t_track, t_comm = self._base(ctx)
        cycle_time = self._noisy(ctx, t_track + t_comm)
        wall = N_CYCLES * cycle_time
        fom = segments / cycle_time
        return self._result(
            ctx,
            fom=fom,
            wall=wall,
            phases={"tracking": N_CYCLES * t_track, "comm": N_CYCLES * t_comm},
            extra={"particles": particles, "segments_per_cycle": segments},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path; GPU groups fail uniformly without a draw."""
        if ctx.env.is_gpu:
            return self._block_failure(block, wall=1200.0, **self._GPU_FAILURE)

        particles, segments, t_track, t_comm = self._base(ctx)
        cycle_time = (t_track + t_comm) * self._noisy_factors(ctx, block)
        wall = N_CYCLES * cycle_time
        fom = segments / cycle_time
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            phases={"tracking": N_CYCLES * t_track, "comm": N_CYCLES * t_comm},
            extra={"particles": particles, "segments_per_cycle": segments},
        )

"""Stream Triad: memory bandwidth (§2.8, §3.3).

Two configurations, as in the study:

* **CPU, single-node run on every node** — reported as the aggregate
  GB/s across the cluster.  §3.3 reports (64-node clusters): GKE
  6800.9 ± 2402.3, Compute Engine 6239.4 ± 2326.1, EKS 3013.2 ± 880.3,
  AKS 2579.5 ± 907.6 — per-node rates far below nominal and wildly
  varied, which the environment's ``stream_efficiency`` captures.
* **GPU, across nodes** — per-GPU Triad GB/s.  All V100 environments
  land near 783 GB/s (ECC on) with Azure's slightly lower at ~748.

The kernel itself is implemented and measured for real in
:mod:`repro.machine.kernels.triad`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext

#: coefficient of variation of per-node CPU triad in cloud (§3.3: ~35%)
CPU_TRIAD_CV = 0.35
GPU_TRIAD_CV = 0.005


class Stream(AppModel):
    name = "stream"
    display_name = "STREAM Triad"
    fom_name = "Triad bandwidth"
    fom_units = "GB/s"
    higher_is_better = True
    scaling = "weak"

    def simulate(self, ctx: RunContext) -> AppResult:
        env = ctx.env
        if env.is_gpu:
            gpu = ctx.node_model.gpu_model
            assert gpu is not None
            # Reported Triad figures are for the ECC-on majority of the
            # fleet (the ECC survey handles the mixed-Azure story).
            per_gpu = gpu.with_ecc(True).effective_mem_bw() * env.stream_efficiency
            value = self._noisy(ctx, per_gpu, cv=GPU_TRIAD_CV)
            extra = {"per_gpu_gbs": value, "ecc_on": gpu.ecc_on}
            fom = value
        else:
            nominal = ctx.node_model.mem_bw_gbs
            # Sample every node; aggregate is the reported figure.
            per_node = nominal * env.stream_efficiency
            samples = per_node * ctx.rng.normal(1.0, CPU_TRIAD_CV, size=ctx.nodes)
            samples = samples.clip(min=per_node * 0.1)
            fom = float(samples.sum())
            extra = {
                "per_node_mean_gbs": float(samples.mean()),
                "per_node_std_gbs": float(samples.std()),
                "aggregate_gbs": fom,
            }
        wall = 30.0  # fixed benchmark duration
        return self._result(ctx, fom=fom, wall=wall, phases={"triad": wall}, extra=extra)

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path: the per-node sample matrix in one gather.

        Row reductions run on 1-D row views so every aggregate is the
        same pairwise-summation result the scalar path computes.
        """
        env = ctx.env
        n = len(block)
        if env.is_gpu:
            gpu = ctx.node_model.gpu_model
            assert gpu is not None
            per_gpu = ctx.once(
                ("stream-gpu-base",),
                lambda: gpu.with_ecc(True).effective_mem_bw() * env.stream_efficiency,
            )
            fom = per_gpu * self._noisy_factors(ctx, block, cv=GPU_TRIAD_CV)
            extra: dict | list = {
                "per_gpu_gbs": fom,
                "ecc_on": gpu.ecc_on,
            }
        else:
            nominal = ctx.node_model.mem_bw_gbs
            per_node = nominal * env.stream_efficiency
            draws = block.normal(1.0, np.full(ctx.nodes, CPU_TRIAD_CV))
            samples = (per_node * draws).clip(min=per_node * 0.1)
            fom = np.empty(n)
            extra = []
            for j in range(n):
                row = samples[j]
                fom[j] = row.sum()
                extra.append(
                    {
                        "per_node_mean_gbs": float(row.mean()),
                        "per_node_std_gbs": float(row.std()),
                        "aggregate_gbs": float(fom[j]),
                    }
                )
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=np.full(n, 30.0),
            phases={"triad": 30.0},
            extra=extra,
        )

"""MT-GEMM: dense matrix multiplication proxies.

§2.8: the GPU variant comes from the NERSC proxy suite (MT-xGEMM); the
CPU variant is the PRACE hpc-kernels MPI implementation.  They are
*different programs*, and the paper's results reflect that (§3.3 /
Figure 7):

* **GPU** strong-scales well, with Compute Engine, AKS, and GKE showing
  similar performance.  MT-xGEMM keeps each GPU busy on its local block
  and only exchanges B panels with neighbours, so the V100 dominates
  and the fabric barely matters.
* **CPU** results were omitted from the paper: the PRACE kernel
  hard-codes the global problem size and gathers the full A matrix
  around a ring each multiply; the per-rank block is tiny even at 32
  nodes, every environment is communication-bound from the start, and
  GFLOPs *decrease* at each larger node count.  We implement it anyway
  and the model shows exactly that decline (the Figure 7 bench reports
  GPU only, like the paper).
"""

from __future__ import annotations

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.machine.rates import KernelClass

#: hard-coded global sizes (square matrices)
N_GPU = 32768
N_CPU = 4096
REPS = 10


class MTGemm(AppModel):
    name = "mt-gemm"
    display_name = "MT-GEMM"
    fom_name = "GFLOP/s"
    fom_units = "GFLOP/s"
    higher_is_better = True
    scaling = "strong"

    def _gpu_rep(self, ctx: RunContext) -> tuple[float, float]:
        """(compute, comm) per repetition for the NERSC GPU kernel."""
        flops = 2.0 * float(N_GPU) ** 3
        t_compute = ctx.compute_time(flops / 1e9, KernelClass.COMPUTE)
        # Neighbour exchange of the B panel this rank needs next.
        panel_bytes = int(N_GPU * N_GPU * 8 / max(ctx.ranks, 1))
        t_comm = ctx.comm.p2p(panel_bytes) + ctx.comm.allreduce(64, ctx.ranks)
        return t_compute, t_comm

    def _cpu_rep(self, ctx: RunContext) -> tuple[float, float]:
        """(compute, comm) per repetition for the PRACE ring kernel."""
        flops = 2.0 * float(N_CPU) ** 3
        t_compute = ctx.compute_time(flops / 1e9, KernelClass.COMPUTE)
        # Full-A ring allgather: every rank receives n^2 doubles per
        # multiply, paying one latency per ring step — (p-1) steps.
        t_comm = ctx.comm.allgather(N_CPU * N_CPU * 8, ctx.ranks)
        return t_compute, t_comm

    def simulate(self, ctx: RunContext) -> AppResult:
        n = N_GPU if ctx.env.is_gpu else N_CPU
        t_compute, t_comm = ctx.once(
            ("mtgemm-base",),
            lambda: self._gpu_rep(ctx) if ctx.env.is_gpu else self._cpu_rep(ctx),
        )
        # Dense GEMM throughput is very stable run-to-run; noise is far
        # below the fabric's small-message jitter.
        per_rep = self._noisy(ctx, t_compute + t_comm, cv=0.05)
        wall = REPS * per_rep
        fom = (2.0 * float(n) ** 3 / 1e9) / per_rep
        return self._result(
            ctx,
            fom=fom,
            wall=wall,
            phases={"gemm": REPS * t_compute, "comm": REPS * t_comm},
            extra={"n": n},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path: one stable-noise gather, elementwise FOM."""
        n = N_GPU if ctx.env.is_gpu else N_CPU
        t_compute, t_comm = ctx.once(
            ("mtgemm-base",),
            lambda: self._gpu_rep(ctx) if ctx.env.is_gpu else self._cpu_rep(ctx),
        )
        per_rep = (t_compute + t_comm) * self._noisy_factors(ctx, block, cv=0.05)
        wall = REPS * per_rep
        fom = (2.0 * float(n) ** 3 / 1e9) / per_rep
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            phases={"gemm": REPS * t_compute, "comm": REPS * t_comm},
            extra={"n": n},
        )

"""MiniFE: implicit finite-element CG solve, strong scaled.

§2.8: FOM is Total CG Mflops (higher is better).  Figure 6 findings
reproduced:

* inconsistent and *inverse* scaling across cloud environments — the
  fixed-size CG problem is allreduce-bound at study scales, so adding
  nodes adds latency faster than it adds bandwidth;
* AKS best for GPU and for size-32 CPU (InfiniBand's low latency wins
  an allreduce-dominated code);
* on-premises results unavailable ("partial output was saved and we
  are not able to report the result") — on-prem runs return a failure.

The numerical core this models is implemented for real in
:mod:`repro.machine.kernels.cg`; the flop count here follows the same
2*nnz + 10n accounting.
"""

from __future__ import annotations

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.machine.rates import KernelClass

#: global problem: 120^3 rows, 27-point stencil — small enough that the
#: per-iteration allreduces dominate at study scales, which is what makes
#: Figure 6's scaling inverse
N_ROWS = 120**3
NNZ = 27 * N_ROWS
N_ITERATIONS = 200
FLOPS_PER_ITER = 2.0 * NNZ + 10.0 * N_ROWS


class MiniFE(AppModel):
    name = "minife"
    display_name = "MiniFE"
    fom_name = "Total CG Mflops"
    fom_units = "Mflop/s"
    higher_is_better = True
    scaling = "strong"

    #: §3.3: partial output only; result not reportable.
    _ONPREM_FAILURE = {
        "failure_kind": "partial-output",
        "extra": {"detail": "on-prem runs saved partial output only"},
    }

    def _base(self, ctx: RunContext):
        def _compute():
            work_gflops = FLOPS_PER_ITER / 1e9
            t_compute = ctx.compute_time(work_gflops, KernelClass.MEMORY)

            # CG: 2 dot-product allreduces per iteration, straggler-bound,
            # plus a 6-face halo for the matvec.
            strag = ctx.straggler()
            t_allreduce = 2.0 * ctx.comm.allreduce(8, ctx.ranks) * strag
            rows_per_rank = N_ROWS / ctx.ranks
            face_bytes = int(max(rows_per_rank, 1) ** (2.0 / 3.0) * 8)
            t_halo = ctx.comm.halo(face_bytes, neighbors=6)
            return t_compute, t_allreduce, t_halo

        return ctx.once(("minife-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        if ctx.env.cloud == "p":
            return self._result(
                ctx, fom=None, wall=0.0, failed=True, **self._ONPREM_FAILURE
            )

        t_compute, t_allreduce, t_halo = self._base(ctx)
        per_iter = self._noisy(ctx, t_compute + t_allreduce + t_halo)
        wall = N_ITERATIONS * per_iter
        fom_mflops = (N_ITERATIONS * FLOPS_PER_ITER) / wall / 1e6
        return self._result(
            ctx,
            fom=fom_mflops,
            wall=wall,
            phases={
                "matvec": N_ITERATIONS * t_compute,
                "allreduce": N_ITERATIONS * t_allreduce,
                "halo": N_ITERATIONS * t_halo,
            },
            extra={"rows": N_ROWS, "iterations": N_ITERATIONS},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path; on-prem groups fail uniformly, no draws."""
        if ctx.env.cloud == "p":
            return self._block_failure(block, wall=0.0, **self._ONPREM_FAILURE)

        t_compute, t_allreduce, t_halo = self._base(ctx)
        per_iter = (t_compute + t_allreduce + t_halo) * self._noisy_factors(ctx, block)
        wall = N_ITERATIONS * per_iter
        fom_mflops = (N_ITERATIONS * FLOPS_PER_ITER) / wall / 1e6
        return AppBlockResult(
            app=self.name,
            fom=fom_mflops,
            fom_units=self.fom_units,
            wall=wall,
            phases={
                "matvec": N_ITERATIONS * t_compute,
                "allreduce": N_ITERATIONS * t_allreduce,
                "halo": N_ITERATIONS * t_halo,
            },
            extra={"rows": N_ROWS, "iterations": N_ITERATIONS},
        )

"""Mixbench: single-node GPU roofline sweep (§2.8, §3.3).

Mixbench evaluates a device over a range of operational intensities
(flops per byte), tracing out the roofline between the memory-bound and
compute-bound regimes.  The study ran it single-node to collect basic
GPU attributes — and it surfaced the ECC finding: all clouds except
Azure default ECC *on*; Azure's fleet was mixed (12.5–25% off), and ECC
costs up to 15% of bandwidth.

``roofline`` computes attained GFLOP/s per intensity point from the GPU
model (with its ECC state); the ``ecc_survey`` experiment samples fleet
ECC states via :func:`repro.machine.gpu.sample_ecc_settings`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext

#: operational intensities swept (flops/byte), mixbench-style
INTENSITIES = tuple(float(x) for x in (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128))


class Mixbench(AppModel):
    name = "mixbench"
    display_name = "Mixbench"
    fom_name = "Peak attained"
    fom_units = "GFLOP/s"
    higher_is_better = True
    scaling = "weak"
    supports_cpu = True  # the study also has a CPU variant

    def roofline(self, ctx: RunContext) -> dict[float, float]:
        """Attained GFLOP/s at each operational intensity."""
        if ctx.env.is_gpu:
            gpu = ctx.node_model.gpu_model
            assert gpu is not None
            peak = gpu.fp64_gflops
            bw = gpu.effective_mem_bw()
        else:
            from repro.machine.rates import arch_rates

            rates = arch_rates(ctx.env.instance().processor.arch)
            peak = rates.compute_gflops * ctx.env.instance().cores
            bw = rates.mem_bw_gbs
        return {i: min(peak, i * bw) for i in INTENSITIES}

    def simulate(self, ctx: RunContext) -> AppResult:
        roof = ctx.once(("mixbench-roof",), lambda: self.roofline(ctx))
        attained = {i: self._noisy(ctx, v, cv=0.02) for i, v in roof.items()}
        peak = max(attained.values())
        ecc_on = None
        if ctx.env.is_gpu and ctx.node_model.gpu_model is not None:
            ecc_on = ctx.node_model.gpu_model.ecc_on
        return self._result(
            ctx,
            fom=peak,
            wall=60.0,
            phases={"sweep": 60.0},
            extra={"roofline": attained, "ecc_on": ecc_on},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path: the whole intensity sweep noised at once."""
        roof = ctx.once(("mixbench-roof",), lambda: self.roofline(ctx))
        n = len(block)
        factors = self._noisy_factors(ctx, block, np.full(len(roof), 0.02))
        attained = np.array(list(roof.values())) * factors  # (n, intensities)
        peak = attained.max(axis=1) if n else np.empty(0)
        ecc_on = None
        if ctx.env.is_gpu and ctx.node_model.gpu_model is not None:
            ecc_on = ctx.node_model.gpu_model.ecc_on
        return AppBlockResult(
            app=self.name,
            fom=peak,
            fom_units=self.fom_units,
            wall=np.full(n, 60.0),
            phases={"sweep": 60.0},
            extra={
                "roofline": {i: attained[:, k] for k, i in enumerate(roof)},
                "ecc_on": ecc_on,
            },
        )

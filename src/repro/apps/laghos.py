"""Laghos: high-order Lagrangian hydrodynamics, strong scaled (CPU only).

§2.8: cube_311_hex mesh, partial assembly, max 400 steps; FOM is the
major-kernels total rate (megadofs × time steps / second).

Paper findings this model reproduces (Figure 3, §3.3):

* The on-premises FOM is ~an order of magnitude larger than every cloud
  environment, with a 32→64-node speedup near 1.6 and lower variability.
* Cloud environments only completed sizes 32 and 64; beyond 64 nodes
  slowdown prevented completion within 15–20 minutes (timeout) — "Due
  to the inability to scale, Laghos would be infeasible to run on any
  cloud".
* AWS ParallelCluster never completed Laghos at any size.
* On-prem runs segfaulted at 128 and 256 nodes.
* GPU containers could not be built (two dependencies pinned different
  CUDA versions) — ``supports_gpu = False``; see
  :mod:`repro.containers.recipe`.

Model.  Laghos steps are fine-grained and bulk-synchronous: each step
drives hundreds of small messages (CG iterations on the mass matrix,
constraint exchanges).  Three effects stack against cloud:

* base fabric latency and the straggler factor (jitter × log ranks);
* a *small-message virtualization overhead* — interrupt-moderated
  delivery through virtual NICs adds ~25 µs to every small message once
  the application mixes computation with communication (polling
  microbenchmarks like OSU do not pay this, which is why Figure 5 shows
  low Azure latencies while Figure 3 shows Azure Laghos an order slow);
  this constant is the model's calibrated knob and is documented in
  EXPERIMENTS.md;
* a decomposition cliff beyond 64 nodes, where the inter-node surface
  of the fixed mesh exhausts the rendezvous-protocol resources and
  steps balloon (the paper observed the cliff uniformly across clouds).
"""

from __future__ import annotations

from repro.apps.base import (
    AppBlockResult,
    AppModel,
    AppResult,
    RunContext,
    strong_scaling_efficiency,
)
from repro.machine.rates import KernelClass

#: global degrees of freedom of the cube_311_hex Q2-Q1 discretisation
TOTAL_DOFS = 3.7e6
MAX_STEPS = 400
#: effective flops per dof per step (high-order PA kernels + quadrature)
FLOPS_PER_DOF_STEP = 450.0e3
#: small messages per step (CG iterations x 2 allreduce + halo swaps)
MESSAGES_PER_STEP = 900
#: per-rank dof count where vectorised PA kernels reach half efficiency
HALF_DOFS = 300.0
#: small-message overhead added by hypervisor/virtual-NIC paths (seconds)
CLOUD_SMALL_MSG_OVERHEAD = 25.0e-6
#: node count beyond which the fixed-mesh decomposition collapses
CLIFF_NODES = 64
CLIFF_EXPONENT = 8.0


class Laghos(AppModel):
    name = "laghos"
    display_name = "Laghos"
    fom_name = "Major kernels total rate"
    fom_units = "megadofs x steps / s"
    higher_is_better = True
    scaling = "strong"
    supports_gpu = False
    unsupported_reason = {
        "gpu": "container build failed: mfem requires CUDA 12.2 while hypre "
        "requires CUDA 11.8 (paper §3.3)"
    }

    #: §3.3: on cluster A, 128- and 256-node runs segfaulted.
    _SEGFAULT = {
        "failure_kind": "segfault",
        "extra": {"detail": "segmentation fault at >= 128 nodes on cluster A"},
    }
    #: §3.3: Laghos never completed on AWS ParallelCluster.
    _LAUNCH_FAILURE = {
        "failure_kind": "launch-failure",
        "extra": {"detail": "Laghos did not complete on ParallelCluster"},
    }

    def _group_failure(self, ctx: RunContext) -> dict | None:
        if ctx.env.cloud == "p" and ctx.nodes >= 128:
            return self._SEGFAULT
        if ctx.env.env_id == "cpu-parallelcluster-aws":
            return self._LAUNCH_FAILURE
        return None

    def _base(self, ctx: RunContext):
        def _compute():
            # Compute: strong-scaled with n_1/2 efficiency loss.
            dofs_per_rank = TOTAL_DOFS / ctx.ranks
            eff = strong_scaling_efficiency(dofs_per_rank, HALF_DOFS)
            work_gflops = TOTAL_DOFS * FLOPS_PER_DOF_STEP / 1e9
            t_compute = (
                ctx.compute_time(work_gflops, KernelClass.COMPUTE) / max(eff, 1e-6)
            )

            # Communication: hundreds of small latency-bound messages.
            alpha = ctx.fabric.latency_s + ctx.fabric.overhead_s
            if ctx.env.is_cloud:
                alpha += CLOUD_SMALL_MSG_OVERHEAD
            cliff = 1.0
            if ctx.nodes > CLIFF_NODES:
                cliff = (ctx.nodes / CLIFF_NODES) ** CLIFF_EXPONENT
            t_comm = MESSAGES_PER_STEP * alpha * ctx.straggler() * cliff
            return t_compute, t_comm

        return ctx.once(("laghos-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        failure = self._group_failure(ctx)
        if failure is not None:
            return self._result(ctx, fom=None, wall=0.0, failed=True, **failure)

        dofs_per_rank = TOTAL_DOFS / ctx.ranks
        t_compute, t_comm = self._base(ctx)
        step_time = self._noisy(ctx, t_compute + t_comm)
        wall = MAX_STEPS * step_time
        fom = (TOTAL_DOFS / 1e6) * MAX_STEPS / wall
        return self._result(
            ctx,
            fom=fom,
            wall=wall,
            phases={"compute": MAX_STEPS * t_compute, "comm": MAX_STEPS * t_comm},
            extra={"dofs_per_rank": dofs_per_rank, "steps": MAX_STEPS},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path; the per-group failure modes stay uniform."""
        failure = self._group_failure(ctx)
        if failure is not None:
            return self._block_failure(block, wall=0.0, **failure)

        dofs_per_rank = TOTAL_DOFS / ctx.ranks
        t_compute, t_comm = self._base(ctx)
        step_time = (t_compute + t_comm) * self._noisy_factors(ctx, block)
        wall = MAX_STEPS * step_time
        fom = (TOTAL_DOFS / 1e6) * MAX_STEPS / wall
        return AppBlockResult(
            app=self.name,
            fom=fom,
            fom_units=self.fom_units,
            wall=wall,
            phases={"compute": MAX_STEPS * t_compute, "comm": MAX_STEPS * t_comm},
            extra={"dofs_per_rank": dofs_per_rank, "steps": MAX_STEPS},
        )

"""The study's 11 applications and benchmarks (§2.8).

Each module implements one app as an :class:`~repro.apps.base.AppModel`:
the paper's FOM formula, scaling mode, problem configuration, and a
compute/communication performance model over the machine and fabric
substrates.
"""

from repro.apps.amg2023 import AMG2023
from repro.apps.base import AppModel, AppResult, RunContext, straggler_factor
from repro.apps.kripke import Kripke
from repro.apps.laghos import Laghos
from repro.apps.lammps import LAMMPS
from repro.apps.minife import MiniFE
from repro.apps.mixbench import Mixbench
from repro.apps.mtgemm import MTGemm
from repro.apps.nodebench import SingleNodeBenchmark
from repro.apps.osu import OSUBenchmarks
from repro.apps.quicksilver import Quicksilver
from repro.apps.registry import APPS, app
from repro.apps.stream import Stream

__all__ = [
    "AMG2023",
    "APPS",
    "AppModel",
    "AppResult",
    "Kripke",
    "LAMMPS",
    "Laghos",
    "MTGemm",
    "MiniFE",
    "Mixbench",
    "OSUBenchmarks",
    "Quicksilver",
    "RunContext",
    "SingleNodeBenchmark",
    "Stream",
    "app",
    "straggler_factor",
]

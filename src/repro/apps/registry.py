"""Application registry: the 11 apps of the study."""

from __future__ import annotations

from repro.apps.amg2023 import AMG2023
from repro.apps.base import AppModel
from repro.apps.kripke import Kripke
from repro.apps.laghos import Laghos
from repro.apps.lammps import LAMMPS
from repro.apps.minife import MiniFE
from repro.apps.mixbench import Mixbench
from repro.apps.mtgemm import MTGemm
from repro.apps.nodebench import SingleNodeBenchmark
from repro.apps.osu import OSUBenchmarks
from repro.apps.quicksilver import Quicksilver
from repro.apps.stream import Stream

APPS: dict[str, AppModel] = {
    a.name: a
    for a in (
        AMG2023(),
        Laghos(),
        LAMMPS(),
        Kripke(),
        MiniFE(),
        MTGemm(),
        Mixbench(),
        OSUBenchmarks(),
        Stream(),
        Quicksilver(),
        SingleNodeBenchmark(),
    )
}


def app(name: str) -> AppModel:
    """Look up an application model by registry name."""
    try:
        return APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(APPS)}"
        ) from None

"""Kripke: deterministic (Sn) particle transport, CPU study.

§2.8: FOM is *grind time* — time to complete one unit of work (lower is
better).  §3.3 / Figure 1: AWS ParallelCluster had the lowest grind
time for the largest three sizes, followed by EKS and CycleCloud; GPU
results were not reported due to process→GPU mapping difficulties.

Model: Kripke's KBA sweeps are structured-bandwidth work; per-node rate
differences (clock, core count) dominate, with a wavefront pipeline
fill charging per-stage face exchanges.  That ordering falls out of the
machine model: Hpc6a's 3.6 GHz Milan beats HB96rs_v3's 1.9–3.5 GHz
part, and c2d's 56 cores trail both, exactly Figure 1's ranking.
GPU runs return a failure, mirroring the paper's unreported results.
"""

from __future__ import annotations

from repro.apps.base import AppBlockResult, AppModel, AppResult, RunContext
from repro.machine.rates import KernelClass

#: zones per rank (weak-ish deposition: 16^3 zones x 32 groups x 72 dirs)
UNKNOWNS_PER_RANK = 16**3 * 32 * 72
N_ITERATIONS = 10
#: flops per unknown per sweep (LTS + scattering source)
FLOPS_PER_UNKNOWN = 60.0


class Kripke(AppModel):
    name = "kripke"
    display_name = "Kripke"
    fom_name = "Grind time"
    fom_units = "ns / unknown-iteration"
    higher_is_better = False
    scaling = "weak"

    #: §3.3: "We do not report GPU runs due to difficulties mapping
    #: processes to GPUs correctly."
    _GPU_FAILURE = {
        "failure_kind": "misconfiguration",
        "extra": {"detail": "process-to-GPU mapping failure"},
    }

    def _base(self, ctx: RunContext):
        def _compute():
            unknowns = UNKNOWNS_PER_RANK * ctx.ranks
            work_gflops = unknowns * FLOPS_PER_UNKNOWN / 1e9
            t_sweep = ctx.compute_time(work_gflops, KernelClass.BANDWIDTH)

            # KBA pipeline: one sweep per octant; fill depth ~ 2 * cbrt(ranks)
            # stages, each forwarding two faces of angular flux (zone face x
            # groups x per-octant directions x doubles).
            octants = 8
            stages = int(2 * round(ctx.ranks ** (1.0 / 3.0)))
            face_bytes = 16 * 16 * 32 * 8 * 8
            t_pipeline = octants * stages * ctx.comm.halo(face_bytes, neighbors=2)
            return unknowns, t_sweep, stages, t_pipeline

        return ctx.once(("kripke-base",), _compute)

    def simulate(self, ctx: RunContext) -> AppResult:
        if ctx.env.is_gpu:
            return self._result(
                ctx, fom=None, wall=0.0, failed=True, **self._GPU_FAILURE
            )

        unknowns, t_sweep, stages, t_pipeline = self._base(ctx)

        # Structured sweeps are cache-predictable; run-to-run noise is far
        # below the fabric's small-message jitter.
        per_iter = self._noisy(ctx, t_sweep + t_pipeline, cv=0.02)
        wall = N_ITERATIONS * per_iter
        grind_ns = wall / (unknowns * N_ITERATIONS) * 1e9
        return self._result(
            ctx,
            fom=grind_ns,
            wall=wall,
            phases={"sweep": N_ITERATIONS * t_sweep, "pipeline": N_ITERATIONS * t_pipeline},
            extra={"unknowns": unknowns, "stages": stages},
        )

    def simulate_block(self, ctx: RunContext, block) -> AppBlockResult:
        """Array-native path; GPU groups fail uniformly without a draw."""
        if ctx.env.is_gpu:
            return self._block_failure(block, wall=0.0, **self._GPU_FAILURE)

        unknowns, t_sweep, stages, t_pipeline = self._base(ctx)
        per_iter = (t_sweep + t_pipeline) * self._noisy_factors(ctx, block, cv=0.02)
        wall = N_ITERATIONS * per_iter
        grind_ns = wall / (unknowns * N_ITERATIONS) * 1e9
        return AppBlockResult(
            app=self.name,
            fom=grind_ns,
            fom_units=self.fom_units,
            wall=wall,
            phases={"sweep": N_ITERATIONS * t_sweep, "pipeline": N_ITERATIONS * t_pipeline},
            extra={"unknowns": unknowns, "stages": stages},
        )

"""Cross-process trace collection: worker snapshots → one trace tree.

Worker processes record spans against their own ``perf_counter`` origin
and ship them back as flat columnar snapshots piggybacked on each
:class:`~repro.parallel.shard.ShardResult` (the same transport
discipline the columnar record buffers use).  :func:`merge_trace`
rebases every snapshot onto one epoch timeline using the
``(epoch, perf)`` clock anchor each snapshot carries, then lays the
spans out in *lanes*: the parent's spans in the ``main`` lane, each
worker process in its own ``worker-<pid>`` lane — ready for the
flamegraph and summary exporters (:mod:`repro.telemetry.export`).

A worker that executed several shards contributes several snapshots to
the same lane; parent indices are offset per snapshot so the per-lane
span forest stays well-formed.
"""

from __future__ import annotations

from repro.telemetry.tracer import SNAPSHOT_VERSION, Tracer

#: merged trace document schema version
TRACE_VERSION = 1


def _anchor(snapshot: dict) -> float:
    """The perf→epoch offset for one snapshot's timestamps."""
    return snapshot["epoch"] - snapshot["perf"]


def _rebased_spans(snapshot: dict, t0_epoch: float, base: int) -> list[dict]:
    """One snapshot's spans on the merged timeline (µs since ``t0``).

    ``base`` offsets parent indices so several snapshots can share a
    lane; top-level spans additionally carry the dispatch ordinal and
    measured worker wall time the pool tagged onto the shard result
    (when present) — the lane then reads as a sequence of cells.
    """
    offset = _anchor(snapshot) - t0_epoch
    ordinal = snapshot.get("dispatch_ordinal")
    worker_seconds = snapshot.get("worker_seconds")
    spans = []
    for i, name in enumerate(snapshot["names"]):
        parent = snapshot["parents"][i]
        attrs = snapshot["attrs"][i] or {}
        if parent < 0 and ordinal is not None:
            attrs = dict(attrs)
            attrs["dispatch_ordinal"] = ordinal
            if worker_seconds is not None:
                attrs["worker_seconds"] = round(worker_seconds, 6)
        span = {
            "name": name,
            # max() soaks up float error at epoch magnitude: no span can
            # precede t0 (the min first-start across snapshots), but the
            # subtraction can land a fraction of a µs below zero.
            "start_us": max(round((snapshot["starts"][i] + offset) * 1e6, 1), 0.0),
            "dur_us": round((snapshot["ends"][i] - snapshot["starts"][i]) * 1e6, 1),
            "parent": parent if parent < 0 else parent + base,
        }
        if attrs:
            span["attrs"] = attrs
        spans.append(span)
    return spans


def _first_start_epoch(snapshot: dict) -> float:
    starts = snapshot["starts"]
    return (min(starts) if starts else snapshot["perf"]) + _anchor(snapshot)


def _last_end_epoch(snapshot: dict) -> float:
    ends = snapshot["ends"]
    return (max(ends) if ends else snapshot["perf"]) + _anchor(snapshot)


def merge_trace(tracer: Tracer) -> dict:
    """The tracer's own spans plus every absorbed worker snapshot, as
    one JSON-safe trace document with per-process lanes.

    The ``main`` lane is always first; worker lanes follow in
    first-seen order, one per worker pid.  All timestamps are µs
    relative to the earliest span start across every lane, so the
    document is self-contained and diff-friendly.
    """
    main = tracer.snapshot()
    snapshots = [main, *tracer.worker_traces]
    t0_epoch = min(_first_start_epoch(s) for s in snapshots)
    t_end = max(_last_end_epoch(s) for s in snapshots)

    lanes: list[dict] = []
    lane_by_pid: dict[int, dict] = {}
    for snapshot in snapshots:
        if snapshot is main:
            lane = {"label": main["label"], "pid": main["pid"], "spans": []}
            lanes.append(lane)
        else:
            pid = snapshot["pid"]
            lane = lane_by_pid.get(pid)
            if lane is None:
                lane = {"label": f"worker-{pid}", "pid": pid, "spans": []}
                lane_by_pid[pid] = lane
                lanes.append(lane)
        lane["spans"].extend(
            _rebased_spans(snapshot, t0_epoch, base=len(lane["spans"]))
        )

    counters: dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot["counters"].items():
            counters[name] = counters.get(name, 0) + value

    return {
        "version": TRACE_VERSION,
        "snapshot_version": SNAPSHOT_VERSION,
        "t0_epoch": t0_epoch,
        "wall_seconds": max(t_end - t0_epoch, 0.0),
        "span_count": sum(len(lane["spans"]) for lane in lanes),
        "counters": dict(sorted(counters.items())),
        "lanes": lanes,
    }

"""The tracer: nested spans, monotonic counters, a no-op default.

A :class:`Tracer` records *spans* — named, attributed, wall-clock
intervals arranged in a tree by lexical nesting — and *counters* —
monotonic named totals.  Instrumented code never talks to a tracer
directly; it calls the module-level :func:`span` and :func:`count`,
which delegate to the process-global active tracer.  When no tracer is
active (the default), :func:`span` returns one shared no-op context
manager and :func:`count` returns immediately, so instrumentation on
the hot path costs a few attribute lookups and nothing else — the
``repro bench`` acceptance gate holds the disabled overhead under 2%.

Spans are stored *columnar* — parallel lists of names, start/end
times, parent indices, and attribute dicts — the same discipline the
shard transport uses for records, so a worker's whole trace serializes
as a handful of flat lists (:meth:`Tracer.snapshot`) and piggybacks on
its :class:`~repro.parallel.shard.ShardResult` without any per-span
object overhead.

Two clocks anchor every snapshot: ``time.perf_counter()`` provides the
span timestamps (monotonic, high resolution, but with a per-process
origin) and ``time.time()`` is sampled at the same instant so traces
from different processes can be rebased onto one epoch timeline
(:func:`repro.telemetry.collect.merge_trace`).

The hard invariant of the whole subsystem: **timing never feeds
results**.  A tracer only ever reads clocks and accumulates counts;
nothing in this package returns a value the execution path consumes.
"""

from __future__ import annotations

import os
import time
from typing import Any

__all__ = [
    "Tracer",
    "count",
    "current_tracer",
    "enabled",
    "span",
    "use_tracer",
]

#: snapshot schema version; bump on shape changes so stale payloads
#: are rejected instead of mis-merged
SNAPSHOT_VERSION = 1

#: the process-global active tracer; ``None`` = tracing disabled
_active: "Tracer | None" = None


class _NullSpan:
    """The shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def current_tracer() -> "Tracer | None":
    """The process-global active tracer, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    """Whether a tracer is currently active in this process."""
    return _active is not None


def span(name: str, **attrs: Any):
    """A context manager timing one named span under the active tracer.

    With tracing disabled this returns a shared no-op singleton — the
    call costs one global read.  Span names must be string literals
    declared in :data:`repro.telemetry.registry.SPANS` (a lint test
    enforces it), so every trace is summarizable against one taxonomy.
    """
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return _SpanContext(tracer, name, attrs or None)


def count(name: str, value: float = 1) -> None:
    """Add ``value`` to the named monotonic counter (no-op when disabled)."""
    tracer = _active
    if tracer is not None:
        counters = tracer.counters
        counters[name] = counters.get(name, 0) + value


class use_tracer:
    """Install ``tracer`` as the process-global tracer for a ``with`` block.

    Restores the prior tracer on exit (exceptions included), so nested
    installations compose — a worker process installs its own recording
    tracer around one shard without disturbing anything else.
    """

    def __init__(self, tracer: "Tracer | None"):
        self.tracer = tracer
        self._prior: "Tracer | None" = None

    def __enter__(self) -> "Tracer | None":
        global _active
        self._prior = _active
        _active = self.tracer
        return self.tracer

    def __exit__(self, *exc: Any) -> bool:
        global _active
        _active = self._prior
        return False


class _SpanContext:
    """One live span; closes its interval even when the body raises."""

    __slots__ = ("_tracer", "_name", "_attrs", "_index")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._index = -1

    def __enter__(self) -> "_SpanContext":
        self._index = self._tracer._begin(self._name, self._attrs)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._end(self._index)
        return False


class Tracer:
    """Records spans and counters for one process.

    Spans live in parallel columns (``names``/``starts``/``ends``/
    ``parents``/``attrs``); the parent of span *i* is ``parents[i]``
    (``-1`` for top level).  ``worker_traces`` accumulates snapshots
    absorbed from worker processes (:meth:`absorb`); the collector
    merges them into per-worker lanes.
    """

    def __init__(self, label: str = "main"):
        self.label = label
        self.pid = os.getpid()
        self.names: list[str] = []
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.parents: list[int] = []
        self.attrs: list[dict | None] = []
        self.counters: dict[str, float] = {}
        #: snapshots absorbed from worker processes, in arrival order
        self.worker_traces: list[dict] = []
        #: the open-span stack; [-1] roots top-level spans
        self._stack: list[int] = [-1]
        # One instant, two clocks: perf for intervals, epoch to rebase
        # across processes.
        self.epoch = time.time()
        self.perf = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager timing one span recorded by this tracer."""
        return _SpanContext(self, name, attrs or None)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def _begin(self, name: str, attrs: dict | None) -> int:
        index = len(self.names)
        self.names.append(name)
        self.parents.append(self._stack[-1])
        self.attrs.append(attrs)
        self.ends.append(0.0)
        self._stack.append(index)
        # Sampled last so span bookkeeping never counts as span time.
        self.starts.append(time.perf_counter())
        return index

    def _end(self, index: int) -> None:
        now = time.perf_counter()
        # Unwind to this span's frame even if an inner span leaked open
        # (a generator abandoned mid-iteration): every popped span gets
        # a close time, so the tree stays balanced under any exit path.
        while len(self._stack) > 1:
            top = self._stack.pop()
            if not self.ends[top]:
                self.ends[top] = now
            if top == index:
                break

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack) - 1

    # -- cross-process ------------------------------------------------------

    def absorb(self, snapshot: dict) -> None:
        """Adopt one worker's serialized trace (a :meth:`snapshot` dict).

        Unknown snapshot versions are dropped rather than mis-merged —
        a version-skewed worker degrades the trace, never the run.
        """
        if isinstance(snapshot, dict) and snapshot.get("v") == SNAPSHOT_VERSION:
            self.worker_traces.append(snapshot)

    def snapshot(self) -> dict:
        """This tracer's spans and counters as flat JSON-safe columns.

        Open spans are closed at the snapshot instant, so a snapshot is
        always a complete interval set.  The ``epoch``/``perf`` anchor
        pair lets the parent rebase these perf-clock timestamps onto
        its own epoch timeline.
        """
        now = time.perf_counter()
        return {
            "v": SNAPSHOT_VERSION,
            "label": self.label,
            "pid": self.pid,
            "epoch": self.epoch,
            "perf": self.perf,
            "names": list(self.names),
            "starts": list(self.starts),
            "ends": [end if end else now for end in self.ends],
            "parents": list(self.parents),
            "attrs": list(self.attrs),
            "counters": dict(self.counters),
        }

"""The span and counter registries: every name the codebase may emit.

One flat taxonomy keeps traces summarizable: ``repro trace summarize``
groups self-time by span name, so names must be stable string literals
(never interpolated — varying detail belongs in span *attributes*).  A
lint-style test (``tests/test_telemetry.py``) greps ``src/`` for
``span("...")`` call sites and fails on any name missing here, so the
registry and the instrumentation can never drift apart.  :data:`COUNTERS`
gets the same treatment for literal ``count("...")`` sites; counters
whose names are built per call (the ``cache.<level>.*`` and
``plan.reuse.<field>`` families) are enumerated explicitly below.

Naming convention: ``<layer>.<operation>``, layers ordered roughly by
call depth — campaign orchestration (``campaign``), front-end runners
(``study``/``sweep``/``ensemble``), the planner (``plan``), the process
pool (``pool``), per-cell execution (``shard``), the engine
(``engine``), and the benchmark suite (``bench``).
"""

from __future__ import annotations

#: span name → what the interval covers
SPANS: dict[str, str] = {
    # campaign orchestration (stage spans carry a `stage=...` attribute)
    "campaign.run": "one staged campaign: smoke -> grid -> ab -> select -> publish",
    "campaign.smoke": "the SMOKE stage: low-replica ensemble pruning the search space",
    "campaign.grid": "the GRID stage: full-replica ensemble over the survivors",
    "campaign.ab": "the AB stage: candidate-vs-baseline deltas with Student-t CIs",
    "campaign.select": "the SELECT stage: Pareto frontier and deterministic winner",
    "campaign.publish": "the PUBLISH stage: building the CampaignReport artifact",
    # front-end runners
    "study.run": "one full study campaign, compile through artifact push",
    "study.build_containers": "building and pushing the container matrix",
    "sweep.run": "a scenario sweep: every world, baseline first",
    "ensemble.run": "a Monte-Carlo ensemble: every replica-world, folded",
    "ensemble.world_probe": "probing the world-summary cache for one world",
    "ensemble.fold": "folding one world summary into the streaming stats",
    # the execution planner
    "plan.run": "executing one compiled RunPlan end to end",
    "plan.world": "one world: collecting its shard results (and the caller's fold)",
    "plan.diff": "diffing the plan against its baseline (incremental mode)",
    "plan.attach": "probing the cell cache for every reusable cell",
    "plan.merge": "merging one world's shard results in plan order",
    # the process pool
    "pool.dispatch": "submitting one chunk of shards to the worker pool",
    "pool.drain": "waiting on one in-flight chunk's results",
    "pool.retry": "backing off before re-dispatching a transiently failed shard",
    "pool.requeue": "rebuilding a dead pool and resubmitting undelivered flights",
    "transport.attach": "attaching one shard's shared-memory block as column views",
    # the chaos harness
    "chaos.inject": "injecting one deterministic fault (kind=... attribute)",
    # per-cell execution (worker side)
    "shard.execute": "one (environment, size) cell, start to finish",
    "shard.provision": "quota, cluster provisioning, and environment deploy",
    # the engine
    "engine.run_block": "one (env, app, size) group through the array-native path",
    "engine.run_batch": "one (env, app, size) group through the batched path",
    "engine.resolve_group": "placement, fabric, ECC, and pricing resolution",
    "engine.rng": "batched keyed-stream seeding and hookup draws",
    "engine.physics": "the app model's columnar simulation",
    "engine.price": "walltime policy, spot preemption, and pricing as array math",
    "engine.cache_probe": "probing the run cache for a group's iterations",
    "engine.cache_put": "storing a group's simulated records in the run cache",
    # the benchmark suite
    "bench.run": "the whole benchmark suite",
    "bench.seed": "the per-iteration seed pipeline",
    "bench.batched": "the run_batch pipeline",
    "bench.block": "the array-native block pipeline",
    "bench.rng": "the keyed-rng component microbenchmark",
    "bench.transport": "the shard-transport component microbenchmark",
}

#: counter name → what it accumulates
COUNTERS: dict[str, str] = {
    # fault tolerance (the resilient pool and resume path)
    "fault.retries": "transient shard failures re-dispatched with backoff",
    "fault.requeues": "flights resubmitted after their pool died under them",
    "fault.rebuilds": "process-pool teardown/rebuild cycles",
    "fault.timeouts": "per-shard deadlines that expired on stragglers",
    "fault.serial_hops": "drops down the workers->serial degradation ladder",
    "fault.injected": "faults attributed to the chaos harness",
    "fault.resumed": "cells re-attached from the checkpoint journal",
    # shared-memory transport
    "transport.blocks": "shared-memory blocks attached by the parent",
    "transport.bytes": "column bytes crossing via shared memory",
    "transport.copied_bytes": "column bytes copied at attach time (zero-copy = 0)",
    "transport.reaped": "orphaned /dev/shm segments swept after dead workers",
    # the cache (levels: run / cell / world)
    "cache.invalid": "unusable cache entries degraded to re-simulation",
    "cache.run.hits": "run-level cache hits",
    "cache.run.misses": "run-level cache misses",
    "cache.run.puts": "run-level cache stores",
    "cache.run.put_bytes": "run-level bytes written",
    "cache.run.hit_bytes": "run-level bytes served",
    "cache.cell.hits": "cell-level cache hits",
    "cache.cell.misses": "cell-level cache misses",
    "cache.cell.puts": "cell-level cache stores",
    "cache.cell.put_bytes": "cell-level bytes written",
    "cache.cell.hit_bytes": "cell-level bytes served",
    "cache.world.hits": "world-summary cache hits",
    "cache.world.misses": "world-summary cache misses",
    "cache.world.puts": "world-summary cache stores",
    "cache.world.put_bytes": "world-summary bytes written",
    "cache.world.hit_bytes": "world-summary bytes served",
    # incremental reuse accounting (mirrors ReuseStats fields)
    "plan.reuse.planned_reusable": "cells the diff classified reusable",
    "plan.reuse.planned_dirty": "cells the diff classified dirty",
    "plan.reuse.attached": "cells attached from the cell-level cache",
    "plan.reuse.executed": "cells dispatched to shard execution",
    "plan.reuse.invalid": "malformed cell entries met on the reuse path",
}

"""Trace exporters: JSON file, Chrome ``trace_event``, summary table.

Three views of one merged trace document
(:func:`repro.telemetry.collect.merge_trace`):

* :func:`write_trace` / :func:`load_trace` — the document itself as a
  JSON file (what ``--trace FILE`` writes and ``repro trace``
  consumes);
* :func:`chrome_trace_events` — the Chrome ``trace_event`` array
  (complete-duration ``"X"`` events, one track per process lane); load
  it in ``chrome://tracing`` or Perfetto for a flamegraph;
* :func:`phase_summary` — self-time grouped by span name as a
  :class:`~repro.reporting.tables.Table` (the ``repro trace
  summarize`` view): *self* time is a span's duration minus its
  children's, so the column sums to the instrumented wall clock
  instead of double-counting the tree.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.reporting.tables import Table, render_table
from repro.telemetry.collect import TRACE_VERSION


def write_trace(doc: dict, path: str) -> None:
    """Write one merged trace document as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> dict:
    """Read a trace document back, with clean usage errors."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in trace file {path!r}: {exc}")
    if not isinstance(doc, dict) or doc.get("version") != TRACE_VERSION:
        raise ConfigurationError(
            f"{path!r} is not a repro trace document "
            f"(expected version {TRACE_VERSION})"
        )
    return doc


# -- Chrome trace_event -------------------------------------------------------


def chrome_trace_events(doc: dict) -> list[dict]:
    """The trace as Chrome ``trace_event`` objects (JSON array format).

    Every lane becomes one named process track; spans become complete
    ``"X"`` duration events, attributes ride in ``args``.  The output
    loads directly in ``chrome://tracing`` and Perfetto.
    """
    events: list[dict] = []
    for lane in doc["lanes"]:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": lane["pid"],
                "tid": 0,
                "args": {"name": lane["label"]},
            }
        )
        for span in lane["spans"]:
            events.append(
                {
                    "ph": "X",
                    "cat": "repro",
                    "name": span["name"],
                    "pid": lane["pid"],
                    "tid": 0,
                    "ts": span["start_us"],
                    "dur": span["dur_us"],
                    "args": span.get("attrs", {}),
                }
            )
    return events


def write_chrome_trace(doc: dict, path: str) -> None:
    """Write the Chrome ``trace_event`` JSON array for ``doc``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_events(doc), fh, separators=(",", ":"))
        fh.write("\n")


# -- self-time summary --------------------------------------------------------


def phase_rows(doc: dict) -> list[dict]:
    """Per-phase totals: one row per span name, self-time descending.

    Self time excludes child spans, so summing the ``self_s`` column
    reproduces each lane's instrumented wall clock exactly — the
    summary attributes time instead of double-counting nesting levels.
    """
    totals: dict[str, dict] = {}
    total_self = 0.0
    for lane in doc["lanes"]:
        spans = lane["spans"]
        child_us = [0.0] * len(spans)
        for span in spans:
            parent = span["parent"]
            if parent >= 0:
                child_us[parent] += span["dur_us"]
        for i, span in enumerate(spans):
            row = totals.setdefault(
                span["name"], {"phase": span["name"], "count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += span["dur_us"] / 1e6
            row["self_s"] += max(span["dur_us"] - child_us[i], 0.0) / 1e6
            total_self += max(span["dur_us"] - child_us[i], 0.0) / 1e6
    rows = sorted(totals.values(), key=lambda r: -r["self_s"])
    for row in rows:
        row["total_s"] = round(row["total_s"], 6)
        row["self_s"] = round(row["self_s"], 6)
        row["self_pct"] = round(100.0 * row["self_s"] / total_self, 2) if total_self else 0.0
    return rows


def coverage(doc: dict) -> float:
    """Fraction of the main lane's wall clock covered by spans.

    The acceptance gate for instrumentation completeness: top-level
    span durations in the ``main`` lane over the trace's wall clock —
    uninstrumented gaps between top-level spans lower it.
    """
    wall = doc["wall_seconds"]
    if not wall or not doc["lanes"]:
        return 0.0
    covered = sum(
        span["dur_us"] for span in doc["lanes"][0]["spans"] if span["parent"] < 0
    )
    return min(covered / 1e6 / wall, 1.0)


def phase_summary(doc: dict) -> Table:
    """The self-time-by-phase table ``repro trace summarize`` prints."""
    workers = len(doc["lanes"]) - 1
    table = Table(
        title="Self-time by phase",
        columns=("phase", "spans", "total s", "self s", "self %"),
        caption=(
            f"{doc['wall_seconds']:.3f} s wall, {doc['span_count']} spans, "
            f"{len(doc['lanes'])} lane(s) ({workers} worker(s)); "
            f"main-lane span coverage {100.0 * coverage(doc):.1f}% of wall clock"
        ),
    )
    for row in phase_rows(doc):
        table.add(
            row["phase"], row["count"], row["total_s"], row["self_s"],
            f"{row['self_pct']:.1f}",
        )
    return table


def render_summary(doc: dict) -> str:
    """The full human summary: phase table plus merged counters."""
    out = [render_table(phase_summary(doc))]
    if doc["counters"]:
        out.append("")
        out.append("counters:")
        for name, value in doc["counters"].items():
            formatted = f"{value:g}" if isinstance(value, float) else str(value)
            out.append(f"  {name:40s} {formatted:>12s}")
    return "\n".join(out)

"""repro.telemetry — spans, counters, and cross-process traces.

The observability layer every execution surface shares:

* :mod:`~repro.telemetry.tracer` — the :class:`Tracer` (nested spans +
  monotonic counters), a process-global no-op default, and the
  module-level :func:`span`/:func:`count` hooks instrumented code
  calls (≈ free while tracing is disabled);
* :mod:`~repro.telemetry.registry` — the declared span taxonomy (a
  lint test keeps ``src/`` and the registry in sync);
* :mod:`~repro.telemetry.collect` — rebases worker snapshots
  (piggybacked on :class:`~repro.parallel.shard.ShardResult`) onto one
  epoch timeline as per-process lanes;
* :mod:`~repro.telemetry.export` — JSON trace files, Chrome
  ``trace_event`` flamegraphs, and the self-time-by-phase summary
  table.

Hard invariant: **timing never feeds results** — with tracing enabled
every result store stays byte-identical to an untraced run
(``tests/test_telemetry.py`` holds that property at workers 1 and 4).
"""

from repro.telemetry.collect import TRACE_VERSION, merge_trace
from repro.telemetry.export import (
    chrome_trace_events,
    coverage,
    load_trace,
    phase_rows,
    phase_summary,
    render_summary,
    write_chrome_trace,
    write_trace,
)
from repro.telemetry.registry import COUNTERS, SPANS
from repro.telemetry.tracer import (
    Tracer,
    count,
    current_tracer,
    enabled,
    span,
    use_tracer,
)

__all__ = [
    "COUNTERS",
    "SPANS",
    "TRACE_VERSION",
    "Tracer",
    "chrome_trace_events",
    "count",
    "coverage",
    "current_tracer",
    "enabled",
    "load_trace",
    "merge_trace",
    "phase_rows",
    "phase_summary",
    "render_summary",
    "span",
    "use_tracer",
    "write_chrome_trace",
    "write_trace",
]

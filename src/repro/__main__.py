"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — show available experiments, environments, and applications;
* ``experiment <id>`` — regenerate one table/figure and verify its
  paper claims (``--iterations``, ``--seed``);
* ``run <env> <app> <scale>`` — a single simulated run;
* ``study`` — a campaign over selected environments/apps, optionally
  sharded across worker processes (``--workers``) with a
  content-addressed run cache (``--cache``), with the dataset CSV
  optionally written to disk;
* ``scenario`` — the what-if engine: ``scenario list`` shows the
  registered counterfactuals, ``scenario run`` executes selected
  scenarios against the baseline and prints the delta report;
* ``report`` — render the full evaluation report.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.registry import APPS
from repro.core.study import StudyConfig, StudyRunner
from repro.envs.registry import ENVIRONMENTS, environment
from repro.experiments import EXPERIMENTS, run_experiment
from repro.reporting.compare import summarize
from repro.reporting.series import render_series
from repro.reporting.tables import render_table
from repro.scenarios.presets import SCENARIOS, scenario as scenario_lookup
from repro.sim.execution import ExecutionEngine
from repro.units import fmt_seconds, fmt_usd


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for eid in sorted(EXPERIMENTS):
        print(f"  {eid}")
    print("\nenvironments:")
    for env_id, env in ENVIRONMENTS.items():
        marker = "" if env.deployable else "  (undeployable, §3.1)"
        print(f"  {env_id:28s} {env.display_name}{marker}")
    print("\napplications:")
    for name, model in APPS.items():
        print(f"  {name:14s} {model.fom_name} [{model.fom_units}], {model.scaling} scaled")
    print()
    _print_scenarios()
    return 0


def _print_scenarios() -> None:
    print("scenarios:")
    for name, scn in SCENARIOS.items():
        print(f"  {name:18s} {scn.description}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    out = run_experiment(args.id, seed=args.seed, iterations=args.iterations)
    if out.table is not None:
        print(render_table(out.table))
    for series in out.series:
        print(render_series(series))
        print()
    results = out.check()
    print(summarize(results))
    if out.notes:
        print(f"\nnotes: {out.notes}")
    return 0 if all(r.holds for r in results) else 1


def _cmd_run(args: argparse.Namespace) -> int:
    engine = ExecutionEngine(seed=args.seed)
    env = environment(args.env)
    record = engine.run(env, args.app, args.scale, iteration=args.iteration)
    print(f"state   : {record.state.value}")
    if record.fom is not None:
        print(f"FOM     : {record.fom:.6g} {record.fom_units}")
    if record.failure_kind:
        print(f"failure : {record.failure_kind}")
    print(f"wall    : {fmt_seconds(record.wall_seconds)}")
    print(f"hookup  : {fmt_seconds(record.hookup_seconds)}")
    print(f"cost    : {fmt_usd(record.cost_usd)}")
    return 0 if record.ok else 1


def _cache_dir_error(cache: str | None) -> str | None:
    """A usage error when ``--cache`` points at a non-directory."""
    import os

    if cache and os.path.exists(cache) and not os.path.isdir(cache):
        return f"error: --cache {cache!r} exists and is not a directory"
    return None


def _config_from_args(args: argparse.Namespace) -> StudyConfig:
    """The campaign selection shared by ``study`` and ``scenario run``."""
    env_ids = tuple(args.envs.split(",")) if args.envs else tuple(ENVIRONMENTS)
    apps = tuple(args.apps.split(",")) if args.apps else tuple(APPS)
    return StudyConfig(
        env_ids=env_ids,
        apps=apps,
        sizes=tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None,
        iterations=args.iterations,
        seed=args.seed,
    )


def _cmd_study(args: argparse.Namespace) -> int:
    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    config = _config_from_args(args)
    report = StudyRunner(config, workers=args.workers, cache_dir=args.cache).run()
    print(f"datasets          : {report.datasets}")
    print(f"clusters created  : {report.clusters_created}")
    print(f"containers built  : {report.containers_built} "
          f"({report.containers_failed} failed)")
    for cloud, spend in sorted(report.spend_by_cloud.items()):
        print(f"spend on {cloud:3s}      : {fmt_usd(spend)}")
    if args.cache:
        print(f"run cache         : {report.cache_hits} hits, "
              f"{report.cache_misses} misses")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report.store.to_csv())
        print(f"dataset CSV       : {args.output}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.scenarios.sweep import ScenarioSweep

    if args.scenario_command == "list":
        _print_scenarios()
        return 0

    # scenario run
    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        scenarios = [scenario_lookup(name) for name in args.scenario]
        sweep = ScenarioSweep(
            _config_from_args(args),
            scenarios,
            workers=args.workers,
            cache_dir=args.cache,
        )
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = sweep.run()
    print(result.render_deltas())
    print()
    for sid, report in result.reports.items():
        spend = sum(report.spend_by_cloud.values())
        print(f"{sid:18s} datasets={report.datasets}  spend={fmt_usd(spend)}  "
              f"clusters={report.clusters_created}")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(result.delta_table().to_csv())
        print(f"\ndelta CSV         : {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.report import generate_report

    text = generate_report(seed=args.seed, iterations=args.iterations)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


_EPILOG = """\
examples:
  python -m repro list
      show every experiment, environment, and application
  python -m repro experiment fig2
      regenerate Figure 2 (AMG2023 scaling) and verify its paper claims
  python -m repro run cpu-eks-aws amg2023 64
      one simulated AMG2023 run on EKS at 64 nodes
  python -m repro study --workers 4 --cache .repro-cache
      the default campaign, sharded over 4 processes with run caching
  python -m repro study --envs cpu-eks-aws --apps lammps --sizes 32,64
      a focused campaign over one environment
  python -m repro scenario run --scenario spot-everything --workers 4
      the campaign under a what-if overlay, vs the baseline
  python -m repro report -o report.md
      render the full evaluation report to markdown
"""

_STUDY_EPILOG = """\
examples:
  python -m repro study
      serial campaign: every environment and app, 2 iterations
  python -m repro study --workers 4
      shard (environment, size) cells over 4 worker processes;
      the dataset is byte-identical to the serial run
  python -m repro study --workers 4 --cache .repro-cache
      also cache every run; a repeat campaign replays from the cache
  python -m repro study --seed 7 --iterations 5 --output study.csv
      the paper-scale iteration count, dataset exported as CSV
"""


_SCENARIO_EPILOG = """\
examples:
  python -m repro scenario list
      show every registered what-if scenario
  python -m repro scenario run --scenario spot-everything --workers 4
      the default campaign under an all-spot market, vs the baseline
  python -m repro scenario run --scenario quota-crunch --scenario laggy-bills
      several counterfactual worlds in one sweep
  python -m repro scenario run --scenario degraded-efa \\
      --envs cpu-eks-aws --apps osu,minife --sizes 64 --output deltas.csv
      a focused sweep, delta table exported as CSV
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Usability Evaluation of "
        "Cloud for HPC Applications' (SC 2025)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, environments, apps")

    p_exp = sub.add_parser(
        "experiment",
        help="regenerate one table/figure",
        epilog="example: python -m repro experiment table4 --iterations 5",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--iterations", type=int, default=None)

    p_run = sub.add_parser(
        "run",
        help="run one app on one environment",
        epilog="example: python -m repro run gpu-aks-az lammps 128 --seed 3",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_run.add_argument("env", choices=sorted(ENVIRONMENTS))
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("scale", type=int)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--iteration", type=int, default=0)

    # Campaign selection + execution flags shared by `study` and
    # `scenario run` (parsed by _config_from_args either way).
    campaign_options = argparse.ArgumentParser(add_help=False)
    campaign_options.add_argument("--envs", help="comma-separated environment ids")
    campaign_options.add_argument("--apps", help="comma-separated app names")
    campaign_options.add_argument("--sizes", help="comma-separated scales")
    campaign_options.add_argument("--iterations", type=int, default=2)
    campaign_options.add_argument("--seed", type=int, default=0)
    campaign_options.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded execution (default: 1, serial)",
    )
    campaign_options.add_argument(
        "--cache",
        metavar="DIR",
        help="content-addressed run-cache directory; repeat campaigns "
        "replay cached runs instead of re-simulating (keys embed the "
        "scenario digest, so what-if worlds never collide)",
    )

    p_study = sub.add_parser(
        "study",
        help="run a study campaign",
        epilog=_STUDY_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_study.add_argument("--output", help="write dataset CSV here")

    p_scenario = sub.add_parser(
        "scenario",
        help="what-if scenario engine (counterfactual studies)",
        epilog=_SCENARIO_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    scenario_sub = p_scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list registered scenarios")
    p_scn_run = scenario_sub.add_parser(
        "run",
        help="run scenarios against the baseline and print the delta report",
        epilog=_SCENARIO_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_scn_run.add_argument(
        "--scenario",
        action="append",
        required=True,
        metavar="NAME",
        help="scenario to run (repeatable); see `repro scenario list`",
    )
    p_scn_run.add_argument("--output", help="write the delta table CSV here")

    p_report = sub.add_parser(
        "report",
        help="render the full evaluation report",
        epilog="example: python -m repro report --iterations 3 -o report.md",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--iterations", type=int, default=None)
    p_report.add_argument("-o", "--output", help="write markdown here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "run": _cmd_run,
        "study": _cmd_study,
        "scenario": _cmd_scenario,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — show available experiments, environments, and applications;
* ``experiment <id>`` — regenerate one table/figure and verify its
  paper claims (``--iterations``, ``--seed``);
* ``run <env> <app> <scale>`` — a single simulated run;
* ``study`` — a campaign over selected environments/apps, optionally
  sharded across worker processes (``--workers``) with a
  content-addressed run cache (``--cache``), with the dataset
  exportable as CSV (``--output``) or JSON (``--json``);
* ``plan`` — the execution planner: ``plan show`` compiles the study /
  scenario sweep / ensemble you describe into its
  :class:`~repro.plan.ir.RunPlan` and prints worlds, shards, run
  counts, and the plan digest — without executing anything; ``plan
  diff`` classifies every compiled cell as *reusable* or *dirty*
  against the baseline plan (the decision ``--incremental`` execution
  acts on);
* ``scenario`` — the what-if engine: ``scenario list`` shows the
  registered counterfactuals, ``scenario run`` executes selected
  scenarios (preset names or JSON spec files) against the baseline and
  prints the delta report;
* ``ensemble`` — the Monte-Carlo replication engine: ``ensemble run``
  replicates the campaign across a seed grid × scenario grid and prints
  distributions (mean ± 95% CI, percentiles, exceedance probabilities)
  instead of point estimates, with CSV/JSON export;
* ``campaign`` — staged experiment campaigns over the planner:
  ``campaign run --spec FILE`` drives SMOKE → GRID → AB → SELECT →
  PUBLISH (prune the search space cheaply, measure survivors at full
  fidelity with incremental reuse, pick the cheapest config that meets
  the SLA) and can export the frontier CSV and the CampaignReport
  JSON; ``campaign show`` prints what would run without executing;
* ``bench`` — run the vectorization benchmark suite locally and print
  the speedup table (``--output`` writes the BENCH_vector.json
  artifact, ``--quick`` runs a small smoke campaign);
* ``trace`` — inspect trace documents recorded with ``--trace``
  (available on ``study``, ``scenario run``, ``ensemble run``, and
  ``bench``): ``trace summarize`` prints self-time by phase and
  counters, ``trace chrome`` converts to Chrome trace_event JSON;
* ``report`` — render the full evaluation report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.apps.registry import APPS
from repro.core.study import StudyConfig, StudyRunner
from repro.envs.registry import ENVIRONMENTS, environment
from repro.experiments import EXPERIMENTS, run_experiment
from repro.reporting.compare import summarize
from repro.reporting.series import render_series
from repro.reporting.tables import render_table
from repro.scenarios.presets import SCENARIOS, scenario as scenario_lookup
from repro.scenarios.spec import Scenario
from repro.sim.execution import ExecutionEngine
from repro.units import fmt_seconds, fmt_usd


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for eid in sorted(EXPERIMENTS):
        print(f"  {eid}")
    print("\nenvironments:")
    for env_id, env in ENVIRONMENTS.items():
        marker = "" if env.deployable else "  (undeployable, §3.1)"
        print(f"  {env_id:28s} {env.display_name}{marker}")
    print("\napplications:")
    for name, model in APPS.items():
        print(f"  {name:14s} {model.fom_name} [{model.fom_units}], {model.scaling} scaled")
    print()
    _print_scenarios()
    return 0


def _print_scenarios() -> None:
    print("scenarios:")
    for name, scn in SCENARIOS.items():
        print(f"  {name:18s} {scn.description}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    out = run_experiment(args.id, seed=args.seed, iterations=args.iterations)
    if out.table is not None:
        print(render_table(out.table))
    for series in out.series:
        print(render_series(series))
        print()
    results = out.check()
    print(summarize(results))
    if out.notes:
        print(f"\nnotes: {out.notes}")
    return 0 if all(r.holds for r in results) else 1


def _cmd_run(args: argparse.Namespace) -> int:
    engine = ExecutionEngine(seed=args.seed)
    env = environment(args.env)
    record = engine.run(env, args.app, args.scale, iteration=args.iteration)
    print(f"state   : {record.state.value}")
    if record.fom is not None:
        print(f"FOM     : {record.fom:.6g} {record.fom_units}")
    if record.failure_kind:
        print(f"failure : {record.failure_kind}")
    print(f"wall    : {fmt_seconds(record.wall_seconds)}")
    print(f"hookup  : {fmt_seconds(record.hookup_seconds)}")
    print(f"cost    : {fmt_usd(record.cost_usd)}")
    return 0 if record.ok else 1


def _cache_dir_error(cache: str | None) -> str | None:
    """A usage error when ``--cache`` points at a non-directory."""
    import os

    if cache and os.path.exists(cache) and not os.path.isdir(cache):
        return f"error: --cache {cache!r} exists and is not a directory"
    return None


def _split_flag(value: str | None) -> tuple[str, ...] | None:
    """A comma-separated CLI flag as a tuple; ``None`` when unset."""
    return tuple(value.split(",")) if value else None


def _config_from_args(args: argparse.Namespace) -> StudyConfig:
    """The campaign selection shared by ``study`` and ``scenario run``."""
    return StudyConfig(
        env_ids=_split_flag(args.envs) or tuple(ENVIRONMENTS),
        apps=_split_flag(args.apps) or tuple(APPS),
        sizes=tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None,
        iterations=args.iterations,
        seed=args.seed,
    )


def _write_exports(
    args: argparse.Namespace,
    *,
    csv_text,
    json_text,
    csv_label: str,
    json_label: str,
) -> None:
    """The one ``--output``/``--json`` export path every runner shares.

    ``csv_text``/``json_text`` are zero-argument callables so nothing is
    rendered unless its flag was actually given.
    """
    if getattr(args, "output", None):
        with open(args.output, "w") as fh:
            fh.write(csv_text())
        print(f"{csv_label:18s}: {args.output}")
    if getattr(args, "json_output", None):
        with open(args.json_output, "w") as fh:
            fh.write(json_text())
        print(f"{json_label:18s}: {args.json_output}")


def _fault_options(args: argparse.Namespace):
    """``(retry, chaos, resume)`` from the shared fault-tolerance flags.

    ``retry`` stays ``None`` — the runner's default
    :class:`~repro.parallel.pool.RetryPolicy` — unless a retry knob was
    actually given; ``--chaos SPEC`` parses through
    :meth:`~repro.chaos.FaultPlan.parse`.  Raises
    :class:`~repro.errors.ConfigurationError` on bad values, which every
    caller turns into a usage error (exit 2).
    """
    from repro.errors import ConfigurationError

    retry = None
    if args.max_retries is not None or args.shard_timeout is not None:
        from repro.parallel.pool import RetryPolicy

        kwargs: dict = {}
        if args.max_retries is not None:
            kwargs["max_attempts"] = args.max_retries
        if args.shard_timeout is not None:
            kwargs["timeout"] = args.shard_timeout
        retry = RetryPolicy(**kwargs)
    chaos = None
    if getattr(args, "chaos", None):
        from repro.chaos import FaultPlan

        chaos = FaultPlan.parse(args.chaos)
    if args.resume and not args.cache:
        raise ConfigurationError(
            "--resume needs --cache: completed cells re-attach through "
            "the journal and caches the interrupted run wrote"
        )
    return retry, chaos, args.resume


def _fmt_faults_line(faults) -> str:
    """One diagnostic line for recovery accounting (non-zero fields)."""
    parts = [
        f"{name}={value}"
        for name, value in sorted(faults.to_dict().items())
        if value
    ]
    return ", ".join(parts) or "none"


def _print_faults(faults) -> None:
    """Recovery diagnostics on stderr (stdout stays byte-identical)."""
    if faults is not None and faults.activity:
        print(f"fault recovery    : {_fmt_faults_line(faults)}", file=sys.stderr)


def _apply_transport_flags(args: argparse.Namespace) -> None:
    """Apply the shared ``--spill-mb`` knob before any store is built.

    The threshold travels through the environment so pool workers
    (forked or spawned) inherit it without any shard plumbing.
    """
    if getattr(args, "spill_mb", None) is not None:
        from repro.core.results import set_spill_limit_mb

        set_spill_limit_mb(args.spill_mb)


def _fmt_cache_line(
    hits: int,
    misses: int,
    invalid: int,
    reasons: dict[str, int] | None = None,
) -> str:
    line = f"{hits} hits, {misses} misses"
    if invalid:
        line += f", {invalid} invalid (re-simulated; see warnings)"
        if reasons:
            detail = ", ".join(
                f"{label} x{count}" for label, count in sorted(reasons.items())
            )
            line += f" [{detail}]"
    return line


class _TraceSession:
    """Materializes ``--trace FILE`` for a runner command.

    Used as a context manager around the execution call: when the flag
    was given, a :class:`~repro.telemetry.Tracer` is installed for the
    block; :meth:`report` (called after the command's own output) writes
    the merged trace document and prints the self-time summary.  With no
    ``--trace`` both are no-ops, so commands wrap unconditionally.
    """

    def __init__(self, args: argparse.Namespace):
        self.path = getattr(args, "trace", None)
        self.tracer = None
        self._installed = None
        self._doc = None

    def __enter__(self) -> "_TraceSession":
        if self.path:
            from repro.telemetry import Tracer, use_tracer

            self.tracer = Tracer()
            self._installed = use_tracer(self.tracer)
            self._installed.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        if self._installed is not None:
            self._installed.__exit__(*exc)
        return False

    def doc(self) -> dict | None:
        """The merged trace document (built once), or ``None`` untraced."""
        if self.tracer is None:
            return None
        if self._doc is None:
            from repro.telemetry import merge_trace

            self._doc = merge_trace(self.tracer)
        return self._doc

    def report(self) -> None:
        doc = self.doc()
        if doc is None:
            return
        from repro.telemetry import render_summary, write_trace

        write_trace(doc, self.path)
        print()
        print(render_summary(doc))
        print(f"\ntrace             : {self.path} "
              f"(inspect: python -m repro trace summarize {self.path})")


def _fmt_reuse_line(reuse) -> str:
    """One summary line for incremental cell reuse (``--incremental``)."""
    line = (
        f"{reuse.attached} cells reused, {reuse.executed} executed "
        f"(diff: {reuse.planned_reusable} reusable / {reuse.planned_dirty} dirty)"
    )
    if reuse.invalid:
        line += f", {reuse.invalid} invalid (re-executed; see warnings)"
    return line


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    config = _config_from_args(args)
    _apply_transport_flags(args)
    try:
        retry, chaos, resume = _fault_options(args)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _TraceSession(args) as session:
        report = StudyRunner(
            config,
            workers=args.workers,
            cache_dir=args.cache,
            transport=args.transport,
            retry=retry,
            chaos=chaos,
            resume=resume,
        ).run()
    print(f"datasets          : {report.datasets}")
    print(f"clusters created  : {report.clusters_created}")
    print(f"containers built  : {report.containers_built} "
          f"({report.containers_failed} failed)")
    for cloud, spend in sorted(report.spend_by_cloud.items()):
        print(f"spend on {cloud:3s}      : {fmt_usd(spend)}")
    if args.cache:
        print(f"run cache         : "
              f"{_fmt_cache_line(report.cache_hits, report.cache_misses, report.cache_invalid, report.cache_invalid_reasons)}")
    if report.transport is not None and report.transport.mode != "inline":
        # Diagnostics, not results: worker count changes this line, so
        # it goes to stderr to keep stdout byte-identical across runs.
        print(f"shard transport   : {report.transport.summary()}", file=sys.stderr)
    _print_faults(report.faults)
    _write_exports(
        args,
        csv_text=report.store.to_csv,
        json_text=lambda: json.dumps(report.to_json_dict(), indent=2, sort_keys=True),
        csv_label="dataset CSV",
        json_label="dataset JSON",
    )
    session.report()
    return 0


def _load_json_file(path: str, kind: str) -> dict:
    """Parsed JSON from ``path``, with read/parse errors as clean
    :class:`~repro.errors.ConfigurationError` usage messages."""
    from repro.errors import ConfigurationError

    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {kind} file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in {kind} file {path!r}: {exc}")


def _resolve_scenario(name: str) -> Scenario:
    """A registered preset name, or a path to a Scenario JSON file.

    Anything that looks like a path (a ``.json`` suffix or a path
    separator) loads via
    :meth:`~repro.scenarios.spec.Scenario.from_dict`; otherwise the
    preset registry wins — a stray local file that happens to share a
    preset's name never shadows the preset — and only then is an
    existing file accepted as a spec.
    """
    looks_like_path = name.endswith(".json") or os.sep in name
    if not looks_like_path and name in SCENARIOS:
        return scenario_lookup(name)
    if looks_like_path or os.path.exists(name):
        return Scenario.from_dict(_load_json_file(name, "scenario"))
    return scenario_lookup(name)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.scenarios.sweep import ScenarioSweep

    if args.scenario_command == "list":
        _print_scenarios()
        return 0

    # scenario run
    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        scenarios = [_resolve_scenario(name) for name in args.scenario]
        _apply_transport_flags(args)
        retry, chaos, resume = _fault_options(args)
        sweep = ScenarioSweep(
            _config_from_args(args),
            scenarios,
            workers=args.workers,
            cache_dir=args.cache,
            incremental=args.incremental,
            transport=args.transport,
            retry=retry,
            chaos=chaos,
            resume=resume,
        )
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _TraceSession(args) as session:
        result = sweep.run()
    print(result.render_deltas())
    print()
    for sid, report in result.reports.items():
        spend = sum(report.spend_by_cloud.values())
        line = (f"{sid:18s} datasets={report.datasets}  spend={fmt_usd(spend)}  "
                f"clusters={report.clusters_created}")
        if report.cache_invalid:
            line += f"  cache-invalid={report.cache_invalid}"
            if report.cache_invalid_reasons:
                detail = ",".join(
                    f"{label}x{count}"
                    for label, count in sorted(report.cache_invalid_reasons.items())
                )
                line += f" [{detail}]"
        print(line)
    if result.reuse is not None:
        print()
        print(f"cell reuse        : {_fmt_reuse_line(result.reuse)}")
    _print_faults(result.faults)
    if args.output or args.json_output:
        print()
    _write_exports(
        args,
        csv_text=lambda: result.delta_table().to_csv(),
        json_text=result.to_json,
        csv_label="delta CSV",
        json_label="sweep JSON",
    )
    session.report()
    return 0


def _ensemble_spec_from_args(args: argparse.Namespace, *, replicas: int):
    """The :class:`EnsembleSpec` both ``ensemble run`` and ``plan show``
    build from identical flags (``--spec`` wins over the flag grid)."""
    from repro.ensemble import EnsembleSpec

    if args.spec:
        return EnsembleSpec.from_dict(_load_json_file(args.spec, "ensemble spec"))
    return EnsembleSpec(
        n_replicas=replicas,
        base_seed=args.seed,
        scenarios=tuple(_resolve_scenario(name) for name in (args.scenario or ())),
        env_ids=_split_flag(args.envs),
        apps=_split_flag(args.apps),
        sizes=tuple(int(s) for s in args.sizes.split(",")) if args.sizes else None,
        iterations=args.iterations,
    )


def _cmd_ensemble(args: argparse.Namespace) -> int:
    from repro.ensemble import EnsembleRunner
    from repro.errors import ConfigurationError

    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        spec = _ensemble_spec_from_args(args, replicas=args.replicas)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _apply_transport_flags(args)
    try:
        retry, chaos, resume = _fault_options(args)
        runner = EnsembleRunner(
            spec,
            workers=args.workers,
            cache_dir=args.cache,
            incremental=args.incremental,
            transport=args.transport,
            retry=retry,
            chaos=chaos,
            resume=resume,
        )
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _TraceSession(args) as session:
        result = runner.run()
    print(result.render())
    print()
    print(f"worlds folded     : {result.worlds} "
          f"({len(spec.scenario_grid())} scenarios x {spec.n_replicas} replicas)")
    print(f"spec digest       : {spec.digest()}")
    if args.cache:
        print(f"world cache       : "
              f"{_fmt_cache_line(result.world_cache_hits, result.world_cache_misses, result.world_cache_invalid, result.world_cache_invalid_reasons)}")
    if result.reuse is not None:
        print(f"cell reuse        : {_fmt_reuse_line(result.reuse)}")
    if result.transport is not None and result.transport.mode != "inline":
        # Diagnostics on stderr: stdout stays byte-identical across
        # worker counts and transports.
        print(f"shard transport   : {result.transport.summary()}", file=sys.stderr)
    _print_faults(result.faults)
    _write_exports(
        args,
        csv_text=lambda: result.distribution_table().to_csv(),
        json_text=result.to_json,
        csv_label="distribution CSV",
        json_label="distribution JSON",
    )
    session.report()
    return 0


def _compile_plan_from_args(args: argparse.Namespace):
    """(compiled plan, kind label) from the shared ``plan`` flags."""
    from repro.plan import compile_ensemble, compile_scenarios, compile_study

    if args.spec or args.replicas is not None:
        spec = _ensemble_spec_from_args(args, replicas=args.replicas or 1)
        return compile_ensemble(spec, cache_dir=args.cache), "ensemble"
    if args.scenario:
        plan = compile_scenarios(
            _config_from_args(args),
            [_resolve_scenario(name) for name in args.scenario],
            cache_dir=args.cache,
        )
        return plan, "scenario sweep"
    return compile_study(_config_from_args(args), cache_dir=args.cache), "study"


def _cmd_plan_diff(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.plan import compile_study, diff_plans

    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        plan, _kind = _compile_plan_from_args(args)
        baseline, _rest = plan.split_baseline()
        if baseline.n_shards == 0:
            # No baseline world in the variant plan: diff against the
            # plain campaign the flags describe.
            baseline = compile_study(_config_from_args(args), cache_dir=args.cache)
        diff = diff_plans(baseline, plan)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_dump:
        print(json.dumps(diff.describe(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    if args.plan_command == "diff":
        return _cmd_plan_diff(args)

    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        plan, kind = _compile_plan_from_args(args)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    description = plan.describe()
    if args.json_dump:
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0

    totals = description["totals"]
    print(f"plan              : {kind}")
    print(f"digest            : {plan.digest()}")
    print(f"worlds            : {totals['worlds']}")
    print(f"shards            : {totals['shards']}")
    print(f"planned runs      : {totals['runs']}")
    if plan.cache_dir:
        print(f"cache             : {plan.cache_dir}")
    print()
    print(f"{'world':>5s}  {'scenario':20s} {'seed':>6s} {'replica':>7s} "
          f"{'shards':>6s} {'runs':>6s}")
    for world in description["worlds"]:
        print(f"{world['world']:5d}  {world['scenario']:20s} {world['seed']:6d} "
              f"{world['replica']:7d} {world['shards']:6d} {world['runs']:6d}")
    if args.shards:
        print()
        print(f"{'shard':>5s} {'world':>5s}  {'env':28s} {'scale':>5s} "
              f"{'iters':>5s}  apps")
        for shard in plan.shards:
            print(f"{shard.index:5d} {shard.world:5d}  {shard.env_id:28s} "
                  f"{shard.scale:5d} {shard.iterations:5d}  "
                  f"{','.join(shard.apps)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.report import generate_report

    text = generate_report(seed=args.seed, iterations=args.iterations)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


_EPILOG = """\
examples:
  python -m repro list
      show every experiment, environment, and application
  python -m repro experiment fig2
      regenerate Figure 2 (AMG2023 scaling) and verify its paper claims
  python -m repro run cpu-eks-aws amg2023 64
      one simulated AMG2023 run on EKS at 64 nodes
  python -m repro study --workers 4 --cache .repro-cache
      the default campaign, sharded over 4 processes with run caching
  python -m repro study --envs cpu-eks-aws --apps lammps --sizes 32,64
      a focused campaign over one environment
  python -m repro plan show --workers 4 --replicas 8
      compile the matching ensemble to its RunPlan and inspect it
      (worlds, shards, run counts, digest) without executing anything
  python -m repro scenario run --scenario spot-everything --workers 4
      the campaign under a what-if overlay, vs the baseline
  python -m repro ensemble run --replicas 8 --workers 4
      replicate the campaign over 8 seeds; distributions, not points
  python -m repro campaign run --spec campaign.json --workers 4
      find the cheapest config that meets the SLA: smoke-prune, grid,
      AB vs baseline, select the winner, publish the report
  python -m repro study --workers 4 --trace study-trace.json
      record spans across every worker; then
      `python -m repro trace summarize study-trace.json`
  python -m repro report -o report.md
      render the full evaluation report to markdown
"""

_STUDY_EPILOG = """\
examples:
  python -m repro study
      serial campaign: every environment and app, 2 iterations
  python -m repro study --workers 4
      shard (environment, size) cells over 4 worker processes;
      the dataset is byte-identical to the serial run
  python -m repro study --workers 4 --cache .repro-cache
      also cache every run; a repeat campaign replays from the cache
  python -m repro study --seed 7 --iterations 5 --output study.csv
      the paper-scale iteration count, dataset exported as CSV
  python -m repro study --output study.csv --json study.json
      the same dataset as CSV and as a JSON snapshot (summary + records)
  python -m repro study --workers 4 --chaos kill=0.1,transient=0.05
      a recovery drill: deterministically kill workers and inject
      transient failures; the retried dataset is still byte-identical
  python -m repro study --workers 4 --cache .repro-cache --resume
      continue an interrupted campaign: journaled cells re-attach,
      only unfinished cells simulate
"""


_PLAN_EPILOG = """\
examples:
  python -m repro plan show
      the default campaign as a RunPlan: one world, its (env, size)
      shards, and the explicit run count — nothing executes
  python -m repro plan show --scenario spot-everything --scenario price-war
      a 3-world scenario sweep (baseline injected first)
  python -m repro plan show --replicas 8 --scenario spot-everything
      the ensemble grid: scenario-major x replicas, replica r at seed+r
  python -m repro plan show --envs cpu-eks-aws --sizes 32,64 --shards
      list every compiled shard of a focused campaign
  python -m repro plan show --json
      the full compiled plan as JSON (worlds, shards, totals)
  python -m repro plan diff --scenario azure-price-spike
      classify every cell of the sweep plan: cells the scenario cannot
      touch are reusable (attachable from the baseline's cache), cells
      it perturbs are dirty, with the responsible overlay hooks named
  python -m repro plan diff --scenario spot-everything --json
      the same classification as JSON
"""


_SCENARIO_EPILOG = """\
examples:
  python -m repro scenario list
      show every registered what-if scenario
  python -m repro scenario run --scenario spot-everything --workers 4
      the default campaign under an all-spot market, vs the baseline
  python -m repro scenario run --scenario quota-crunch --scenario laggy-bills
      several counterfactual worlds in one sweep
  python -m repro scenario run --scenario degraded-efa \\
      --envs cpu-eks-aws --apps osu,minife --sizes 64 --output deltas.csv
      a focused sweep, delta table exported as CSV
  python -m repro scenario run --scenario my-scenario.json
      a scenario loaded from a JSON spec file instead of a preset
  python -m repro scenario run --scenario azure-price-spike \\
      --cache .repro-cache --incremental
      diff-aware sweep: the baseline runs first, then each scenario
      world re-simulates only the cells its overlays touch and attaches
      the rest from the cache — byte-identical, a fraction of the cost
"""


_ENSEMBLE_EPILOG = """\
examples:
  python -m repro ensemble run --replicas 8 --workers 4
      replicate the default campaign over 8 seeds and print
      distributions (mean ± 95% CI, p10/p50/p90) per cell
  python -m repro ensemble run --replicas 8 --scenario spot-everything
      seed grid x scenario grid: exceedance probabilities show how
      often the spot world keeps up with the seed study's numbers
  python -m repro ensemble run --replicas 4 --scenario my-scenario.json \\
      --envs cpu-eks-aws --apps amg2023 --sizes 32 --cache .repro-cache
      a focused ensemble with per-world summary caching (a warm
      re-run folds cached summaries and simulates nothing)
  python -m repro ensemble run --spec ensemble.json --output dist.csv --json dist.json
      the whole plan from a declarative EnsembleSpec JSON file,
      exported as CSV and JSON
"""


_CAMPAIGN_EPILOG = """\
examples:
  python -m repro campaign run --spec campaign.json --workers 4
      the five-stage pipeline: smoke-prune the search space, measure
      survivors at full replication (reusing everything smoke already
      simulated), AB against the baseline, select the cheapest config
      that meets the SLA, publish the report
  python -m repro campaign run --spec campaign.json \\
      --cache .repro-cache --output frontier.csv --json report.json
      persist the run cache across campaigns (a re-run from the same
      spec replays smoke from the world cache), export the Pareto
      frontier as CSV and the CampaignReport as JSON
  python -m repro campaign run --spec campaign.json --trace trace.json
      also record telemetry; the summary prints per-stage
      (campaign.smoke/grid/ab/select/publish) self-time rows
  python -m repro campaign show --spec campaign.json
      the campaign's digest, gates, budgets, and compiled stage shapes
      — without executing anything

a minimal spec file:
  {"sla": {"min_exceedance": 0.5, "max_cost_per_fom": 2.0},
   "scenarios": ["price-war", "spot-aws"],
   "env_ids": ["cpu-eks-aws"], "apps": ["amg2023"], "sizes": [64],
   "smoke": {"replicas": 1, "margin": 0.5}, "grid": {"replicas": 3}}
"""


def _campaign_spec_from_args(args: argparse.Namespace):
    """The :class:`CampaignSpec` named by ``--spec`` (shared run/show)."""
    from repro.campaigns import CampaignSpec

    return CampaignSpec.from_dict(_load_json_file(args.spec, "campaign spec"))


def _cmd_campaign_show(args: argparse.Namespace) -> int:
    from repro.plan import compile_ensemble

    spec = _campaign_spec_from_args(args)
    if args.json_dump:
        smoke_plan = compile_ensemble(spec.smoke_spec())
        grid_plan = compile_ensemble(spec.grid_spec(spec.scenarios))
        print(json.dumps(
            {
                "campaign": spec.to_dict(),
                "digest": spec.digest(),
                "smoke": smoke_plan.describe()["totals"],
                "grid_upper_bound": grid_plan.describe()["totals"],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"campaign          : {spec.digest()}")
    print(f"objective         : {spec.objective.direction} {spec.objective.metric}")
    sla = spec.sla
    gates = [f"exceedance >= {sla.min_exceedance}",
             f"completion >= {sla.min_completion}"]
    if sla.max_cost_per_fom is not None:
        gates.append(f"cost/FOM <= {sla.max_cost_per_fom}")
    print(f"sla               : {', '.join(gates)}")
    print(f"scenarios         : {len(spec.scenarios)} "
          f"({', '.join(s.scenario_id for s in spec.scenarios) or 'baseline only'})")
    for stage, budget, plan in (
        ("smoke", spec.smoke, compile_ensemble(spec.smoke_spec())),
        ("grid", spec.grid, compile_ensemble(spec.grid_spec(spec.scenarios))),
    ):
        totals = plan.describe()["totals"]
        bound = " (upper bound before pruning)" if stage == "grid" else ""
        print(f"{stage:18s}: {budget.replicas} replica(s), margin {budget.margin} "
              f"-> {totals['worlds']} worlds, {totals['shards']} cells, "
              f"{totals['runs']} runs{bound}")
    print("stages            : smoke -> grid -> ab -> select -> publish")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    if args.campaign_command == "show":
        try:
            return _cmd_campaign_show(args)
        except (ConfigurationError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # campaign run
    from repro.campaigns import CampaignRunner
    from repro.reporting.frontier import frontier_table

    error = _cache_dir_error(args.cache)
    if error:
        print(error, file=sys.stderr)
        return 2
    _apply_transport_flags(args)
    try:
        retry, chaos, resume = _fault_options(args)
        spec = _campaign_spec_from_args(args)
        runner = CampaignRunner(
            spec,
            workers=args.workers,
            cache_dir=args.cache,
            transport=args.transport,
            retry=retry,
            chaos=chaos,
            resume=resume,
        )
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _TraceSession(args) as session:
        result = runner.run()
    print(result.render())
    print()
    print(f"campaign digest   : {spec.digest()}")
    print(f"smoke             : {result.smoke.worlds} worlds folded, "
          f"{len(result.pruned)} candidates pruned, "
          f"{len(result.survivors)} survived")
    grid_line = f"grid              : {result.grid.worlds} worlds folded"
    if result.grid.reuse is not None:
        grid_line += f" ({_fmt_reuse_line(result.grid.reuse)})"
    print(grid_line)
    if args.cache:
        print(f"world cache       : "
              f"{_fmt_cache_line(result.smoke.world_cache_hits + result.grid.world_cache_hits, result.smoke.world_cache_misses + result.grid.world_cache_misses, result.smoke.world_cache_invalid + result.grid.world_cache_invalid)}")
    for label, stage_result in (("smoke transport", result.smoke),
                                ("grid transport", result.grid)):
        if stage_result.transport is not None and stage_result.transport.mode != "inline":
            # Diagnostics on stderr, like the study/ensemble lines.
            print(f"{label:18s}: {stage_result.transport.summary()}", file=sys.stderr)
    from repro.parallel.pool import FaultStats as _FaultStats

    campaign_faults = _FaultStats()
    for stage_result in (result.smoke, result.grid):
        if stage_result.faults is not None:
            campaign_faults.add(stage_result.faults)
    _print_faults(campaign_faults)
    _write_exports(
        args,
        csv_text=lambda: frontier_table(result).to_csv(),
        json_text=lambda: result.report.to_json() + "\n",
        csv_label="frontier CSV",
        json_label="campaign report",
    )
    session.report()
    return 0


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by every executing subcommand."""
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per shard before the final inline-serial rescue "
        "(default: 3); transient failures retry with exponential backoff "
        "and deterministic jitter, fatal ones fail fast",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline: a shard exceeding it is requeued onto "
        "a rebuilt worker pool (default: no deadline)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="re-attach cells a previous interrupted run journaled "
        "(requires --cache); the finished dataset is byte-identical to "
        "an uninterrupted run",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection for recovery drills, e.g. "
        "'kill=0.1,transient=0.05,seed=7' (kinds: kill, transient, "
        "corrupt, delay, abort; rates in [0,1]); a surviving run's "
        "dataset is byte-identical to an uninjected one",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    """The ``--trace FILE`` flag shared by every executing subcommand."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans and counters for this run (including every "
        "worker process) and write the merged trace document here; "
        "inspect it with `repro trace summarize` / `repro trace chrome`. "
        "Results are byte-identical with or without tracing.",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Usability Evaluation of "
        "Cloud for HPC Applications' (SC 2025)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, environments, apps")

    p_exp = sub.add_parser(
        "experiment",
        help="regenerate one table/figure",
        epilog="example: python -m repro experiment table4 --iterations 5",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--iterations", type=int, default=None)

    p_run = sub.add_parser(
        "run",
        help="run one app on one environment",
        epilog="example: python -m repro run gpu-aks-az lammps 128 --seed 3",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_run.add_argument("env", choices=sorted(ENVIRONMENTS))
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("scale", type=int)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--iteration", type=int, default=0)

    # Campaign selection + execution flags shared by `study` and
    # `scenario run` (parsed by _config_from_args either way).
    campaign_options = argparse.ArgumentParser(add_help=False)
    campaign_options.add_argument("--envs", help="comma-separated environment ids")
    campaign_options.add_argument("--apps", help="comma-separated app names")
    campaign_options.add_argument("--sizes", help="comma-separated scales")
    campaign_options.add_argument("--iterations", type=int, default=2)
    campaign_options.add_argument("--seed", type=int, default=0)
    campaign_options.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded execution (default: 1, serial)",
    )
    campaign_options.add_argument(
        "--cache",
        metavar="DIR",
        help="content-addressed run-cache directory; repeat campaigns "
        "replay cached runs instead of re-simulating (keys embed the "
        "scenario digest, so what-if worlds never collide)",
    )
    campaign_options.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="how shard results cross back from workers: shared-memory "
        "blocks (shm, zero-copy), plain pickling, or probe-and-prefer-"
        "shm (auto, the default); results are byte-identical either way",
    )
    campaign_options.add_argument(
        "--spill-mb",
        type=float,
        default=None,
        metavar="MB",
        help="spill result columns bigger than this to unlinked temp-"
        "file mmaps (out-of-core stores; default: keep everything in "
        "RAM).  Applies to this process and every worker",
    )
    _add_fault_flags(campaign_options)

    p_study = sub.add_parser(
        "study",
        help="run a study campaign",
        epilog=_STUDY_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_study.add_argument("--output", help="write dataset CSV here")
    p_study.add_argument(
        "--json",
        dest="json_output",
        metavar="FILE",
        help="write a JSON snapshot (summary + every record) here",
    )
    _add_trace_flag(p_study)

    p_plan = sub.add_parser(
        "plan",
        help="the execution planner (compile campaigns without running them)",
        epilog=_PLAN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    plan_sub = p_plan.add_subparsers(dest="plan_command", required=True)
    p_plan_show = plan_sub.add_parser(
        "show",
        help="compile a study/sweep/ensemble to its RunPlan and print it",
        epilog=_PLAN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_plan_show.add_argument(
        "--scenario",
        action="append",
        metavar="NAME|FILE",
        help="what-if world to include (repeatable): a preset name or a "
        "Scenario JSON spec file; compiles a scenario-sweep plan",
    )
    p_plan_show.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="compile an ensemble plan with N replicas per scenario "
        "(replica r at seed --seed + r)",
    )
    p_plan_show.add_argument(
        "--spec",
        metavar="FILE",
        help="compile an ensemble plan from an EnsembleSpec JSON file",
    )
    p_plan_show.add_argument(
        "--shards",
        action="store_true",
        help="also list every compiled shard",
    )
    p_plan_show.add_argument(
        "--json",
        dest="json_dump",
        action="store_true",
        help="print the compiled plan as JSON instead of tables",
    )
    p_plan_diff = plan_sub.add_parser(
        "diff",
        help="classify every cell of a compiled plan as reusable or dirty "
        "against its baseline (what incremental execution would attach)",
        epilog=_PLAN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_plan_diff.add_argument(
        "--scenario",
        action="append",
        metavar="NAME|FILE",
        help="what-if world to include (repeatable): a preset name or a "
        "Scenario JSON spec file; diffs a scenario-sweep plan",
    )
    p_plan_diff.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="diff an ensemble plan with N replicas per scenario",
    )
    p_plan_diff.add_argument(
        "--spec",
        metavar="FILE",
        help="diff an ensemble plan from an EnsembleSpec JSON file",
    )
    p_plan_diff.add_argument(
        "--json",
        dest="json_dump",
        action="store_true",
        help="print the classification as JSON instead of text",
    )

    p_scenario = sub.add_parser(
        "scenario",
        help="what-if scenario engine (counterfactual studies)",
        epilog=_SCENARIO_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    scenario_sub = p_scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list registered scenarios")
    p_scn_run = scenario_sub.add_parser(
        "run",
        help="run scenarios against the baseline and print the delta report",
        epilog=_SCENARIO_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_scn_run.add_argument(
        "--scenario",
        action="append",
        required=True,
        metavar="NAME|FILE",
        help="scenario to run (repeatable): a preset name "
        "(see `repro scenario list`) or a path to a Scenario JSON spec file",
    )
    p_scn_run.add_argument(
        "--incremental",
        action="store_true",
        help="diff-aware execution (requires --cache): run the baseline "
        "first, then attach every cell a scenario cannot touch from the "
        "cell cache and simulate only the touched cells — byte-identical "
        "results, a fraction of the cost",
    )
    p_scn_run.add_argument("--output", help="write the delta table CSV here")
    p_scn_run.add_argument(
        "--json",
        dest="json_output",
        metavar="FILE",
        help="write the sweep as JSON (per-world summaries + delta rows) here",
    )
    _add_trace_flag(p_scn_run)

    p_ensemble = sub.add_parser(
        "ensemble",
        help="Monte-Carlo replication engine (distributions, not point estimates)",
        epilog=_ENSEMBLE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ensemble_sub = p_ensemble.add_subparsers(dest="ensemble_command", required=True)
    p_ens_run = ensemble_sub.add_parser(
        "run",
        help="replicate the campaign across a seed grid x scenario grid",
        epilog=_ENSEMBLE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[campaign_options],
    )
    p_ens_run.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="independent replicas per scenario; replica r runs at "
        "seed (--seed + r) (default: 3)",
    )
    p_ens_run.add_argument(
        "--scenario",
        action="append",
        metavar="NAME|FILE",
        help="counterfactual world to replicate alongside the baseline "
        "(repeatable): a preset name or a Scenario JSON spec file",
    )
    p_ens_run.add_argument(
        "--spec",
        metavar="FILE",
        help="load the whole plan from an EnsembleSpec JSON file "
        "(overrides --replicas/--scenario and the campaign selection)",
    )
    p_ens_run.add_argument(
        "--incremental",
        action="store_true",
        help="diff-aware execution (requires --cache): run the baseline "
        "replicas first, then attach untouched cells from the cell cache",
    )
    p_ens_run.add_argument("--output", help="write the distribution table CSV here")
    p_ens_run.add_argument(
        "--json",
        dest="json_output",
        metavar="FILE",
        help="write the full distribution dataset as JSON here",
    )
    _add_trace_flag(p_ens_run)

    p_campaign = sub.add_parser(
        "campaign",
        help="staged experiment campaigns: smoke -> grid -> ab -> select -> publish",
        epilog=_CAMPAIGN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command", required=True)
    p_camp_run = campaign_sub.add_parser(
        "run",
        help="run the five-stage pipeline and publish the campaign report",
        epilog=_CAMPAIGN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_camp_run.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="the CampaignSpec JSON file: objective, SLA gates, scenario "
        "search space, per-stage budgets",
    )
    p_camp_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded execution (default: 1, serial); "
        "the frontier and the winner are byte-identical for any count",
    )
    p_camp_run.add_argument(
        "--cache",
        metavar="DIR",
        help="run-cache directory shared by both stages (default: a "
        "private temporary directory); persist it and a re-run from the "
        "same spec replays the smoke stage from the world cache",
    )
    p_camp_run.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="shard-result transport (see `repro study --help`)",
    )
    p_camp_run.add_argument(
        "--spill-mb",
        type=float,
        default=None,
        metavar="MB",
        help="out-of-core column threshold (see `repro study --help`)",
    )
    _add_fault_flags(p_camp_run)
    p_camp_run.add_argument("--output", help="write the Pareto frontier CSV here")
    p_camp_run.add_argument(
        "--json",
        dest="json_output",
        metavar="FILE",
        help="write the CampaignReport JSON artifact here",
    )
    _add_trace_flag(p_camp_run)
    p_camp_show = campaign_sub.add_parser(
        "show",
        help="print the campaign's gates, budgets, and compiled stage "
        "shapes without executing",
        epilog=_CAMPAIGN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_camp_show.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="the CampaignSpec JSON file to inspect",
    )
    p_camp_show.add_argument(
        "--json",
        dest="json_dump",
        action="store_true",
        help="print the spec, digest, and stage totals as JSON",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the vectorization benchmark suite and print speedups",
        epilog=(
            "examples:\n"
            "  python -m repro bench\n"
            "      the full ~10.5k-record campaign: seed vs batched vs\n"
            "      block pipelines, plus rng/transport components\n"
            "  python -m repro bench --output BENCH_vector.json\n"
            "      also write the machine-readable artifact CI uploads\n"
            "  python -m repro bench --quick\n"
            "      a small smoke campaign (seconds, not minutes)"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_bench.add_argument(
        "--output",
        metavar="FILE",
        help="write the machine-readable benchmark payload here",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="run the reduced smoke campaign instead of the full one",
    )
    p_bench.add_argument(
        "--transport",
        action="store_true",
        help=(
            "run the zero-copy transport benchmark instead: shm "
            "descriptors vs pickled columns on a ~1M-record store, "
            "plus in-RAM vs spilled peak RSS"
        ),
    )
    p_bench.add_argument(
        "--records",
        type=int,
        default=1_000_000,
        metavar="N",
        help="store size for --transport (default: 1,000,000)",
    )
    _add_trace_flag(p_bench)

    p_trace = sub.add_parser(
        "trace",
        help="inspect trace documents written by --trace",
        epilog=(
            "examples:\n"
            "  python -m repro study --workers 4 --trace study-trace.json\n"
            "      record a trace while the campaign runs\n"
            "  python -m repro trace summarize study-trace.json\n"
            "      self-time by phase, counters, and per-worker coverage\n"
            "  python -m repro trace chrome study-trace.json -o study.chrome.json\n"
            "      convert to Chrome trace_event JSON for chrome://tracing\n"
            "      or https://ui.perfetto.dev"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_sum = trace_sub.add_parser(
        "summarize",
        help="print self-time by phase plus counters for a trace file",
    )
    p_trace_sum.add_argument("file", help="trace document written by --trace")
    p_trace_chrome = trace_sub.add_parser(
        "chrome",
        help="convert a trace file to Chrome trace_event JSON",
    )
    p_trace_chrome.add_argument("file", help="trace document written by --trace")
    p_trace_chrome.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="output path (default: <file>.chrome.json)",
    )

    p_report = sub.add_parser(
        "report",
        help="render the full evaluation report",
        epilog="example: python -m repro report --iterations 3 -o report.md",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--iterations", type=int, default=None)
    p_report.add_argument("-o", "--output", help="write markdown here")
    return parser


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import QUICK_CAMPAIGN, render_table as render_bench, run_bench, write_artifact

    with _TraceSession(args) as session:
        if args.transport:
            from repro.bench import render_transport_table, run_transport_bench

            render_bench = render_transport_table
            payload = run_transport_bench(
                n_records=args.records, repeats=1 if args.quick else 3
            )
        else:
            payload = run_bench(QUICK_CAMPAIGN if args.quick else None)
    if session.tracer is not None:
        from repro.telemetry import phase_rows

        payload["phases"] = phase_rows(session.doc())
    print(render_bench(payload))
    if args.output:
        write_artifact(payload, args.output)
        print(f"\nwrote {args.output}")
    session.report()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.telemetry import load_trace, render_summary, write_chrome_trace

    try:
        doc = load_trace(args.file)
        if args.trace_command == "summarize":
            print(render_summary(doc))
            return 0
        # trace chrome
        out = args.output or f"{args.file}.chrome.json"
        write_chrome_trace(doc, out)
        print(f"wrote {out} (load in chrome://tracing or https://ui.perfetto.dev)")
        return 0
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "run": _cmd_run,
        "study": _cmd_study,
        "plan": _cmd_plan,
        "scenario": _cmd_scenario,
        "ensemble": _cmd_ensemble,
        "campaign": _cmd_campaign,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

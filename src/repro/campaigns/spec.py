"""Campaign specs: declare the search, the budget, and the bar.

A :class:`CampaignSpec` turns "run what I typed" into "find the
cheapest config that meets the SLA".  It names four things:

* an **objective** — the scalar the campaign minimizes (cost per unit
  of figure-of-merit);
* an **SLA gate** — the bar a config must clear to be selectable:
  a minimum exceedance probability against the seed study's
  point-estimate FOM, a minimum completion rate, and an optional
  absolute cost-per-FOM ceiling;
* a **search space** — a scenario grid (validated by
  :func:`~repro.scenarios.presets.scenario_grid`, exactly like an
  ensemble) crossed with the campaign's (env, app, size) cells; every
  *candidate* is one (scenario, env, app, scale) coordinate;
* **per-stage budgets** — how many replicas the cheap SMOKE pass and
  the full GRID pass each spend, and how far SMOKE relaxes the SLA
  (``margin``) so noisy one-replica estimates only prune configs that
  miss the bar by a wide margin.

Like :class:`~repro.ensemble.spec.EnsembleSpec` it is a pure value —
dict/JSON loadable, round-trippable, with a stable :meth:`digest` — and
never *does* anything; :class:`~repro.campaigns.runner.CampaignRunner`
executes it.  Both stages share ``iterations`` and ``base_seed`` on
purpose: cell- and world-level cache keys embed them, so everything the
smoke stage simulates is attachable by the grid stage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.ensemble.spec import EnsembleSpec
from repro.errors import ConfigurationError
from repro.scenarios.presets import scenario as scenario_lookup, scenario_grid
from repro.scenarios.spec import Scenario


def _require_unique(values, what: str) -> None:
    """Reject duplicate entries, naming every offender at once."""
    counts: dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    duplicates = [v for v, n in counts.items() if n > 1]
    if duplicates:
        detail = ", ".join(f"{v!r} x{counts[v]}" for v in duplicates)
        raise ConfigurationError(
            f"duplicate {what} in campaign search space: {detail}"
        )


def _check_unknown(data: dict, allowed: tuple[str, ...], kind: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} fields: {sorted(unknown)} (known: {sorted(allowed)})"
        )


@dataclass(frozen=True)
class Objective:
    """What the campaign optimizes.

    ``cost_per_fom`` — mean dollar cost of a cell divided by its mean
    figure of merit — is the only metric today; ``direction`` is pinned
    to ``min`` (FOMs are higher-is-better throughout the study, so
    dollars per unit of FOM is the natural price of performance).
    """

    metric: str = "cost_per_fom"
    direction: str = "min"

    def __post_init__(self) -> None:
        if self.metric != "cost_per_fom":
            raise ConfigurationError(
                f"unknown objective metric {self.metric!r} "
                "(supported: 'cost_per_fom')"
            )
        if self.direction != "min":
            raise ConfigurationError(
                f"unknown objective direction {self.direction!r} (supported: 'min')"
            )

    def to_dict(self) -> dict:
        return {"metric": self.metric, "direction": self.direction}

    @classmethod
    def from_dict(cls, data: dict) -> "Objective":
        _check_unknown(data, ("metric", "direction"), "objective")
        return cls(
            metric=data.get("metric", "cost_per_fom"),
            direction=data.get("direction", "min"),
        )


@dataclass(frozen=True)
class SlaGate:
    """The bar a candidate must clear to be selectable.

    ``min_exceedance`` bounds P(FOM >= seed-study point estimate): the
    probability, over replicas, that the config keeps up with the
    numbers the paper published for that cell.  ``min_completion``
    bounds the completed-run rate.  ``max_cost_per_fom`` (optional) is
    an absolute price ceiling on the objective itself.
    """

    min_exceedance: float = 0.25
    min_completion: float = 0.5
    max_cost_per_fom: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_exceedance <= 1.0:
            raise ConfigurationError(
                f"sla.min_exceedance must be in [0, 1], got {self.min_exceedance}"
            )
        if not 0.0 <= self.min_completion <= 1.0:
            raise ConfigurationError(
                f"sla.min_completion must be in [0, 1], got {self.min_completion}"
            )
        if self.max_cost_per_fom is not None and self.max_cost_per_fom <= 0:
            raise ConfigurationError(
                f"sla.max_cost_per_fom must be positive, got {self.max_cost_per_fom}"
            )

    def to_dict(self) -> dict:
        out: dict = {
            "min_exceedance": self.min_exceedance,
            "min_completion": self.min_completion,
        }
        if self.max_cost_per_fom is not None:
            out["max_cost_per_fom"] = self.max_cost_per_fom
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SlaGate":
        _check_unknown(
            data, ("min_exceedance", "min_completion", "max_cost_per_fom"), "sla"
        )
        ceiling = data.get("max_cost_per_fom")
        return cls(
            min_exceedance=float(data.get("min_exceedance", 0.25)),
            min_completion=float(data.get("min_completion", 0.5)),
            max_cost_per_fom=None if ceiling is None else float(ceiling),
        )


@dataclass(frozen=True)
class StageBudget:
    """How much one stage may spend, and how forgiving its gate is.

    ``margin`` relaxes the SLA for pruning: bounds are multiplied by it
    and ceilings divided by it, so at ``margin=0.5`` a config survives
    SMOKE while it misses the bar by less than 2x.  GRID always judges
    at full strictness (``margin=1``).
    """

    replicas: int = 1
    margin: float = 1.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(
                f"a stage needs replicas >= 1, got {self.replicas}"
            )
        if not 0.0 < self.margin <= 1.0:
            raise ConfigurationError(
                f"a stage margin must be in (0, 1], got {self.margin}"
            )

    def to_dict(self) -> dict:
        return {"replicas": self.replicas, "margin": self.margin}

    @classmethod
    def from_dict(cls, data: dict, *, replicas: int, margin: float) -> "StageBudget":
        _check_unknown(data, ("replicas", "margin"), "stage budget")
        return cls(
            replicas=int(data.get("replicas", replicas)),
            margin=float(data.get("margin", margin)),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: objective x SLA x search space x budgets."""

    objective: Objective = field(default_factory=Objective)
    sla: SlaGate = field(default_factory=SlaGate)
    #: counterfactual configurations to search over; the baseline is
    #: always a candidate too (it anchors thresholds and the AB stage)
    scenarios: tuple[Scenario, ...] = ()
    #: campaign cell slice, exactly as on an ensemble spec
    env_ids: tuple[str, ...] | None = None
    apps: tuple[str, ...] | None = None
    sizes: tuple[int, ...] | None = None
    #: shared by both stages so the grid stage can attach smoke cells
    iterations: int = 2
    base_seed: int = 0
    smoke: StageBudget = field(default_factory=lambda: StageBudget(replicas=1, margin=0.5))
    grid: StageBudget = field(default_factory=lambda: StageBudget(replicas=3, margin=1.0))

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("a campaign needs iterations >= 1")
        if self.grid.replicas < self.smoke.replicas:
            raise ConfigurationError(
                "grid.replicas must be >= smoke.replicas — the grid stage "
                "is the full-fidelity pass"
            )
        # Same scenario-grid invariants as a sweep or ensemble (unique
        # ids, 'baseline' reserved), via the one shared implementation
        # that names every duplicate.
        try:
            scenario_grid(self.scenarios, include_baseline=False)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        # ...and the same duplicate check on the cell axes: a repeated
        # env/app/size would double-count candidates and skew spend.
        if self.env_ids is not None:
            _require_unique(self.env_ids, "environment ids")
        if self.apps is not None:
            _require_unique(self.apps, "apps")
        if self.sizes is not None:
            _require_unique(self.sizes, "sizes")

    # -- derived -------------------------------------------------------------

    def smoke_spec(self) -> EnsembleSpec:
        """The SMOKE stage's ensemble: low replicas over the full grid."""
        return EnsembleSpec(
            n_replicas=self.smoke.replicas,
            base_seed=self.base_seed,
            scenarios=self.scenarios,
            env_ids=self.env_ids,
            apps=self.apps,
            sizes=self.sizes,
            iterations=self.iterations,
        )

    def grid_spec(self, scenarios: tuple[Scenario, ...]) -> EnsembleSpec:
        """The GRID stage's ensemble over the surviving scenarios.

        The cell axes stay the full campaign slice — narrowing them
        would change world-level cache keys and orphan everything the
        smoke stage cached, and the baseline cells are needed as AB
        comparators regardless.  Pruning narrows the *scenario* axis.
        """
        return EnsembleSpec(
            n_replicas=self.grid.replicas,
            base_seed=self.base_seed,
            scenarios=tuple(scenarios),
            env_ids=self.env_ids,
            apps=self.apps,
            sizes=self.sizes,
            iterations=self.iterations,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`."""
        out: dict = {
            "objective": self.objective.to_dict(),
            "sla": self.sla.to_dict(),
            "iterations": self.iterations,
            "base_seed": self.base_seed,
            "smoke": self.smoke.to_dict(),
            "grid": self.grid.to_dict(),
        }
        if self.scenarios:
            out["scenarios"] = [scn.to_dict() for scn in self.scenarios]
        if self.env_ids is not None:
            out["env_ids"] = list(self.env_ids)
        if self.apps is not None:
            out["apps"] = list(self.apps)
        if self.sizes is not None:
            out["sizes"] = list(self.sizes)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Build a spec from a plain dict (e.g. parsed JSON).

        ``scenarios`` entries may be scenario dicts or registered preset
        names, exactly as on :meth:`EnsembleSpec.from_dict`.
        """
        allowed = (
            "objective", "sla", "scenarios", "env_ids", "apps", "sizes",
            "iterations", "base_seed", "smoke", "grid",
        )
        _check_unknown(data, allowed, "campaign")

        def _scenario(entry) -> Scenario:
            if isinstance(entry, str):
                return scenario_lookup(entry)
            return Scenario.from_dict(entry)

        def _ids(value):
            return None if value is None else tuple(value)

        return cls(
            objective=Objective.from_dict(data.get("objective", {})),
            sla=SlaGate.from_dict(data.get("sla", {})),
            scenarios=tuple(_scenario(s) for s in data.get("scenarios", ())),
            env_ids=_ids(data.get("env_ids")),
            apps=_ids(data.get("apps")),
            sizes=None if data.get("sizes") is None
            else tuple(int(s) for s in data["sizes"]),
            iterations=int(data.get("iterations", 2)),
            base_seed=int(data.get("base_seed", 0)),
            smoke=StageBudget.from_dict(data.get("smoke", {}), replicas=1, margin=0.5),
            grid=StageBudget.from_dict(data.get("grid", {}), replicas=3, margin=1.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the campaign's semantics.

        Scenario free-text descriptions do not participate (their
        semantic digests do); everything that shapes the search — the
        objective, the gates, the grid, the budgets — does.
        """
        payload = self.to_dict()
        payload["scenarios"] = [scn.digest() for scn in self.scenarios]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

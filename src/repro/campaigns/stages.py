"""The typed stage pipeline: SMOKE → GRID → AB → SELECT → PUBLISH.

Each stage is a pure function from the previous stages' values; the
runner (:mod:`repro.campaigns.runner`) merely sequences them inside
telemetry spans.  Keeping the stage logic here, free of execution
concerns, is what makes the whole pipeline deterministic: given the
same two ensemble results, every stage output is byte-identical no
matter how those results were computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaigns.frontier import Candidate, CandidateKey
from repro.ensemble.runner import EnsembleResult
from repro.scenarios.spec import Scenario

#: the pipeline, in order; `meta`/reports index stages by these names
STAGES = ("smoke", "grid", "ab", "select", "publish")


@dataclass
class StageRecord:
    """One stage's deterministic summary for the published report."""

    name: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"stage": self.name, **self.detail}


def partition_survivors(
    candidates: list[Candidate],
) -> tuple[list[Candidate], list[Candidate]]:
    """(survivors, pruned) under the margin the candidates were gated at."""
    survivors = [c for c in candidates if c.sla_ok]
    pruned = [c for c in candidates if not c.sla_ok]
    return survivors, pruned


def surviving_scenarios(
    spec_scenarios: tuple[Scenario, ...], survivors: list[Candidate]
) -> tuple[Scenario, ...]:
    """The scenarios the GRID stage must still run, in spec order.

    A scenario advances iff at least one of *its own* candidates — the
    cells its footprint touches — survived the smoke gate.  (Untouched
    cells were never candidates; the baseline candidate represents
    them, and the baseline always runs in the grid stage regardless —
    it anchors thresholds and the AB comparisons.)
    """
    alive = {c.scenario_id for c in survivors if not c.is_baseline}
    return tuple(scn for scn in spec_scenarios if scn.scenario_id in alive)


def ensemble_accounting(result: EnsembleResult) -> dict:
    """One ensemble's reuse/cache accounting for a stage record.

    Deterministic for a fixed starting cache state: world probes happen
    sequentially in the main process and the diff/attach path is pure,
    so workers 1 and 4 report the same numbers.
    """
    out = {
        "worlds": result.worlds,
        "world_cache": {
            "hits": result.world_cache_hits,
            "misses": result.world_cache_misses,
            "invalid": result.world_cache_invalid,
        },
    }
    if result.reuse is not None:
        out["cell_reuse"] = result.reuse.to_dict()
    return out


def ab_rows(grid_candidates: list[Candidate]) -> list[dict]:
    """AB: every scenario candidate against its baseline-world cell.

    Deltas are candidate minus baseline on the same (env, app, scale)
    coordinate; ``significant`` marks cost deltas whose 95% Student-t
    confidence intervals (from the per-replica samples) do not overlap
    — the same CI machinery the distribution report uses
    (:mod:`repro.ensemble.stats`).  Rows come out in candidate (fold)
    order, so the table is byte-identical for any worker count.
    """
    baselines = {
        (c.env, c.app, c.scale): c for c in grid_candidates if c.is_baseline
    }
    rows: list[dict] = []
    for cand in grid_candidates:
        if cand.is_baseline:
            continue
        base = baselines.get((cand.env, cand.app, cand.scale))
        if base is None:
            continue
        cost_delta = cand.cost_mean - base.cost_mean
        row = {
            "scenario": cand.scenario_id,
            "env": cand.env,
            "app": cand.app,
            "scale": cand.scale,
            "cost_delta": cost_delta,
            "cost_ratio": (
                cand.cost_mean / base.cost_mean if base.cost_mean else None
            ),
            "fom_ratio": (
                cand.fom_mean / base.fom_mean
                if cand.fom_mean is not None
                and base.fom_mean is not None
                and base.fom_mean > 0
                else None
            ),
            "exceedance": cand.exceedance,
            "significant": abs(cost_delta) > cand.cost_ci95 + base.cost_ci95,
        }
        rows.append(row)
    return rows

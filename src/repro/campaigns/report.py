"""The published artifact: one JSON document per campaign.

A :class:`CampaignReport` is the PUBLISH stage's output — everything a
reader needs to audit the decision: the spec and its digest, per-stage
accounting (worlds folded, cells attached, prune counts), the pruned
configs with the gate clauses they violated, the AB delta rows, the
Pareto frontier with config fingerprints, and the selected winner.

The document has exactly one non-deterministic section, ``profile``
(per-stage wall-clock seconds measured from the ``campaign.*``
telemetry spans).  Everything else is a pure function of the spec and
the folded statistics, so :meth:`CampaignReport.core_json` — the
document minus ``profile`` — is byte-identical for any worker count;
the determinism tests hold that property at workers 1 and 4.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: report schema version; bump on shape changes
REPORT_VERSION = 1


@dataclass
class CampaignReport:
    """One campaign's published JSON document."""

    data: dict

    # -- accessors -----------------------------------------------------------

    @property
    def winner(self) -> dict | None:
        return self.data.get("winner")

    @property
    def frontier(self) -> list[dict]:
        return self.data.get("frontier", [])

    @property
    def stages(self) -> dict:
        return self.data.get("stages", {})

    def core(self) -> dict:
        """The deterministic document: everything but ``profile``."""
        return {k: v for k, v in self.data.items() if k != "profile"}

    # -- serialization -------------------------------------------------------

    def core_json(self) -> str:
        """Canonical JSON of :meth:`core` — the byte-identity surface."""
        return json.dumps(self.core(), indent=2, sort_keys=True)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls(data=json.loads(text))


def build_report(
    *,
    spec,
    stage_records: list,
    pruned: list,
    candidates: list,
    ab: list[dict],
    frontier: list,
    winner,
    stage_seconds: dict[str, float],
    faults: dict[str, int] | None = None,
) -> CampaignReport:
    """Assemble the document from the stage pipeline's outputs.

    ``stage_records`` are :class:`~repro.campaigns.stages.StageRecord`
    values; ``pruned``/``candidates``/``frontier``/``winner`` are
    :class:`~repro.campaigns.frontier.Candidate` values (or ``None``).
    ``faults`` is the run's recovery accounting
    (:meth:`~repro.parallel.pool.FaultStats.to_dict`); like timings it
    describes *this execution*, not the dataset — retry counts vary
    with worker scheduling — so it lives in the non-deterministic
    ``profile`` section, keeping :meth:`~CampaignReport.core_json`
    byte-identical across worker counts and fault patterns.
    """
    profile: dict = {"stage_seconds": stage_seconds}
    if faults:
        profile["faults"] = faults
    return CampaignReport(
        data={
            "v": REPORT_VERSION,
            "campaign": spec.to_dict(),
            "digest": spec.digest(),
            "stages": {rec.name: rec.detail for rec in stage_records},
            "pruned": [c.to_dict() for c in pruned],
            "candidates": [c.to_dict() for c in candidates],
            "ab": ab,
            "frontier": [c.to_dict() for c in frontier],
            "winner": winner.to_dict() if winner is not None else None,
            "profile": profile,
        }
    )

"""Candidates, SLA gating, and the Pareto frontier.

A *candidate* is one (scenario, env, app, scale) coordinate of the
search space with its grid-folded statistics attached: mean cost, mean
FOM with a Student-t CI, completion rate, exceedance probability
against the seed study's point estimate, and the objective value
(cost per FOM).  Candidates are pure values derived deterministically
from an :class:`~repro.ensemble.runner.EnsembleResult`, so every
downstream decision — pruning, selection, the frontier — is
byte-identical for any worker count.

Two deliberate exclusions keep the candidate set honest:

* **Untouched scenario cells are not candidates.**  A cell a scenario's
  overlay footprint cannot reach simulates byte-identically to the
  baseline cell (that is what incremental reuse is built on), so it
  names no new configuration — only the baseline candidate represents
  it.  Keeping such duplicates would let one physical config occupy
  several frontier slots.
* **Cells with no completed FOM-bearing runs fail the gate** — there is
  nothing to buy, at any price.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from repro.campaigns.spec import CampaignSpec
from repro.ensemble.runner import EnsembleResult
from repro.envs.registry import ENVIRONMENTS

#: a candidate's identity within the campaign
CandidateKey = tuple[str, str, str, int]  # (scenario_id, env, app, scale)


@dataclass(frozen=True)
class Candidate:
    """One search-space coordinate with its folded statistics."""

    scenario_id: str
    env: str
    app: str
    scale: int
    #: worlds (replicas) folded into the statistics
    worlds: int
    #: completed-run rate: mean completed per world / iterations
    completion: float
    fom_mean: float | None
    fom_ci95: float
    cost_mean: float
    cost_ci95: float
    #: the objective: mean dollars per unit of FOM (None without a FOM)
    cost_per_fom: float | None
    #: P(FOM >= seed-study point estimate), None when unanchored
    exceedance: float | None
    #: did this candidate clear the (possibly margin-relaxed) SLA?
    sla_ok: bool
    #: why it did not, one clause per violated gate
    sla_failures: tuple[str, ...]
    #: stable config fingerprint (scenario digest x cell x fidelity)
    fingerprint: str

    @property
    def key(self) -> CandidateKey:
        return (self.scenario_id, self.env, self.app, self.scale)

    @property
    def is_baseline(self) -> bool:
        return self.scenario_id == "baseline"

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario_id,
            "env": self.env,
            "app": self.app,
            "scale": self.scale,
            "worlds": self.worlds,
            "completion": self.completion,
            "fom_mean": self.fom_mean,
            "fom_ci95": self.fom_ci95,
            "cost_mean": self.cost_mean,
            "cost_ci95": self.cost_ci95,
            "cost_per_fom": self.cost_per_fom,
            "exceedance": self.exceedance,
            "sla_ok": self.sla_ok,
            "sla_failures": list(self.sla_failures),
            "fingerprint": self.fingerprint,
        }


def config_fingerprint(
    spec: CampaignSpec, scenario_digest: str | None, env: str, app: str, scale: int
) -> str:
    """A stable hash naming one config at the campaign's grid fidelity.

    Embeds everything that determines the config's published numbers:
    the scenario's semantic digest, the cell coordinate, and the grid
    stage's replication (seed, replicas, iterations) — so a report
    reader can tell whether two campaigns measured the same thing.
    """
    payload = {
        "scenario": scenario_digest,
        "env": env,
        "app": app,
        "scale": scale,
        "base_seed": spec.base_seed,
        "replicas": spec.grid.replicas,
        "iterations": spec.iterations,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def evaluate_candidates(
    result: EnsembleResult, spec: CampaignSpec, *, margin: float
) -> list[Candidate]:
    """Every candidate of ``result``'s grid, gated at ``margin``.

    Candidates come out in the result's deterministic fold order
    (scenario-major).  ``margin`` relaxes the SLA (bounds x margin,
    ceilings / margin): the smoke stage prunes at ``spec.smoke.margin``,
    the grid stage judges at 1.
    """
    scenarios = {scn.scenario_id: scn for scn in result.spec.scenario_grid()}
    sla = spec.sla
    out: list[Candidate] = []
    for (sid, env, app, scale), stats in result.cells.items():
        scenario = scenarios[sid]
        if not scenario.is_baseline:
            cloud = ENVIRONMENTS[env].cloud
            if scenario.footprint(cloud) is None:
                # Byte-identical to the baseline cell: not a distinct
                # config, so not a candidate (see module docstring).
                continue
        completion = (
            stats.completed.mean / spec.iterations if stats.completed.count else 0.0
        )
        fom_mean = stats.fom.mean if stats.fom.count else None
        threshold = result.threshold_for(env, app, scale)
        exceedance = (
            stats.fom.exceedance(threshold)
            if threshold is not None and stats.fom.count
            else None
        )
        cost_per_fom = (
            stats.cost.mean / fom_mean
            if fom_mean is not None and fom_mean > 0
            else None
        )

        failures: list[str] = []
        if fom_mean is None or fom_mean <= 0:
            failures.append("no completed runs produced a figure of merit")
        floor = sla.min_completion * margin
        if completion < floor:
            failures.append(f"completion {completion:.3f} < {floor:.3f}")
        if exceedance is not None:
            floor = sla.min_exceedance * margin
            if exceedance < floor:
                failures.append(f"exceedance {exceedance:.3f} < {floor:.3f}")
        if sla.max_cost_per_fom is not None and cost_per_fom is not None:
            ceiling = sla.max_cost_per_fom / margin
            if cost_per_fom > ceiling:
                failures.append(f"cost/FOM {cost_per_fom:.4g} > {ceiling:.4g}")

        out.append(
            Candidate(
                scenario_id=sid,
                env=env,
                app=app,
                scale=scale,
                worlds=stats.worlds,
                completion=completion,
                fom_mean=fom_mean,
                fom_ci95=stats.fom.ci95_halfwidth(),
                cost_mean=stats.cost.mean,
                cost_ci95=stats.cost.ci95_halfwidth(),
                cost_per_fom=cost_per_fom,
                exceedance=exceedance,
                sla_ok=not failures,
                sla_failures=tuple(failures),
                fingerprint=config_fingerprint(
                    spec,
                    scenario.digest() if not scenario.is_baseline else None,
                    env,
                    app,
                    scale,
                ),
            )
        )
    return out


def pareto_frontier(candidates: list[Candidate]) -> list[Candidate]:
    """The non-dominated set over (cost ascending, FOM descending).

    A candidate is dominated when another costs no more *and* performs
    at least as well (strictly better on one axis).  Candidates without
    a FOM can never be on the frontier.  The sweep is deterministic:
    sort by (cost, -FOM, key) and keep every candidate that raises the
    best FOM seen so far — ties broken toward the lexically smaller
    key, so the frontier is reproducible for any worker count.
    """
    measurable = [c for c in candidates if c.fom_mean is not None]
    frontier: list[Candidate] = []
    best_fom = -math.inf
    for cand in sorted(
        measurable, key=lambda c: (c.cost_mean, -c.fom_mean, c.key)
    ):
        if cand.fom_mean > best_fom:
            frontier.append(cand)
            best_fom = cand.fom_mean
    return frontier


def select_winner(
    candidates: list[Candidate], *, eligible_keys: frozenset[CandidateKey]
) -> Candidate | None:
    """The cheapest-per-FOM SLA-passing candidate, deterministically.

    Eligibility is the intersection of the full-strictness SLA verdict
    (``sla_ok`` at grid fidelity) and ``eligible_keys`` (the smoke
    stage's survivors — a config pruned on the cheap pass stays pruned,
    that is the point of SMOKE).  Ties on the objective break on the
    candidate key, so the winner is identical for any worker count.
    """
    pool = [
        c
        for c in candidates
        if c.sla_ok and c.cost_per_fom is not None and c.key in eligible_keys
    ]
    if not pool:
        return None
    return min(pool, key=lambda c: (c.cost_per_fom, c.key))

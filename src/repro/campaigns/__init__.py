"""repro.campaigns — staged experiment campaigns over the planner.

The orchestration layer that turns the execution stack — plans,
ensembles, incremental reuse, telemetry — into an *answer*: which
(scenario, env, app, scale) configuration meets a performance SLA at
the lowest cost?  A campaign is a typed five-stage pipeline:

``SMOKE → GRID → AB → SELECT → PUBLISH``

* :mod:`~repro.campaigns.spec` — :class:`CampaignSpec`: the declarative
  objective, SLA gates, search space, and per-stage budgets;
* :mod:`~repro.campaigns.stages` — the pure stage functions (pruning,
  survivor scenarios, AB delta rows);
* :mod:`~repro.campaigns.frontier` — candidates, SLA gating, the Pareto
  frontier, and deterministic winner selection;
* :mod:`~repro.campaigns.runner` — :class:`CampaignRunner`: sequences
  the stages inside ``campaign.*`` telemetry spans, threading the smoke
  stage's plan into the grid stage's incremental diff baseline;
* :mod:`~repro.campaigns.report` — :class:`CampaignReport`: the
  published JSON artifact (fingerprints, frontier, winner, per-stage
  timings).

``repro campaign run --spec campaign.json`` drives the whole pipeline
from the command line; ``repro campaign show`` prints what would run.
"""

from repro.campaigns.frontier import (
    Candidate,
    config_fingerprint,
    evaluate_candidates,
    pareto_frontier,
    select_winner,
)
from repro.campaigns.report import CampaignReport, build_report
from repro.campaigns.runner import CampaignResult, CampaignRunner
from repro.campaigns.spec import CampaignSpec, Objective, SlaGate, StageBudget
from repro.campaigns.stages import STAGES, StageRecord, ab_rows

__all__ = [
    "Candidate",
    "CampaignReport",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Objective",
    "STAGES",
    "SlaGate",
    "StageBudget",
    "StageRecord",
    "ab_rows",
    "build_report",
    "config_fingerprint",
    "evaluate_candidates",
    "pareto_frontier",
    "select_winner",
]

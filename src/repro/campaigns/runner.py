"""The campaign runner: sequence the stages, account for everything.

:class:`CampaignRunner` executes a :class:`~repro.campaigns.spec.CampaignSpec`
as the five-stage pipeline:

1. **SMOKE** — a ``smoke.replicas``-deep incremental ensemble over the
   *full* scenario grid.  Candidates are gated at the margin-relaxed
   SLA; configs that miss even the relaxed bar are pruned.
2. **GRID** — a ``grid.replicas``-deep ensemble over the surviving
   scenarios, incremental against both its own baseline replicas *and*
   the smoke stage's plan (threaded through
   ``EnsembleRunner(baseline_plan=...)``): worlds the smoke stage
   already folded replay from the world cache, and any cell either pass
   simulated attaches from the cell cache instead of re-executing.
3. **AB** — every surviving config against its baseline cell, with
   Student-t confidence intervals on the deltas.
4. **SELECT** — the Pareto frontier of cost vs performance, and the
   cheapest-per-FOM config that passes the full-strictness SLA.
5. **PUBLISH** — the :class:`~repro.campaigns.report.CampaignReport`
   JSON artifact, per-stage wall-clock taken from the ``campaign.*``
   telemetry spans.

Both ensemble stages share one cache directory (a private temporary one
when the caller passes none — incremental execution requires it), one
``base_seed``, and one ``iterations`` count, so every cache key lines
up across stages.  Everything decision-bearing is deterministic in the
spec: the report's core is byte-identical for any worker count.
"""

from __future__ import annotations

import contextlib
import tempfile
import time
from dataclasses import dataclass, field

from repro.campaigns.frontier import (
    Candidate,
    evaluate_candidates,
    pareto_frontier,
    select_winner,
)
from repro.campaigns.report import CampaignReport, build_report
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.stages import (
    StageRecord,
    ab_rows,
    ensemble_accounting,
    partition_survivors,
    surviving_scenarios,
)
from repro.ensemble.runner import EnsembleResult, EnsembleRunner
from repro.telemetry import Tracer, current_tracer, enabled, span, use_tracer


@dataclass
class CampaignResult:
    """Everything the pipeline produced, typed stage by stage."""

    spec: CampaignSpec
    smoke: EnsembleResult
    grid: EnsembleResult
    smoke_candidates: list[Candidate] = field(default_factory=list)
    pruned: list[Candidate] = field(default_factory=list)
    survivors: list[Candidate] = field(default_factory=list)
    grid_candidates: list[Candidate] = field(default_factory=list)
    ab: list[dict] = field(default_factory=list)
    frontier: list[Candidate] = field(default_factory=list)
    winner: Candidate | None = None
    stage_records: list[StageRecord] = field(default_factory=list)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    report: CampaignReport | None = None

    def render(self) -> str:
        """The campaign as fixed-width tables (CLI output)."""
        from repro.reporting.frontier import render_campaign

        return render_campaign(self)


class CampaignRunner:
    """Executes a :class:`CampaignSpec`; see the module docstring."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        transport: str = "auto",
        retry=None,
        chaos=None,
        resume: bool = False,
    ):
        if resume and cache_dir is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "resume needs a cache directory: completed cells re-attach "
                "through the journal and caches the interrupted campaign "
                "wrote (pass cache_dir=...)"
            )
        self.spec = spec
        self.workers = workers
        self.transport = transport
        self.cache_dir = cache_dir
        self.retry = retry
        self.chaos = chaos
        self.resume = resume

    def run(self) -> CampaignResult:
        spec = self.spec
        with contextlib.ExitStack() as stack:
            cache_dir = self.cache_dir or stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-campaign-")
            )
            # Stage timings come from the campaign.* spans, so a tracer
            # must exist; install a private one unless the caller (e.g.
            # `repro campaign run --trace`) already did.  Telemetry
            # never feeds results, so this changes no folded byte.
            if not enabled():
                stack.enter_context(use_tracer(Tracer()))
            tracer = current_tracer()
            with span("campaign.run", digest=spec.digest(), workers=self.workers):
                # ---------------------------------------------- SMOKE
                with span("campaign.smoke", stage="smoke"):
                    smoke_runner = EnsembleRunner(
                        spec.smoke_spec(),
                        workers=self.workers,
                        cache_dir=cache_dir,
                        incremental=True,
                        transport=self.transport,
                        retry=self.retry,
                        chaos=self.chaos,
                        resume=self.resume,
                    )
                    smoke = smoke_runner.run()
                    smoke_candidates = evaluate_candidates(
                        smoke, spec, margin=spec.smoke.margin
                    )
                    survivors, pruned = partition_survivors(smoke_candidates)

                # ----------------------------------------------- GRID
                with span("campaign.grid", stage="grid"):
                    alive = surviving_scenarios(spec.scenarios, survivors)
                    grid_runner = EnsembleRunner(
                        spec.grid_spec(alive),
                        workers=self.workers,
                        cache_dir=cache_dir,
                        incremental=True,
                        baseline_plan=smoke_runner.compile(),
                        transport=self.transport,
                        retry=self.retry,
                        chaos=self.chaos,
                        resume=self.resume,
                    )
                    grid = grid_runner.run()
                    grid_candidates = evaluate_candidates(grid, spec, margin=1.0)

                # ------------------------------------------------- AB
                with span("campaign.ab", stage="ab"):
                    ab = ab_rows(grid_candidates)

                # --------------------------------------------- SELECT
                with span("campaign.select", stage="select"):
                    frontier = pareto_frontier(grid_candidates)
                    survivor_keys = frozenset(c.key for c in survivors)
                    winner = select_winner(
                        grid_candidates, eligible_keys=survivor_keys
                    )

                # -------------------------------------------- PUBLISH
                with span("campaign.publish", stage="publish"):
                    publish_start = time.perf_counter()
                    records = [
                        StageRecord(
                            "smoke",
                            {
                                **ensemble_accounting(smoke),
                                "candidates": len(smoke_candidates),
                                "pruned": len(pruned),
                                "survivors": len(survivors),
                                "margin": spec.smoke.margin,
                            },
                        ),
                        StageRecord(
                            "grid",
                            {
                                **ensemble_accounting(grid),
                                "scenarios": len(alive),
                                "candidates": len(grid_candidates),
                            },
                        ),
                        StageRecord("ab", {"rows": len(ab)}),
                        StageRecord(
                            "select",
                            {
                                "frontier": len(frontier),
                                "eligible": sum(
                                    1
                                    for c in grid_candidates
                                    if c.sla_ok and c.key in survivor_keys
                                ),
                                "winner": winner.key if winner else None,
                            },
                        ),
                        StageRecord("publish", {"artifact": "campaign report v1"}),
                    ]
                    stage_seconds = _stage_seconds(tracer)
                    # Recovery accounting from both ensemble stages goes
                    # into the report's profile section (execution-shaped,
                    # like timings — never part of the decision core).
                    from repro.parallel.pool import FaultStats

                    faults = FaultStats()
                    for stage_result in (smoke, grid):
                        if stage_result.faults is not None:
                            faults.add(stage_result.faults)
                    report = build_report(
                        spec=spec,
                        stage_records=records,
                        pruned=pruned,
                        candidates=grid_candidates,
                        ab=ab,
                        frontier=frontier,
                        winner=winner,
                        stage_seconds=stage_seconds,
                        faults=faults.to_dict() if faults.activity else None,
                    )
                    # The publish span is still open here; close the
                    # loop with a direct measurement of the build.
                    stage_seconds["publish"] = time.perf_counter() - publish_start

        return CampaignResult(
            spec=spec,
            smoke=smoke,
            grid=grid,
            smoke_candidates=smoke_candidates,
            pruned=pruned,
            survivors=survivors,
            grid_candidates=grid_candidates,
            ab=ab,
            frontier=frontier,
            winner=winner,
            stage_records=records,
            stage_seconds=stage_seconds,
            report=report,
        )


def _stage_seconds(tracer: Tracer) -> dict[str, float]:
    """Closed ``campaign.<stage>`` span durations, by stage name."""
    out: dict[str, float] = {}
    for name, start, end in zip(tracer.names, tracer.starts, tracer.ends):
        if name.startswith("campaign.") and name != "campaign.run" and end:
            stage = name.split(".", 1)[1]
            out[stage] = out.get(stage, 0.0) + (end - start)
    return out

"""Run records: the study's unit dataset (the paper collected 25,541)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class RunState(enum.Enum):
    COMPLETED = "completed"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"  # environment undeployable or app unsupported


#: the canonical integer coding of :class:`RunState` shared by every
#: columnar structure (:class:`~repro.core.results.ResultStore` buffers,
#: :class:`~repro.ensemble.frame.ResultFrame` columns); index into
#: :data:`STATE_ORDER` to decode
STATE_ORDER: tuple[RunState, ...] = tuple(RunState)
STATE_CODE: dict[RunState, int] = {state: code for code, state in enumerate(STATE_ORDER)}

#: fixed widths of the columnar string key columns, shared by the store
#: buffers and the frame schema (this leaf module is importable by
#: both); ids wider than these would truncate silently and merge
#: distinct cells, so columnar appends refuse them instead
ENV_ID_WIDTH = 32
APP_NAME_WIDTH = 24


@dataclass(frozen=True)
class RunRecord:
    """One application run in one environment at one scale."""

    env_id: str
    app: str
    scale: int  # nodes (CPU) or GPUs (GPU environments)
    nodes: int
    iteration: int
    state: RunState
    fom: float | None
    fom_units: str
    wall_seconds: float
    hookup_seconds: float
    cost_usd: float
    phases: dict[str, float] = field(default_factory=dict)
    failure_kind: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.state is RunState.COMPLETED and self.fom is not None

    @property
    def total_seconds(self) -> float:
        return self.wall_seconds + self.hookup_seconds

"""Execution engine: runs application models on environments."""

from repro.sim.cache import RunCache, run_key
from repro.sim.execution import ExecutionEngine
from repro.sim.run_result import RunRecord, RunState

__all__ = ["ExecutionEngine", "RunCache", "RunRecord", "RunState", "run_key"]

"""Execution engine: runs application models on environments."""

from repro.sim.execution import ExecutionEngine
from repro.sim.run_result import RunRecord, RunState

__all__ = ["ExecutionEngine", "RunRecord", "RunState"]
